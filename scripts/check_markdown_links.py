#!/usr/bin/env python
"""Fail on broken intra-repo markdown links and orphan docs (CI docs-check).

Two checks over every ``*.md`` file in the repository:

1. **Link integrity** — each inline link/image ``[text](target)`` with a
   *relative* target must exist on disk (anchors are stripped; external
   ``scheme://`` links and pure in-page ``#anchor`` links are skipped).
2. **Orphan docs** — every page under ``docs/`` must be reachable from
   ``README.md`` by following intra-repo markdown links; a doc nobody
   links to is a doc nobody finds.
3. **CLI invocations** — every ``python -m repro <command>`` the docs tell
   the reader to run (including inside fenced code blocks) must name a
   command the CLI registry actually exposes, so renaming an experiment
   or subcommand cannot leave stale instructions behind.

Exits 1 listing every broken link, orphan page, and unknown CLI command.

Run:  python scripts/check_markdown_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# Inline links/images, skipping ![alt] vs [text] uniformly; non-greedy text,
# target up to the first unescaped ')'.  Fenced code blocks are stripped
# first so example links in code aren't checked.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
#: ``python -m repro <command>`` invocations; matched against the *raw* text
#: (fences included) because that's exactly where run instructions live.
_CLI_CALL = re.compile(r"python\s+-m\s+repro\s+([A-Za-z0-9][A-Za-z0-9_-]*)")

#: Directories never scanned (build junk, VCS internals).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".venv", "node_modules", "build", "dist"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def markdown_targets(path: Path) -> List[str]:
    """Relative link targets of one markdown file (fences stripped)."""
    text = _FENCE.sub("", path.read_text(encoding="utf-8"))
    targets: List[str] = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if _SCHEME.match(target) or target.startswith("#"):
            continue  # external URL or in-page anchor
        plain = target.split("#", 1)[0]
        if plain:
            targets.append(plain)
    return targets


def scan_markdown(root: Path) -> "dict[Path, List[str]]":
    """One pass over the tree: resolved path -> its relative link targets.

    Shared by the link check, the orphan walk, and the file count, so the
    tree is globbed and each file read/parsed exactly once.
    """
    return {path.resolve(): markdown_targets(path) for path in iter_markdown(root)}


def broken_links(root: Path, targets_of: "dict[Path, List[str]]") -> List[Tuple[Path, str]]:
    failures: List[Tuple[Path, str]] = []
    for path, targets in targets_of.items():
        for target in targets:
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                failures.append((path.relative_to(root), target))
    return failures


def orphan_docs(root: Path, targets_of: "dict[Path, List[str]]") -> List[Path]:
    """Pages under ``docs/`` not reachable from README.md via markdown links.

    Depth-first walk of the intra-repo link graph starting at the README
    (order is irrelevant — only the reachable set matters); any
    ``docs/*.md`` page the walk never visits is an orphan.  Returns an
    empty list when the repo has no README or no docs directory.
    """
    readme = (root / "README.md").resolve()
    docs_dir = root / "docs"
    if readme not in targets_of or not docs_dir.is_dir():
        return []
    reachable = set()
    frontier = [readme]
    while frontier:
        page = frontier.pop()
        if page in reachable:
            continue
        reachable.add(page)
        for target in targets_of.get(page, ()):
            resolved = (page.parent / target).resolve()
            if resolved in targets_of and resolved not in reachable:
                frontier.append(resolved)
    return sorted(
        path.relative_to(root)
        for path in targets_of
        if docs_dir.resolve() in path.parents and path not in reachable
    )


def known_cli_commands(root: Path) -> "frozenset[str]":
    """Commands the ``python -m repro`` entry point accepts.

    Imported from the CLI registry itself (``src`` is put on ``sys.path``
    for the lookup) so the doc check can never drift from the real
    dispatcher.  ``repro.__main__``'s module-level imports are stdlib-only
    by design, so this works without the scientific stack installed.
    """
    src = str(root / "src")
    sys.path.insert(0, src)
    try:
        from repro.__main__ import cli_commands

        return frozenset(cli_commands())
    finally:
        sys.path.remove(src)


def unknown_cli_calls(
    root: Path, targets_of: "dict[Path, List[str]]"
) -> List[Tuple[Path, str]]:
    """``python -m repro <cmd>`` doc invocations naming no registered command.

    Scans the *raw* markdown — fenced code blocks are where run
    instructions live, so they are deliberately included here (unlike the
    link check, which strips them).
    """
    known = known_cli_commands(root)
    failures: List[Tuple[Path, str]] = []
    for path in targets_of:
        text = path.read_text(encoding="utf-8")
        for match in _CLI_CALL.finditer(text):
            command = match.group(1)
            if command not in known:
                failures.append((path.relative_to(root), command))
    return failures


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    targets_of = scan_markdown(root)
    failures = broken_links(root, targets_of)
    orphans = orphan_docs(root, targets_of)
    bad_calls = unknown_cli_calls(root, targets_of)
    checked = len(targets_of)
    if failures:
        print(f"docs-check: {len(failures)} broken intra-repo link(s):")
        for path, target in failures:
            print(f"  {path}: ({target})")
    if orphans:
        print(f"docs-check: {len(orphans)} orphan doc page(s) unreachable from README.md:")
        for path in orphans:
            print(f"  {path}")
    if bad_calls:
        print(f"docs-check: {len(bad_calls)} doc invocation(s) of unregistered CLI commands:")
        for path, command in bad_calls:
            print(f"  {path}: python -m repro {command}")
    if failures or orphans or bad_calls:
        return 1
    print(
        f"docs-check: OK ({checked} markdown files, no broken intra-repo links, "
        "no orphan docs, no unknown CLI commands)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
