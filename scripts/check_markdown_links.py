#!/usr/bin/env python
"""Fail on broken intra-repo markdown links (CI docs-check job).

Scans every ``*.md`` file in the repository for inline links and images
``[text](target)`` and verifies that each *relative* target exists on disk
(anchors are stripped; external ``scheme://`` links and pure in-page
``#anchor`` links are skipped).  Exits 1 listing every broken link.

Run:  python scripts/check_markdown_links.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

# Inline links/images, skipping ![alt] vs [text] uniformly; non-greedy text,
# target up to the first unescaped ')'.  Fenced code blocks are stripped
# first so example links in code aren't checked.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
_SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")

#: Directories never scanned (build junk, VCS internals).
SKIP_DIRS = {".git", ".pytest_cache", "__pycache__", ".venv", "node_modules", "build", "dist"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part in SKIP_DIRS for part in path.parts):
            continue
        yield path


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    failures: List[Tuple[Path, str]] = []
    for path in iter_markdown(root):
        text = _FENCE.sub("", path.read_text(encoding="utf-8"))
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _SCHEME.match(target) or target.startswith("#"):
                continue  # external URL or in-page anchor
            plain = target.split("#", 1)[0]
            if not plain:
                continue
            resolved = (path.parent / plain).resolve()
            if not resolved.exists():
                failures.append((path.relative_to(root), target))
    return failures


def main(argv: List[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    failures = broken_links(root)
    checked = sum(1 for _ in iter_markdown(root))
    if failures:
        print(f"docs-check: {len(failures)} broken intra-repo link(s):")
        for path, target in failures:
            print(f"  {path}: ({target})")
        return 1
    print(f"docs-check: OK ({checked} markdown files, no broken intra-repo links)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
