#!/usr/bin/env python
"""Run the placement perf benchmarks; emit ``BENCH_placement.json``,
``BENCH_energy.json``, ``BENCH_replicas.json``, ``BENCH_serving.json``,
``BENCH_validation.json``, ``BENCH_resilience.json``, and
``BENCH_federation.json``.

This is the repo's recorded perf trajectory: the instance-size sweep
(scalar vs. tensorized objective, brute force vs. branch-and-bound), a
serve-under-churn recovery run, the energy-placement sweep (energy
branch-and-bound vs. brute force under a latency budget, see
``docs/energy.md``), the replica sweep (replica branch-and-bound vs.
brute-force host-set enumeration, plus the serving autoscaler vs. static
replication under bursty overload, see ``docs/placement.md``), and the
serving-engine sweep (the flat vectorized event loop vs. the legacy
generator-process engine at 100k-arrival scale, plus a flat-only
million-arrival replay, see ``docs/serving.md``), and the queue-aware
solver-vs-serving validation sweep (predicted vs serving-measured latency
on queue-aware and queue-blind placements, see ``docs/performance.md``),
and the fault-scenario resilience study (named fault scenarios served
with and without graceful degradation, with conservation, engine-identity
and determinism gates, see ``docs/serving.md``), and the WAN federation
study (three timezone-offset clusters with spillover routing vs isolated,
with cross-cluster conservation, parallel-vs-sequential merge
bit-identity, and spillover-wins gates, see ``docs/federation.md``).
The checked-in JSONs are regenerated with::

    python scripts/run_benchmarks.py

and CI runs the trimmed ``--smoke`` variant on every push (writing
``BENCH_smoke.json`` / ``BENCH_energy_smoke.json`` /
``BENCH_replicas_smoke.json`` / ``BENCH_serving_smoke.json`` /
``BENCH_validation_smoke.json`` / ``BENCH_resilience_smoke.json`` /
``BENCH_federation_smoke.json``),
uploading
the JSONs as artifacts so the trend is inspectable per commit.  See
``docs/performance.md`` for the schema and how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

FULL_SWEEP = [(3, 4), (4, 5), (6, 8), (8, 16), (10, 24), (10, 32)]
SMOKE_SWEEP = [(3, 4), (6, 8), (8, 16)]
ENERGY_FULL_SWEEP = [(3, 4), (4, 5), (6, 8), (8, 16), (10, 32)]
ENERGY_SMOKE_SWEEP = [(3, 4), (6, 8)]
#: (modules, devices, max_copies).  The replica search space is the subset
#: lattice (~(N + N^2/2)^M), exponentially larger than single-copy N^M, so
#: the exact envelope is deliberately smaller — see docs/placement.md.
REPLICA_FULL_SWEEP = [(3, 4, 2), (4, 5, 2), (4, 5, 3), (4, 6, 2), (5, 8, 2)]
REPLICA_SMOKE_SWEEP = [(3, 4, 2), (4, 5, 2)]
#: (label, kind, rate_rps, duration_s).  Each full point replays ~100k
#: arrivals through BOTH serving engines; the flat/legacy speedup grows
#: with offered load because the legacy engine recomputes isolated latency
#: and queue pressure per arrival while the flat engine prices from
#: per-generation caches (see docs/serving.md).
SERVING_FULL_SWEEP = [
    ("capacity", "poisson", 2.0, 50000.0),
    ("overload", "poisson", 20.0, 5000.0),
    ("deep-overload", "poisson", 40.0, 2500.0),
]
SERVING_SMOKE_SWEEP = [
    ("capacity", "poisson", 2.0, 500.0),
    ("overload", "poisson", 20.0, 500.0),
]
#: The million-arrival replay (flat engine only; the sweep rows above
#: already pin flat == legacy at 100k arrivals).
SERVING_REPLAY_FULL = ("poisson", 2.0, 500000.0)
SERVING_REPLAY_SMOKE = ("poisson", 20.0, 1000.0)
#: Speedup gates for the "overload" sweep row.  The full gate is the
#: PR-level acceptance bar; smoke uses a loose bar so shared CI runners
#: don't flake the build on scheduler noise.
SERVING_SPEEDUP_GATE_FULL = 10.0
SERVING_SPEEDUP_GATE_SMOKE = 2.0
SERVING_MODELS = ["clip-vit-b16", "encoder-vqa-small"]
#: Validation sweep points: sub-saturation rows gate predicted-vs-measured
#: tracking; the >= 1 rps row is the overload point where the queue-aware
#: placement must beat the queue-blind one (see docs/performance.md).
VALIDATION_FULL = dict(rates=(0.1, 0.3, 4.0), duration_s=40.0)
VALIDATION_SMOKE = dict(rates=(0.5, 4.0), duration_s=12.0)


def bench_objective(n_modules: int, n_devices: int, repeats: int) -> dict:
    """Scalar vs. tensorized objective timing on one synthetic instance."""
    from repro.core.placement.greedy import greedy_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=16)
    requests = list(instance.requests)
    placement = greedy_placement(instance.problem)
    tensorized = LatencyModel(instance.problem, instance.network)
    scalar = LatencyModel(instance.problem, instance.network, use_tensors=False)

    build_start = time.perf_counter()
    tensor_value = tensorized.objective(requests, placement)  # builds tensors
    tensor_build_s = time.perf_counter() - build_start
    scalar_value = scalar.objective(requests, placement)

    start = time.perf_counter()
    for _ in range(repeats):
        tensorized.objective(requests, placement)
    tensor_s = (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        scalar.objective(requests, placement)
    scalar_s = (time.perf_counter() - start) / repeats
    return {
        "modules": n_modules,
        "devices": n_devices,
        "requests": len(requests),
        "bit_identical": tensor_value == scalar_value,
        "tensor_build_s": round(tensor_build_s, 6),
        "scalar_objective_s": round(scalar_s, 6),
        "tensor_objective_s": round(tensor_s, 6),
        "speedup": round(scalar_s / tensor_s, 2),
    }


def bench_solver(n_modules: int, n_devices: int) -> dict:
    """Greedy / brute-force / branch-and-bound on one synthetic instance."""
    from repro.core.placement.bnb import BnBStats, branch_and_bound_placement
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.optimal import MAX_ASSIGNMENTS, optimal_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=4)
    requests = list(instance.requests)
    model = LatencyModel(instance.problem, instance.network)

    start = time.perf_counter()
    greedy = greedy_placement(instance.problem)
    greedy_s = time.perf_counter() - start
    greedy_objective = model.objective(requests, greedy)

    stats = BnBStats()
    start = time.perf_counter()
    _, bnb_objective = branch_and_bound_placement(
        instance.problem, requests, instance.network, stats=stats
    )
    bnb_s = time.perf_counter() - start

    row = {
        "modules": n_modules,
        "devices": n_devices,
        "assignments": n_devices ** n_modules,
        "greedy_s": round(greedy_s, 6),
        "greedy_objective": greedy_objective,
        "bnb_s": round(bnb_s, 6),
        "bnb_objective": bnb_objective,
        "bnb_nodes": stats.nodes,
        "bnb_leaves": stats.leaves,
        "bnb_pruned": stats.pruned,
        "greedy_optimality_gap": round(greedy_objective / bnb_objective - 1.0, 6),
    }
    # Brute force only where the old enumeration would even start, and only
    # at sizes that finish in reasonable time for a benchmark harness.
    if n_devices ** n_modules <= min(MAX_ASSIGNMENTS, 300_000):
        start = time.perf_counter()
        _, brute_objective = optimal_placement(
            instance.problem, requests, instance.network, solver="brute"
        )
        row["brute_s"] = round(time.perf_counter() - start, 6)
        row["brute_matches_bnb"] = brute_objective == bnb_objective
    return row


def bench_energy_solver(n_modules: int, n_devices: int, budget_factor: float = 1.5) -> dict:
    """Energy branch-and-bound vs brute force under a 1.5x latency budget."""
    from repro.core.placement.bnb import BnBStats, energy_branch_and_bound
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.optimal import MAX_ASSIGNMENTS, energy_optimal_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance
    from repro.profiles.energy import energy_objective

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=4)
    requests = list(instance.requests)
    model = LatencyModel(instance.problem, instance.network)
    greedy = greedy_placement(instance.problem)
    greedy_latency = model.objective(requests, greedy)
    greedy_joules = energy_objective(requests, greedy, model)
    budget = budget_factor * greedy_latency

    stats = BnBStats()
    start = time.perf_counter()
    placement, joules = energy_branch_and_bound(
        instance.problem, requests, instance.network,
        latency_budget=budget, tensors=model.tensors, stats=stats,
    )
    bnb_s = time.perf_counter() - start

    row = {
        "modules": n_modules,
        "devices": n_devices,
        "assignments": n_devices ** n_modules,
        "budget_factor": budget_factor,
        "greedy_joules": greedy_joules,
        "greedy_latency_s": greedy_latency,
        "bnb_s": round(bnb_s, 6),
        "bnb_joules": joules,
        "bnb_latency_s": model.objective(requests, placement),
        "bnb_nodes": stats.nodes,
        "bnb_leaves": stats.leaves,
        "bnb_pruned": stats.pruned,
        "energy_saving": round(1.0 - joules / greedy_joules, 6),
    }
    if n_devices ** n_modules <= min(MAX_ASSIGNMENTS, 300_000):
        start = time.perf_counter()
        brute_placement, brute_joules = energy_optimal_placement(
            instance.problem, requests, instance.network,
            latency_budget=budget, solver="brute", tensors=model.tensors,
        )
        row["brute_s"] = round(time.perf_counter() - start, 6)
        row["brute_matches_bnb"] = (
            brute_joules == joules
            and brute_placement.as_dict() == placement.as_dict()
        )
    return row


def bench_replica_solver(n_modules: int, n_devices: int, max_copies: int) -> dict:
    """Replica-aware greedy / brute / branch-and-bound on one instance."""
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.replicas import (
        MAX_REPLICA_ASSIGNMENTS,
        host_subsets,
        replica_aware_greedy,
        replica_branch_and_bound,
        replica_brute_force,
    )
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=6)
    requests = list(instance.requests)
    model = LatencyModel(instance.problem, instance.network)
    single = greedy_placement(instance.problem)
    single_objective = model.replica_objective(requests, single)

    start = time.perf_counter()
    _, greedy_objective = replica_aware_greedy(
        instance.problem, requests, instance.network,
        max_copies=max_copies, tensors=model.tensors,
    )
    greedy_s = time.perf_counter() - start

    start = time.perf_counter()
    bnb_placement, bnb_objective = replica_branch_and_bound(
        instance.problem, requests, instance.network,
        max_copies=max_copies, tensors=model.tensors,
    )
    bnb_s = time.perf_counter() - start

    n_subsets = len(host_subsets([d.name for d in instance.problem.devices], max_copies))
    row = {
        "modules": n_modules,
        "devices": n_devices,
        "max_copies": max_copies,
        "host_set_assignments": n_subsets ** n_modules,
        "single_copy_objective": single_objective,
        "replica_greedy_s": round(greedy_s, 6),
        "replica_greedy_objective": greedy_objective,
        "bnb_s": round(bnb_s, 6),
        "bnb_objective": bnb_objective,
        "replication_gain": round(1.0 - bnb_objective / single_objective, 6),
        "greedy_optimality_gap": round(greedy_objective / bnb_objective - 1.0, 6),
    }
    if n_subsets ** n_modules <= min(MAX_REPLICA_ASSIGNMENTS, 300_000):
        start = time.perf_counter()
        brute_placement, brute_objective = replica_brute_force(
            instance.problem, requests, instance.network,
            max_copies=max_copies, tensors=model.tensors,
        )
        row["brute_s"] = round(time.perf_counter() - start, 6)
        row["brute_matches_bnb"] = (
            brute_objective == bnb_objective
            and brute_placement.as_dict() == bnb_placement.as_dict()
        )
    return row


def bench_replica_serving(duration_s: float, rate_rps: float = 2.5, seed: int = 7) -> dict:
    """Bursty overload: single-copy vs leftover replication vs autoscale.

    Runs the SAME study as ``python -m repro replicas``
    (:func:`repro.experiments.replicas.run_serving_study` — one definition,
    no drift) and records it with conservation flags.  Admission is off so
    the metrics measure raw serving capacity; the acceptance bar is the
    autoscaler beating the ``replicate=True`` baseline on goodput **or**
    p95 at this high-rate point.
    """
    from repro.experiments.replicas import run_serving_study

    start = time.perf_counter()
    reports = run_serving_study(rate_rps=rate_rps, duration_s=duration_s, seed=seed)
    wall_s = time.perf_counter() - start
    result = {
        "workload": "bursty",
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "seed": seed,
        "arrivals": reports[0][1].arrivals,
        "wall_s": round(wall_s, 4),
    }
    for key, report in reports:
        result[key] = {
            "goodput_rps": round(report.goodput_rps, 6),
            "p50_s": round(report.latency.p50, 4),
            "p95_s": round(report.latency.p95, 4),
            "makespan_s": round(report.latency.makespan, 4),
            "completed": report.completed,
            "conservation_ok": report.completed + report.rejected == report.arrivals,
            "scale_actions_applied": sum(1 for s in report.scaling if s.applied),
        }
    result["autoscale_beats_leftover"] = (
        result["autoscale"]["goodput_rps"] > result["leftover"]["goodput_rps"]
        or result["autoscale"]["p95_s"] < result["leftover"]["p95_s"]
    )
    return result


def bench_validation(smoke: bool) -> dict:
    """Queue-aware solver-vs-serving cross-validation (gated).

    Runs the SAME sweep as ``python -m repro validation``
    (:func:`repro.experiments.validation.run_validation` — one definition,
    no drift) and adds a queue-aware bnb-vs-brute cross-check on the
    deployment instance.  Gates recorded in the payload: gate (a)
    predicted mean/p95 inside the tolerance band on sub-saturation rows,
    gate (b) the queue-aware placement beating the queue-blind one on
    serving-measured p95 or goodput at the overload row.
    """
    from repro.cluster.network import Network
    from repro.cluster.topology import build_testbed
    from repro.core.engine import S2M3Engine
    from repro.core.placement.optimal import optimal_placement
    from repro.core.placement.tensors import CongestionModel
    from repro.experiments.validation import (
        STUDY_MODELS,
        _solver_requests,
        run_validation,
    )
    from repro.serving import WorkloadGenerator

    params = VALIDATION_SMOKE if smoke else VALIDATION_FULL
    start = time.perf_counter()
    study = run_validation(**params)
    payload = study.as_dict()
    payload["wall_s"] = round(time.perf_counter() - start, 4)

    # Queue-aware exactness on the very instance serving deploys: bnb and
    # brute must agree on placement and objective with the wait term on.
    problem = S2M3Engine(build_testbed(), list(STUDY_MODELS)).problem
    requests = _solver_requests(problem)
    trace = WorkloadGenerator(
        list(STUDY_MODELS), kind=study.kind, rate_rps=max(params["rates"]),
        duration_s=params["duration_s"], seed=study.seed,
    ).generate()
    congestion = CongestionModel.from_trace(trace)
    bnb_pl, bnb_obj = optimal_placement(
        problem, requests, network=Network(), solver="bnb", congestion=congestion
    )
    brute_pl, brute_obj = optimal_placement(
        problem, requests, network=Network(), solver="brute", congestion=congestion
    )
    payload["qa_bnb_matches_brute"] = (
        bnb_obj == brute_obj and bnb_pl.as_dict() == brute_pl.as_dict()
    )
    return payload


def bench_serving_churn(duration_s: float) -> dict:
    """Serve a Poisson trace through fail/recover churn; report recovery."""
    from repro.serving import ServingRuntime, SLOPolicy, WorkloadGenerator
    from repro.serving.churn import DeviceChurnEvent

    models = ["clip-vit-b16", "encoder-vqa-small"]
    trace = WorkloadGenerator(
        models, kind="poisson", rate_rps=0.4, duration_s=duration_s, seed=5
    ).generate()
    churn = (
        DeviceChurnEvent(duration_s / 6, "desktop", "fail"),
        DeviceChurnEvent(duration_s / 2, "desktop", "recover"),
        DeviceChurnEvent(2 * duration_s / 3, "laptop", "fail"),
    )
    runtime = ServingRuntime(models, slo=SLOPolicy(admission=False))
    start = time.perf_counter()
    report = runtime.run(trace, churn_events=churn)
    wall_s = time.perf_counter() - start
    return {
        "duration_s": duration_s,
        "wall_s": round(wall_s, 4),
        "arrivals": report.arrivals,
        "completed": report.completed,
        "rejected": report.rejected,
        "conservation_ok": report.completed + report.rejected == report.arrivals,
        "migrations": len(report.migrations),
        "churn_events_applied": sum(1 for c in report.churn if c.applied),
        "p50_s": round(report.latency.p50, 4),
        "p95_s": round(report.latency.p95, 4),
        "switching_cost_s": round(
            sum(m.switching_cost_s for m in report.migrations), 4
        ),
    }


def bench_serving_engines(
    label: str, kind: str, rate_rps: float, duration_s: float, *, seed: int = 0,
    flat_repeats: int = 2,
) -> dict:
    """Replay one trace through both serving engines; record the speedup.

    The flat engine is timed best-of-``flat_repeats`` (it is fast enough to
    repeat); the legacy generator-process engine runs once.  The reports
    must agree on every aggregate metric — the per-record bit-identity is
    pinned separately by ``tests/test_serving_engine_equivalence.py``.
    """
    from repro.serving import ServingRuntime, WorkloadGenerator

    def run(engine: str, repeats: int):
        best_wall = None
        report = None
        for _ in range(repeats):
            trace = WorkloadGenerator(
                SERVING_MODELS, kind=kind, rate_rps=rate_rps,
                duration_s=duration_s, seed=seed,
            ).generate()
            runtime = ServingRuntime(SERVING_MODELS, engine=engine)
            start = time.perf_counter()
            report = runtime.run(trace)
            wall = time.perf_counter() - start
            if best_wall is None or wall < best_wall:
                best_wall = wall
        return best_wall, report

    flat_wall, flat = run("flat", flat_repeats)
    legacy_wall, legacy = run("processes", 1)
    return {
        "label": label,
        "workload": kind,
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "seed": seed,
        "arrivals": flat.arrivals,
        "flat_wall_s": round(flat_wall, 4),
        "flat_arrivals_per_s": round(flat.arrivals / flat_wall, 1),
        "legacy_wall_s": round(legacy_wall, 4),
        "legacy_arrivals_per_s": round(legacy.arrivals / legacy_wall, 1),
        "speedup": round(legacy_wall / flat_wall, 2),
        "flat_matches_legacy": flat.metrics_tuple() == legacy.metrics_tuple(),
        "conservation_ok": (
            flat.completed + flat.rejected == flat.arrivals
            and legacy.completed + legacy.rejected == legacy.arrivals
        ),
        "completed": flat.completed,
        "rejected": flat.rejected,
        "p95_s": round(flat.latency.p95, 4),
    }


def bench_serving_replay(kind: str, rate_rps: float, duration_s: float, *, seed: int = 0) -> dict:
    """The headline replay: flat engine, records off, arrivals at scale."""
    from repro.serving import ServingRuntime, WorkloadGenerator

    trace = WorkloadGenerator(
        SERVING_MODELS, kind=kind, rate_rps=rate_rps,
        duration_s=duration_s, seed=seed,
    ).generate()
    runtime = ServingRuntime(SERVING_MODELS, engine="flat", keep_records=False)
    start = time.perf_counter()
    report = runtime.run(trace)
    wall_s = time.perf_counter() - start
    return {
        "workload": kind,
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "seed": seed,
        "arrivals": report.arrivals,
        "wall_s": round(wall_s, 2),
        "arrivals_per_s": round(report.arrivals / wall_s, 1),
        "completed": report.completed,
        "rejected": report.rejected,
        "conservation_ok": report.completed + report.rejected == report.arrivals,
        "p95_s": round(report.latency.p95, 4),
    }


def _report_digest(report) -> tuple:
    """Everything two runs must agree on, with request ids rebased (the
    engine's id counter is process-global, so back-to-back runs of the
    same trace number their requests from different offsets)."""
    base = min((r.request_id for r in report.records if r.request_id >= 0), default=0)
    records = tuple(
        (
            r.request_id - base if r.request_id >= 0 else r.request_id,
            r.model_name, r.arrival_time, r.finish_time, r.slo_s,
            r.rejected_reason, r.retries, r.timed_out,
        )
        for r in report.records
    )
    return (
        report.metrics_tuple(), records, tuple(report.migrations),
        tuple(report.churn), tuple(report.scaling), tuple(report.brownout),
    )


def bench_resilience(smoke: bool) -> dict:
    """Fault scenarios with and without graceful degradation (gated).

    Runs the SAME study as ``python -m repro resilience``
    (:func:`repro.experiments.resilience.run_resilience_study` — one
    definition, no drift).  Gates recorded in the payload: (a) widened
    conservation ``completed + rejected + timed_out == arrivals`` on every
    (scenario, configuration) cell, (b) the graceful configuration
    (timeouts + retry budget + brownout) beating the degradation-off
    baseline on goodput **or** p95 in the regional-outage and straggler
    rows, (c) the flat and legacy engines bit-identical under a faulted,
    degradation-on run, and (d) same seed ⇒ identical fault trace and
    metrics.  The study itself is sub-second, so smoke and full runs share
    the exact same parameters — one record, no drifting smoke variant.
    """
    from repro.experiments.resilience import (
        STUDY_DURATION_S,
        STUDY_RATE_RPS,
        STUDY_SEED,
        run_resilience_study,
    )

    start = time.perf_counter()
    reports = run_resilience_study()
    result = {
        "workload": "bursty",
        "rate_rps": STUDY_RATE_RPS,
        "duration_s": STUDY_DURATION_S,
        "seed": STUDY_SEED,
        "arrivals": reports[0][2].arrivals,
        "scenarios": {},
    }
    for scenario, key, report in reports:
        cell = result["scenarios"].setdefault(scenario, {})
        cell[key] = {
            "goodput_rps": round(report.goodput_rps, 6),
            "p50_s": round(report.latency.p50, 4),
            "p95_s": round(report.latency.p95, 4),
            "completed": report.completed,
            "rejected": report.rejected,
            "timed_out": report.timed_out,
            "retries": sum(r.retries for r in report.records),
            "brownout_level_changes": len(report.brownout),
            "migrations": len(report.migrations),
            "conservation_ok": (
                report.completed + report.rejected + report.timed_out
                == report.arrivals
            ),
        }
    for scenario, cell in result["scenarios"].items():
        cell["graceful_beats_baseline"] = (
            cell["graceful"]["goodput_rps"] > cell["baseline"]["goodput_rps"]
            or cell["graceful"]["p95_s"] < cell["baseline"]["p95_s"]
        )

    # Gate (c): flat vs legacy bit-identity on a faulted, degradation-on
    # run (the equivalence tests pin more configurations; this records the
    # cross-check in the trajectory).
    flat, legacy = (
        run_resilience_study(scenarios=["regional-outage"], engine=engine)[1][2]
        for engine in ("flat", "processes")
    )
    result["engines_bit_identical"] = _report_digest(flat) == _report_digest(legacy)

    # Gate (d): same seed, same study call ⇒ identical fault trace and
    # metrics (the whole pipeline is deterministic, not just seeded).
    rerun = run_resilience_study()
    result["deterministic"] = all(
        _report_digest(a[2]) == _report_digest(b[2])
        for a, b in zip(reports, rerun)
    )
    result["wall_s"] = round(time.perf_counter() - start, 4)
    return result


def bench_federation(smoke: bool) -> dict:
    """WAN federation: spillover routing vs isolated clusters (gated).

    Runs the SAME study as ``python -m repro federation --study``
    (:func:`repro.experiments.federation.run_federation_study` — one
    definition, no drift) at full or smoke duration.  Gates recorded in
    the payload: (a) per-cluster and global cross-cluster conservation in
    every (scenario, mode) cell, (b) ``merge(parallel)`` bit-identical to
    ``merge(sequential)`` for the same seed, (c) spillover beating the
    isolated baseline on goodput **or** p95 under the regional outage AND
    under offset diurnal peaks, (d) same-seed rerun digest determinism.
    """
    from repro.experiments.federation import (
        STUDY_DURATION_S,
        STUDY_RATE_RPS,
        STUDY_SEED,
        run_federation_study,
        study_fault_plans,
        study_runtime,
    )

    duration_s = 40.0 if smoke else STUDY_DURATION_S
    start = time.perf_counter()
    reports = run_federation_study(duration_s, STUDY_SEED)
    result = {
        "workload": "diurnal",
        "rate_rps_per_cluster": STUDY_RATE_RPS,
        "duration_s": duration_s,
        "seed": STUDY_SEED,
        "clusters": len(reports[0][2].clusters),
        "local_arrivals": reports[0][2].local_arrivals,
        "scenarios": {},
    }
    for scenario, key, report in reports:
        per_cluster_ok = all(
            c.arrivals == c.local_arrivals - c.forwarded_out + c.forwarded_in
            and c.completed + c.rejected + c.timed_out == c.arrivals
            for c in report.clusters
        )
        ledger = sum(
            c.completed + c.rejected + c.timed_out + c.forwarded_out - c.forwarded_in
            for c in report.clusters
        )
        cell = result["scenarios"].setdefault(scenario, {})
        cell[key] = {
            "goodput_rps": round(report.goodput_rps, 6),
            "p50_s": round(report.latency.p50, 4),
            "p95_s": round(report.latency.p95, 4),
            "completed": report.completed,
            "forwarded": report.forwarded,
            "rejected": report.rejected,
            "timed_out": report.timed_out,
            "slo_attainment": round(report.slo_attainment, 6),
            "conservation_ok": per_cluster_ok and ledger == report.local_arrivals,
            "digest": report.digest(),
        }
    for scenario, cell in result["scenarios"].items():
        cell["spillover_beats_isolated"] = (
            cell["spillover"]["goodput_rps"] > cell["isolated"]["goodput_rps"]
            or cell["spillover"]["p95_s"] < cell["isolated"]["p95_s"]
        )

    # Gate (b): the multiprocess fan-out must merge bit-identically to the
    # sequential oracle — same seed, outage scenario (the hardest cell).
    runtime = study_runtime(spillover=True, duration_s=duration_s)
    plans = study_fault_plans("regional-outage", duration_s)
    sequential = runtime.run(STUDY_SEED, fault_plans=plans, parallel=False)
    parallel = runtime.run(STUDY_SEED, fault_plans=plans, parallel=True)
    result["parallel_matches_sequential"] = parallel.digest() == sequential.digest()

    # Gate (d): same-seed rerun of the whole study reproduces every digest.
    rerun = run_federation_study(duration_s, STUDY_SEED)
    result["deterministic"] = all(
        a[2].digest() == b[2].digest() for a, b in zip(reports, rerun)
    )
    result["wall_s"] = round(time.perf_counter() - start, 4)
    return result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="trimmed sweep for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="objective-timing repetitions per instance (default 30)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="where to write the JSON report (default: BENCH_placement.json "
        "for full runs, BENCH_smoke.json for --smoke so the checked-in "
        "full-sweep record is never clobbered by a trimmed run)",
    )
    parser.add_argument(
        "--energy-output", type=Path, default=None,
        help="where to write the energy-placement JSON (default: "
        "BENCH_energy.json for full runs, BENCH_energy_smoke.json for --smoke)",
    )
    parser.add_argument(
        "--replica-output", type=Path, default=None,
        help="where to write the replica-placement/serving JSON (default: "
        "BENCH_replicas.json for full runs, BENCH_replicas_smoke.json for --smoke)",
    )
    parser.add_argument(
        "--serving-output", type=Path, default=None,
        help="where to write the serving-engine JSON (default: "
        "BENCH_serving.json for full runs, BENCH_serving_smoke.json for --smoke)",
    )
    parser.add_argument(
        "--validation-output", type=Path, default=None,
        help="where to write the solver-vs-serving validation JSON (default: "
        "BENCH_validation.json for full runs, BENCH_validation_smoke.json "
        "for --smoke)",
    )
    parser.add_argument(
        "--resilience-output", type=Path, default=None,
        help="where to write the fault-scenario resilience JSON (default: "
        "BENCH_resilience.json for full runs, BENCH_resilience_smoke.json "
        "for --smoke)",
    )
    parser.add_argument(
        "--federation-output", type=Path, default=None,
        help="where to write the WAN federation JSON (default: "
        "BENCH_federation.json for full runs, BENCH_federation_smoke.json "
        "for --smoke)",
    )
    args = parser.parse_args()
    if args.output is None:
        args.output = REPO_ROOT / ("BENCH_smoke.json" if args.smoke else "BENCH_placement.json")
    if args.energy_output is None:
        args.energy_output = REPO_ROOT / (
            "BENCH_energy_smoke.json" if args.smoke else "BENCH_energy.json"
        )
    if args.replica_output is None:
        args.replica_output = REPO_ROOT / (
            "BENCH_replicas_smoke.json" if args.smoke else "BENCH_replicas.json"
        )
    if args.serving_output is None:
        args.serving_output = REPO_ROOT / (
            "BENCH_serving_smoke.json" if args.smoke else "BENCH_serving.json"
        )
    if args.validation_output is None:
        args.validation_output = REPO_ROOT / (
            "BENCH_validation_smoke.json" if args.smoke else "BENCH_validation.json"
        )
    if args.resilience_output is None:
        args.resilience_output = REPO_ROOT / (
            "BENCH_resilience_smoke.json" if args.smoke else "BENCH_resilience.json"
        )
    if args.federation_output is None:
        args.federation_output = REPO_ROOT / (
            "BENCH_federation_smoke.json" if args.smoke else "BENCH_federation.json"
        )

    import numpy

    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    results = {
        "benchmark": "placement",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "objective_sweep": [],
        "solver_sweep": [],
    }

    for n_modules, n_devices in sweep:
        print(f"objective sweep {n_modules}x{n_devices} ...", flush=True)
        results["objective_sweep"].append(
            bench_objective(n_modules, n_devices, args.repeats)
        )
    for n_modules, n_devices in sweep:
        print(f"solver sweep {n_modules}x{n_devices} ...", flush=True)
        results["solver_sweep"].append(bench_solver(n_modules, n_devices))
    print("serving churn recovery ...", flush=True)
    results["serving_churn"] = bench_serving_churn(20.0 if args.smoke else 60.0)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    energy_results = {
        "benchmark": "energy-placement",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "solver_sweep": [],
    }
    for n_modules, n_devices in (ENERGY_SMOKE_SWEEP if args.smoke else ENERGY_FULL_SWEEP):
        print(f"energy solver sweep {n_modules}x{n_devices} ...", flush=True)
        energy_results["solver_sweep"].append(bench_energy_solver(n_modules, n_devices))
    args.energy_output.write_text(json.dumps(energy_results, indent=2) + "\n")
    print(f"wrote {args.energy_output}")

    replica_results = {
        "benchmark": "replica-placement",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "solver_sweep": [],
    }
    for n_modules, n_devices, max_copies in (
        REPLICA_SMOKE_SWEEP if args.smoke else REPLICA_FULL_SWEEP
    ):
        print(f"replica solver sweep {n_modules}x{n_devices} mc={max_copies} ...", flush=True)
        replica_results["solver_sweep"].append(
            bench_replica_solver(n_modules, n_devices, max_copies)
        )
    print("replica serving (autoscale vs static replication) ...", flush=True)
    replica_results["serving"] = bench_replica_serving(20.0 if args.smoke else 40.0)
    args.replica_output.write_text(json.dumps(replica_results, indent=2) + "\n")
    print(f"wrote {args.replica_output}")

    serving_results = {
        "benchmark": "serving-engine",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "speedup_gate": (
            SERVING_SPEEDUP_GATE_SMOKE if args.smoke else SERVING_SPEEDUP_GATE_FULL
        ),
        "engine_sweep": [],
    }
    for label, kind, rate_rps, duration_s in (
        SERVING_SMOKE_SWEEP if args.smoke else SERVING_FULL_SWEEP
    ):
        print(f"serving engine sweep {label} (rate={rate_rps}) ...", flush=True)
        serving_results["engine_sweep"].append(
            bench_serving_engines(label, kind, rate_rps, duration_s)
        )
    replay_point = SERVING_REPLAY_SMOKE if args.smoke else SERVING_REPLAY_FULL
    print(f"serving replay (flat, rate={replay_point[1]}, "
          f"duration={replay_point[2]}) ...", flush=True)
    serving_results["replay"] = bench_serving_replay(*replay_point)
    args.serving_output.write_text(json.dumps(serving_results, indent=2) + "\n")
    print(f"wrote {args.serving_output}")

    print("solver-vs-serving validation sweep ...", flush=True)
    validation_results = {
        "benchmark": "solver-serving-validation",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
    validation_results.update(bench_validation(args.smoke))
    args.validation_output.write_text(json.dumps(validation_results, indent=2) + "\n")
    print(f"wrote {args.validation_output}")

    print("fault-scenario resilience study ...", flush=True)
    resilience_results = {
        "benchmark": "fault-resilience",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
    resilience_results.update(bench_resilience(args.smoke))
    args.resilience_output.write_text(json.dumps(resilience_results, indent=2) + "\n")
    print(f"wrote {args.resilience_output}")

    print("WAN federation study ...", flush=True)
    federation_results = {
        "benchmark": "wan-federation",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
    }
    federation_results.update(bench_federation(args.smoke))
    args.federation_output.write_text(json.dumps(federation_results, indent=2) + "\n")
    print(f"wrote {args.federation_output}")

    failures = []
    for row in results["objective_sweep"]:
        if not row["bit_identical"]:
            failures.append(f"objective mismatch at {row['modules']}x{row['devices']}")
    for row in results["solver_sweep"]:
        if row.get("brute_matches_bnb") is False:
            failures.append(f"solver mismatch at {row['modules']}x{row['devices']}")
        if row["bnb_objective"] > row["greedy_objective"] + 1e-12:
            failures.append(f"bnb worse than greedy at {row['modules']}x{row['devices']}")
    if not results["serving_churn"]["conservation_ok"]:
        failures.append("serving conservation violated")
    for row in energy_results["solver_sweep"]:
        if row.get("brute_matches_bnb") is False:
            failures.append(f"energy solver mismatch at {row['modules']}x{row['devices']}")
        if row["bnb_joules"] > row["greedy_joules"] + 1e-12:
            failures.append(f"energy bnb worse than greedy at {row['modules']}x{row['devices']}")
        if row["bnb_latency_s"] > row["budget_factor"] * row["greedy_latency_s"] + 1e-12:
            failures.append(f"energy bnb over budget at {row['modules']}x{row['devices']}")
    for row in replica_results["solver_sweep"]:
        where = f"{row['modules']}x{row['devices']} mc={row['max_copies']}"
        if row.get("brute_matches_bnb") is False:
            failures.append(f"replica solver mismatch at {where}")
        if row["bnb_objective"] > row["replica_greedy_objective"] + 1e-12:
            failures.append(f"replica bnb worse than replica greedy at {where}")
        if row["bnb_objective"] > row["single_copy_objective"] + 1e-12:
            failures.append(f"replica bnb worse than single-copy at {where}")
    serving = replica_results["serving"]
    for label in ("single_copy", "leftover", "autoscale"):
        if not serving[label]["conservation_ok"]:
            failures.append(f"replica serving conservation violated ({label})")
    if not serving["autoscale_beats_leftover"]:
        failures.append(
            "autoscale does not beat leftover replication on goodput or p95 "
            "at the benchmarked high-rate point"
        )
    speedup_gate = serving_results["speedup_gate"]
    for row in serving_results["engine_sweep"]:
        if not row["flat_matches_legacy"]:
            failures.append(
                f"serving engine report mismatch at {row['label']} "
                f"(rate={row['rate_rps']})"
            )
        if not row["conservation_ok"]:
            failures.append(
                f"serving engine conservation violated at {row['label']}"
            )
        if row["label"] == "overload" and row["speedup"] < speedup_gate:
            failures.append(
                f"flat engine speedup {row['speedup']}x below the "
                f"{speedup_gate}x gate at the overload point"
            )
    if not serving_results["replay"]["conservation_ok"]:
        failures.append("serving replay conservation violated")
    validation_gates = validation_results["gates"]
    if not validation_gates["tolerance_ok"]:
        failures.append(
            "validation: predicted latency outside the tolerance band on a "
            "sub-saturation row (see BENCH_validation*.json rows)"
        )
    if not validation_gates["aware_beats_blind_at_overload"]:
        failures.append(
            "validation: queue-aware placement does not beat queue-blind on "
            "measured p95 or goodput at the overload row"
        )
    if not validation_results["qa_bnb_matches_brute"]:
        failures.append(
            "validation: queue-aware bnb does not match brute force on the "
            "deployment instance"
        )
    for scenario, cell in resilience_results["scenarios"].items():
        for key in ("baseline", "graceful"):
            if not cell[key]["conservation_ok"]:
                failures.append(
                    f"resilience: conservation violated ({scenario}/{key})"
                )
        if scenario in ("regional-outage", "flash-crowd-stragglers") and not cell[
            "graceful_beats_baseline"
        ]:
            failures.append(
                f"resilience: graceful degradation does not beat the "
                f"degradation-off baseline on goodput or p95 ({scenario})"
            )
    if not resilience_results["engines_bit_identical"]:
        failures.append(
            "resilience: flat and legacy engines disagree under a faulted, "
            "degradation-on run"
        )
    if not resilience_results["deterministic"]:
        failures.append(
            "resilience: same-seed rerun produced a different fault trace "
            "or metrics"
        )
    for scenario, cell in federation_results["scenarios"].items():
        for key in ("isolated", "spillover"):
            if not cell[key]["conservation_ok"]:
                failures.append(
                    f"federation: cross-cluster conservation violated "
                    f"({scenario}/{key})"
                )
        if not cell["spillover_beats_isolated"]:
            failures.append(
                f"federation: WAN spillover does not beat isolated clusters "
                f"on goodput or p95 ({scenario})"
            )
    if not federation_results["parallel_matches_sequential"]:
        failures.append(
            "federation: parallel per-cluster simulation does not merge "
            "bit-identically to the sequential oracle"
        )
    if not federation_results["deterministic"]:
        failures.append(
            "federation: same-seed rerun produced a different merged digest"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
