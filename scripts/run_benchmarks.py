#!/usr/bin/env python
"""Run the placement perf benchmarks; emit ``BENCH_placement.json`` and
``BENCH_energy.json``.

This is the repo's recorded perf trajectory: the instance-size sweep
(scalar vs. tensorized objective, brute force vs. branch-and-bound), a
serve-under-churn recovery run, and the energy-placement sweep (energy
branch-and-bound vs. brute force under a latency budget, see
``docs/energy.md``).  The checked-in JSONs are regenerated with::

    python scripts/run_benchmarks.py

and CI runs the trimmed ``--smoke`` variant on every push (writing
``BENCH_smoke.json`` / ``BENCH_energy_smoke.json``), uploading the JSONs as
artifacts so the trend is inspectable per commit.  See
``docs/performance.md`` for the schema and how to read the numbers.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

FULL_SWEEP = [(3, 4), (4, 5), (6, 8), (8, 16), (10, 24), (10, 32)]
SMOKE_SWEEP = [(3, 4), (6, 8), (8, 16)]
ENERGY_FULL_SWEEP = [(3, 4), (4, 5), (6, 8), (8, 16), (10, 32)]
ENERGY_SMOKE_SWEEP = [(3, 4), (6, 8)]


def bench_objective(n_modules: int, n_devices: int, repeats: int) -> dict:
    """Scalar vs. tensorized objective timing on one synthetic instance."""
    from repro.core.placement.greedy import greedy_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=16)
    requests = list(instance.requests)
    placement = greedy_placement(instance.problem)
    tensorized = LatencyModel(instance.problem, instance.network)
    scalar = LatencyModel(instance.problem, instance.network, use_tensors=False)

    build_start = time.perf_counter()
    tensor_value = tensorized.objective(requests, placement)  # builds tensors
    tensor_build_s = time.perf_counter() - build_start
    scalar_value = scalar.objective(requests, placement)

    start = time.perf_counter()
    for _ in range(repeats):
        tensorized.objective(requests, placement)
    tensor_s = (time.perf_counter() - start) / repeats
    start = time.perf_counter()
    for _ in range(repeats):
        scalar.objective(requests, placement)
    scalar_s = (time.perf_counter() - start) / repeats
    return {
        "modules": n_modules,
        "devices": n_devices,
        "requests": len(requests),
        "bit_identical": tensor_value == scalar_value,
        "tensor_build_s": round(tensor_build_s, 6),
        "scalar_objective_s": round(scalar_s, 6),
        "tensor_objective_s": round(tensor_s, 6),
        "speedup": round(scalar_s / tensor_s, 2),
    }


def bench_solver(n_modules: int, n_devices: int) -> dict:
    """Greedy / brute-force / branch-and-bound on one synthetic instance."""
    from repro.core.placement.bnb import BnBStats, branch_and_bound_placement
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.optimal import MAX_ASSIGNMENTS, optimal_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=4)
    requests = list(instance.requests)
    model = LatencyModel(instance.problem, instance.network)

    start = time.perf_counter()
    greedy = greedy_placement(instance.problem)
    greedy_s = time.perf_counter() - start
    greedy_objective = model.objective(requests, greedy)

    stats = BnBStats()
    start = time.perf_counter()
    _, bnb_objective = branch_and_bound_placement(
        instance.problem, requests, instance.network, stats=stats
    )
    bnb_s = time.perf_counter() - start

    row = {
        "modules": n_modules,
        "devices": n_devices,
        "assignments": n_devices ** n_modules,
        "greedy_s": round(greedy_s, 6),
        "greedy_objective": greedy_objective,
        "bnb_s": round(bnb_s, 6),
        "bnb_objective": bnb_objective,
        "bnb_nodes": stats.nodes,
        "bnb_leaves": stats.leaves,
        "bnb_pruned": stats.pruned,
        "greedy_optimality_gap": round(greedy_objective / bnb_objective - 1.0, 6),
    }
    # Brute force only where the old enumeration would even start, and only
    # at sizes that finish in reasonable time for a benchmark harness.
    if n_devices ** n_modules <= min(MAX_ASSIGNMENTS, 300_000):
        start = time.perf_counter()
        _, brute_objective = optimal_placement(
            instance.problem, requests, instance.network, solver="brute"
        )
        row["brute_s"] = round(time.perf_counter() - start, 6)
        row["brute_matches_bnb"] = brute_objective == bnb_objective
    return row


def bench_energy_solver(n_modules: int, n_devices: int, budget_factor: float = 1.5) -> dict:
    """Energy branch-and-bound vs brute force under a 1.5x latency budget."""
    from repro.core.placement.bnb import BnBStats, energy_branch_and_bound
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.optimal import MAX_ASSIGNMENTS, energy_optimal_placement
    from repro.core.routing.latency import LatencyModel
    from repro.experiments.scaling import synthetic_instance
    from repro.profiles.energy import energy_objective

    instance = synthetic_instance(n_modules, n_devices, seed=1, n_requests=4)
    requests = list(instance.requests)
    model = LatencyModel(instance.problem, instance.network)
    greedy = greedy_placement(instance.problem)
    greedy_latency = model.objective(requests, greedy)
    greedy_joules = energy_objective(requests, greedy, model)
    budget = budget_factor * greedy_latency

    stats = BnBStats()
    start = time.perf_counter()
    placement, joules = energy_branch_and_bound(
        instance.problem, requests, instance.network,
        latency_budget=budget, tensors=model.tensors, stats=stats,
    )
    bnb_s = time.perf_counter() - start

    row = {
        "modules": n_modules,
        "devices": n_devices,
        "assignments": n_devices ** n_modules,
        "budget_factor": budget_factor,
        "greedy_joules": greedy_joules,
        "greedy_latency_s": greedy_latency,
        "bnb_s": round(bnb_s, 6),
        "bnb_joules": joules,
        "bnb_latency_s": model.objective(requests, placement),
        "bnb_nodes": stats.nodes,
        "bnb_leaves": stats.leaves,
        "bnb_pruned": stats.pruned,
        "energy_saving": round(1.0 - joules / greedy_joules, 6),
    }
    if n_devices ** n_modules <= min(MAX_ASSIGNMENTS, 300_000):
        start = time.perf_counter()
        brute_placement, brute_joules = energy_optimal_placement(
            instance.problem, requests, instance.network,
            latency_budget=budget, solver="brute", tensors=model.tensors,
        )
        row["brute_s"] = round(time.perf_counter() - start, 6)
        row["brute_matches_bnb"] = (
            brute_joules == joules
            and brute_placement.as_dict() == placement.as_dict()
        )
    return row


def bench_serving_churn(duration_s: float) -> dict:
    """Serve a Poisson trace through fail/recover churn; report recovery."""
    from repro.serving import ServingRuntime, SLOPolicy, WorkloadGenerator
    from repro.serving.churn import DeviceChurnEvent

    models = ["clip-vit-b16", "encoder-vqa-small"]
    trace = WorkloadGenerator(
        models, kind="poisson", rate_rps=0.4, duration_s=duration_s, seed=5
    ).generate()
    churn = (
        DeviceChurnEvent(duration_s / 6, "desktop", "fail"),
        DeviceChurnEvent(duration_s / 2, "desktop", "recover"),
        DeviceChurnEvent(2 * duration_s / 3, "laptop", "fail"),
    )
    runtime = ServingRuntime(models, slo=SLOPolicy(admission=False))
    start = time.perf_counter()
    report = runtime.run(trace, churn_events=churn)
    wall_s = time.perf_counter() - start
    return {
        "duration_s": duration_s,
        "wall_s": round(wall_s, 4),
        "arrivals": report.arrivals,
        "completed": report.completed,
        "rejected": report.rejected,
        "conservation_ok": report.completed + report.rejected == report.arrivals,
        "migrations": len(report.migrations),
        "churn_events_applied": sum(1 for c in report.churn if c.applied),
        "p50_s": round(report.latency.p50, 4),
        "p95_s": round(report.latency.p95, 4),
        "switching_cost_s": round(
            sum(m.switching_cost_s for m in report.migrations), 4
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="trimmed sweep for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--repeats", type=int, default=30,
        help="objective-timing repetitions per instance (default 30)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="where to write the JSON report (default: BENCH_placement.json "
        "for full runs, BENCH_smoke.json for --smoke so the checked-in "
        "full-sweep record is never clobbered by a trimmed run)",
    )
    parser.add_argument(
        "--energy-output", type=Path, default=None,
        help="where to write the energy-placement JSON (default: "
        "BENCH_energy.json for full runs, BENCH_energy_smoke.json for --smoke)",
    )
    args = parser.parse_args()
    if args.output is None:
        args.output = REPO_ROOT / ("BENCH_smoke.json" if args.smoke else "BENCH_placement.json")
    if args.energy_output is None:
        args.energy_output = REPO_ROOT / (
            "BENCH_energy_smoke.json" if args.smoke else "BENCH_energy.json"
        )

    import numpy

    sweep = SMOKE_SWEEP if args.smoke else FULL_SWEEP
    results = {
        "benchmark": "placement",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "objective_sweep": [],
        "solver_sweep": [],
    }

    for n_modules, n_devices in sweep:
        print(f"objective sweep {n_modules}x{n_devices} ...", flush=True)
        results["objective_sweep"].append(
            bench_objective(n_modules, n_devices, args.repeats)
        )
    for n_modules, n_devices in sweep:
        print(f"solver sweep {n_modules}x{n_devices} ...", flush=True)
        results["solver_sweep"].append(bench_solver(n_modules, n_devices))
    print("serving churn recovery ...", flush=True)
    results["serving_churn"] = bench_serving_churn(20.0 if args.smoke else 60.0)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")

    energy_results = {
        "benchmark": "energy-placement",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "solver_sweep": [],
    }
    for n_modules, n_devices in (ENERGY_SMOKE_SWEEP if args.smoke else ENERGY_FULL_SWEEP):
        print(f"energy solver sweep {n_modules}x{n_devices} ...", flush=True)
        energy_results["solver_sweep"].append(bench_energy_solver(n_modules, n_devices))
    args.energy_output.write_text(json.dumps(energy_results, indent=2) + "\n")
    print(f"wrote {args.energy_output}")

    failures = []
    for row in results["objective_sweep"]:
        if not row["bit_identical"]:
            failures.append(f"objective mismatch at {row['modules']}x{row['devices']}")
    for row in results["solver_sweep"]:
        if row.get("brute_matches_bnb") is False:
            failures.append(f"solver mismatch at {row['modules']}x{row['devices']}")
        if row["bnb_objective"] > row["greedy_objective"] + 1e-12:
            failures.append(f"bnb worse than greedy at {row['modules']}x{row['devices']}")
    if not results["serving_churn"]["conservation_ok"]:
        failures.append("serving conservation violated")
    for row in energy_results["solver_sweep"]:
        if row.get("brute_matches_bnb") is False:
            failures.append(f"energy solver mismatch at {row['modules']}x{row['devices']}")
        if row["bnb_joules"] > row["greedy_joules"] + 1e-12:
            failures.append(f"energy bnb worse than greedy at {row['modules']}x{row['devices']}")
        if row["bnb_latency_s"] > row["budget_factor"] * row["greedy_latency_s"] + 1e-12:
            failures.append(f"energy bnb over budget at {row['modules']}x{row['devices']}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
