"""Command-line runner: ``python -m repro <experiment>`` and ``serve``.

Regenerates any paper artifact from the terminal:

    python -m repro table6      # deployment cost & latency per architecture
    python -m repro table10     # multi-task sharing ledger
    python -m repro fig3        # inference timeline
    python -m repro all         # everything (slow: includes accuracy runs)

And runs the online serving runtime (see docs/serving.md):

    python -m repro serve --workload bursty --duration 60 --churn 0.1

And the AST invariant linter (see docs/analysis.md):

    python -m repro lint --format json

And the multi-cluster WAN federation (see docs/federation.md):

    python -m repro federation --study
    python -m repro federation --outage --parallel
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _table6() -> str:
    from repro.experiments.table6 import render_table6

    return render_table6().render()


def _table7() -> str:
    from repro.experiments.table7 import render_table7

    return render_table7().render()


def _table8() -> str:
    from repro.experiments.table8 import render_table8

    return render_table8(samples=100).render()


def _table9() -> str:
    from repro.experiments.table9 import render_table9

    return render_table9().render()


def _table10() -> str:
    from repro.experiments.table10 import render_table10

    return render_table10().render()


def _table11() -> str:
    from repro.experiments.table11 import render_table11

    return render_table11().render()


def _fig3() -> str:
    from repro.experiments.fig3 import render_fig3

    return render_fig3()


def _optimality() -> str:
    from repro.experiments.optimality import run_optimality

    return run_optimality().render()


def _batching() -> str:
    from repro.experiments.batching import render_batching

    return render_batching()


def _ablations() -> str:
    from repro.experiments.ablations import render_ablations

    return render_ablations()


def _extensions() -> str:
    from repro.experiments.extensions import render_extensions

    return render_extensions()


def _energy() -> str:
    from repro.experiments.energy import render_energy

    return render_energy()


def _replicas() -> str:
    from repro.experiments.replicas import render_replicas

    return render_replicas()


def _validation() -> str:
    from repro.experiments.validation import render_validation

    return render_validation()


def _resilience() -> str:
    from repro.experiments.resilience import render_resilience

    return render_resilience()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "table10": _table10,
    "table11": _table11,
    "fig3": _fig3,
    "optimality": _optimality,
    "batching": _batching,
    "ablations": _ablations,
    "extensions": _extensions,
    "energy": _energy,
    "replicas": _replicas,
    "resilience": _resilience,
    "validation": _validation,
}


#: Subcommands with their own argv (not experiment artifacts).
SUBCOMMANDS = ("serve", "lint", "federation")


def cli_commands() -> frozenset:
    """Every ``python -m repro <cmd>`` the CLI accepts.

    The docs-check script cross-references markdown invocations against
    this set, so a doc naming a command that does not exist fails CI.
    """
    return frozenset(EXPERIMENTS) | {"all"} | set(SUBCOMMANDS)


def lint_main(argv=None) -> int:
    """The ``lint`` subcommand: run the AST invariant checker."""
    from repro.analysis.runner import main as run_lint_cli

    return run_lint_cli(argv)


#: Default model mix for `serve`: three tasks sharing the ViT-B/16 tower.
DEFAULT_SERVE_MODELS = "clip-vit-b16,encoder-vqa-small,image-classification-vitb16"


def serve_main(argv=None) -> int:
    """The ``serve`` subcommand: run the online serving runtime."""
    from repro.serving import (
        WORKLOAD_KINDS,
        BrownoutPolicy,
        RetryPolicy,
        ServingRuntime,
        SLOPolicy,
        WorkloadGenerator,
        fault_scenario,
        generate_churn,
        scenario_names,
    )

    def positive(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be positive, got {text}")
        return value

    def non_negative(text: str) -> float:
        value = float(text)
        if value < 0:
            raise argparse.ArgumentTypeError(f"must be non-negative, got {text}")
        return value

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve a dynamic request stream on the emulated edge cluster.",
    )
    parser.add_argument("--workload", choices=WORKLOAD_KINDS, default="poisson",
                        help="arrival process shape (default: poisson)")
    parser.add_argument("--rate", type=positive, default=0.4,
                        help="base arrival rate in requests/second (default: 0.4)")
    parser.add_argument("--duration", type=positive, default=60.0,
                        help="arrival window in simulated seconds (default: 60)")
    parser.add_argument("--churn", type=non_negative, default=0.0,
                        help="device fail/recover events per simulated second (default: 0)")
    parser.add_argument("--faults", choices=scenario_names(), default=None,
                        help="inject a named fault scenario (seeded by --seed): "
                        "correlated regional outage, staggered compute stragglers, "
                        "or flaky/partitioning links — see docs/serving.md")
    parser.add_argument("--timeout", type=positive, default=None, metavar="SECONDS",
                        help="per-attempt timeout: cancel and re-route a module attempt "
                        "still unfinished after this many simulated seconds (default: off)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="total retry budget per request across timeouts and device "
                        "losses; exhausted requests terminate as timed out (default: unlimited)")
    parser.add_argument("--retry-backoff", type=non_negative, default=0.0, metavar="SECONDS",
                        help="exponential backoff base before each retry (default: 0)")
    parser.add_argument("--brownout", action="store_true",
                        help="enable the brownout controller: under backlog pressure, "
                        "shed the lowest-SLO-slack model classes first, restoring them "
                        "as pressure drains (hysteresis) — see docs/serving.md")
    parser.add_argument("--seed", type=int, default=0,
                        help="determinism seed for workload and churn (default: 0)")
    parser.add_argument("--models", default=DEFAULT_SERVE_MODELS,
                        help=f"comma-separated catalog models (default: {DEFAULT_SERVE_MODELS})")
    parser.add_argument("--slo-multiplier", type=positive, default=3.0,
                        help="deadline = multiplier x isolated latency (default: 3.0)")
    parser.add_argument("--no-admission", action="store_true",
                        help="admit everything (no SLO-based load shedding)")
    parser.add_argument("--max-batch", type=int, default=8,
                        help="micro-batcher chunk cap (default: 8)")
    parser.add_argument("--batch-window", type=non_negative, default=0.0,
                        help="micro-batch accumulation window in seconds (default: 0)")
    parser.add_argument("--energy", action="store_true",
                        help="append the per-device energy ledger (active/idle/radio "
                        "joules, joules per request) to the report")
    parser.add_argument("--autoscale", action="store_true",
                        help="enable the serving-layer replica autoscaler (backlog-driven "
                        "add/drop of module replicas, load time charged as switching "
                        "cost); starts from a single-copy deployment so the autoscaler "
                        "owns replication — see docs/serving.md")
    parser.add_argument("--autoscale-interval", type=positive, default=0.5,
                        help="autoscaler control-loop period in simulated seconds (default: 0.5)")
    parser.add_argument("--max-replicas", type=int, default=3,
                        help="per-module replica cap for the autoscaler (default: 3)")
    parser.add_argument("--congestion-aware", action="store_true",
                        help="plan the deployment with the queue-aware exact solver: "
                        "arrival rates measured from the trace price per-device "
                        "expected waits into the placement objective (docs/placement.md)")
    parser.add_argument("--engine", choices=("flat", "processes"), default="flat",
                        help="serving core: 'flat' is the vectorized event-loop engine, "
                        "'processes' the legacy one-generator-per-request engine; both "
                        "produce bit-identical reports (default: flat)")
    args = parser.parse_args(argv)

    from repro.core.catalog import MODEL_CATALOG

    models = [name.strip() for name in args.models.split(",") if name.strip()]
    if not models:
        parser.error("--models needs at least one catalog model name")
    unknown = [name for name in models if name not in MODEL_CATALOG]
    if unknown:
        parser.error(
            f"unknown model(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(MODEL_CATALOG))}"
        )
    if args.max_batch < 1:
        parser.error("--max-batch must be >= 1")
    if args.slo_multiplier < 1.0:
        parser.error("--slo-multiplier must be >= 1")
    if args.max_replicas < 1:
        parser.error("--max-replicas must be >= 1")
    if args.max_retries is not None and args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    trace = WorkloadGenerator(
        models,
        kind=args.workload,
        rate_rps=args.rate,
        duration_s=args.duration,
        seed=args.seed,
    ).generate()
    runtime = ServingRuntime(
        models,
        slo=SLOPolicy(latency_multiplier=args.slo_multiplier, admission=not args.no_admission),
        max_batch_size=args.max_batch,
        batch_window_s=args.batch_window,
        # With the autoscaler on, start single-copy: replication becomes the
        # autoscaler's decision instead of a one-shot deployment pass.
        replicate=not args.autoscale,
        autoscale=args.autoscale,
        autoscale_interval_s=args.autoscale_interval,
        max_replicas=args.max_replicas,
        engine=args.engine,
        congestion_aware=args.congestion_aware,
        retry=RetryPolicy(
            timeout_s=args.timeout,
            max_retries=args.max_retries,
            backoff_s=args.retry_backoff,
        ),
        brownout=BrownoutPolicy() if args.brownout else None,
    )
    churn = generate_churn(
        runtime.device_names,
        requester=runtime.requester,
        rate_per_s=args.churn,
        duration_s=args.duration,
        seed=args.seed,
    )
    faults = (
        fault_scenario(args.faults, duration_s=args.duration, seed=args.seed)
        if args.faults
        else None
    )
    report = runtime.run(trace, churn, faults=faults)
    print(report.render(show_energy=args.energy))
    return 0


def federation_main(argv=None) -> int:
    """The ``federation`` subcommand: multi-cluster WAN spillover runs."""
    from repro.experiments.federation import (
        FEDERATION_SCENARIOS,
        STUDY_DURATION_S,
        STUDY_SEED,
        render_federation,
        study_fault_plans,
        study_runtime,
    )

    def positive(text: str) -> float:
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(f"must be positive, got {text}")
        return value

    parser = argparse.ArgumentParser(
        prog="python -m repro federation",
        description="Federate timezone-offset edge clusters over priced WAN "
        "links and compare spillover routing against isolated clusters "
        "(see docs/federation.md).",
    )
    parser.add_argument("--study", action="store_true",
                        help="run the full scenario x mode study table "
                        f"(scenarios: {', '.join(FEDERATION_SCENARIOS)}) "
                        "instead of a single run")
    parser.add_argument("--duration", type=positive, default=STUDY_DURATION_S,
                        help="simulated seconds per cluster; the diurnal period "
                        f"scales with it (default: {STUDY_DURATION_S:g})")
    parser.add_argument("--seed", type=int, default=STUDY_SEED,
                        help="determinism seed; per-cluster workload seeds are "
                        f"derived from it by cluster name (default: {STUDY_SEED})")
    parser.add_argument("--no-spillover", action="store_true",
                        help="disable WAN forwarding (the isolated-clusters baseline)")
    parser.add_argument("--outage", action="store_true",
                        help="inject the regional outage (half of one cluster's "
                        "devices fail for the middle half of the run)")
    parser.add_argument("--parallel", action="store_true",
                        help="simulate clusters in separate worker processes; "
                        "the report is bit-identical to the sequential oracle")
    parser.add_argument("--engine", choices=("flat", "processes"), default="flat",
                        help="per-cluster serving core (default: flat)")
    args = parser.parse_args(argv)

    if args.study:
        print(render_federation(args.duration, args.seed, parallel=args.parallel))
        return 0
    scenario = "regional-outage" if args.outage else "offset-diurnal"
    runtime = study_runtime(
        spillover=not args.no_spillover, duration_s=args.duration, engine=args.engine
    )
    report = runtime.run(
        args.seed,
        fault_plans=study_fault_plans(scenario, args.duration),
        parallel=args.parallel,
    )
    print(report.render())
    print(f"  scenario {scenario}, digest {report.digest()[:16]}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "federation":
        return federation_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate S2M3 paper artifacts (tables, figures, stats).",
        epilog="Also: 'python -m repro serve --help' runs the online serving "
        "runtime, 'python -m repro lint' the AST invariant checker, and "
        "'python -m repro federation' the multi-cluster WAN federation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate ('all' runs everything); "
        "see also the 'serve' and 'lint' subcommands",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
