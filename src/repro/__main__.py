"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any paper artifact from the terminal:

    python -m repro table6      # deployment cost & latency per architecture
    python -m repro table10     # multi-task sharing ledger
    python -m repro fig3        # inference timeline
    python -m repro all         # everything (slow: includes accuracy runs)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _table6() -> str:
    from repro.experiments.table6 import render_table6

    return render_table6().render()


def _table7() -> str:
    from repro.experiments.table7 import render_table7

    return render_table7().render()


def _table8() -> str:
    from repro.experiments.table8 import render_table8

    return render_table8(samples=100).render()


def _table9() -> str:
    from repro.experiments.table9 import render_table9

    return render_table9().render()


def _table10() -> str:
    from repro.experiments.table10 import render_table10

    return render_table10().render()


def _table11() -> str:
    from repro.experiments.table11 import render_table11

    return render_table11().render()


def _fig3() -> str:
    from repro.experiments.fig3 import render_fig3

    return render_fig3()


def _optimality() -> str:
    from repro.experiments.optimality import run_optimality

    return run_optimality().render()


def _batching() -> str:
    from repro.experiments.batching import render_batching

    return render_batching()


def _ablations() -> str:
    from repro.experiments.ablations import render_ablations

    return render_ablations()


def _extensions() -> str:
    from repro.experiments.extensions import render_extensions

    return render_extensions()


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "table9": _table9,
    "table10": _table10,
    "table11": _table11,
    "fig3": _fig3,
    "optimality": _optimality,
    "batching": _batching,
    "ablations": _ablations,
    "extensions": _extensions,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate S2M3 paper artifacts (tables, figures, stats).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate ('all' runs everything)",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name]())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
