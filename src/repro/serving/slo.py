"""Service-level objectives and admission control for online serving.

Each admitted request carries an SLO — a completion deadline in **seconds**
measured from its arrival.  The policy derives the deadline from the
request's *isolated* analytic latency (Eq. 1-3 under the current placement,
no queueing): a request is "fast enough" when it finishes within
``latency_multiplier`` times what it would take on an idle cluster, with an
absolute floor so near-zero estimates don't create impossible deadlines.

Admission control compares the deadline against a *predicted* completion
time (isolated latency + live queue-pressure estimate from the queue-aware
router).  Requests predicted to miss are rejected at arrival — shedding load
early keeps the tail of the admitted stream bounded, which is what the
goodput metric rewards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SLOPolicy:
    """How deadlines are assigned and enforced.

    Attributes:
        latency_multiplier: Deadline = ``multiplier * isolated_estimate_s``
            (dimensionless; >= 1).
        floor_s: Minimum deadline in seconds (guards tiny estimates).
        absolute_s: If set, overrides the scaled deadline with a fixed
            per-request budget in seconds.
        admission: ``True`` rejects requests predicted to miss their SLO at
            arrival; ``False`` admits everything (pure FIFO overload).
    """

    latency_multiplier: float = 3.0
    floor_s: float = 1.0
    absolute_s: Optional[float] = None
    admission: bool = True

    def __post_init__(self) -> None:
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, got {self.latency_multiplier}"
            )
        if self.floor_s < 0:
            raise ValueError(f"floor_s must be non-negative, got {self.floor_s}")
        if self.absolute_s is not None and self.absolute_s <= 0:
            raise ValueError(f"absolute_s must be positive, got {self.absolute_s}")

    def slo_for(self, isolated_estimate_s: float) -> float:
        """The deadline (seconds from arrival) for a request whose isolated
        analytic latency is ``isolated_estimate_s``."""
        if self.absolute_s is not None:
            return self.absolute_s
        return max(self.floor_s, self.latency_multiplier * isolated_estimate_s)

    def admit(self, predicted_latency_s: float, slo_s: float) -> bool:
        """Whether to admit a request predicted to finish in ``predicted_latency_s``."""
        if not self.admission:
            return True
        return predicted_latency_s <= slo_s


@dataclass(frozen=True)
class RetryPolicy:
    """Per-attempt timeouts with a bounded retry budget.

    When ``timeout_s`` is set, every module *attempt* (one routed
    transfer + queue + execute on one host) is raced against a watchdog:
    an attempt still unfinished after ``timeout_s`` simulated seconds is
    cancelled (dequeued if still waiting; abandoned if mid-service) and
    the module re-routes, exactly like a device-loss retry.  ``max_retries``
    bounds the *total* retries a request may spend across all causes
    (timeouts and device failures share the budget); once exhausted the
    request terminates as **timed out** — a distinct terminal state in the
    widened conservation invariant
    ``completed + rejected + timed_out == arrivals``.  ``backoff_s`` sleeps
    ``backoff_s * 2^retries_so_far`` before each retry to avoid hammering a
    recovering pool.

    The default (no timeout, unlimited retries, no backoff) reproduces the
    pre-policy runtime bit-for-bit.
    """

    timeout_s: Optional[float] = None
    max_retries: Optional[int] = None
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.timeout_s is not None and (
            not math.isfinite(self.timeout_s) or self.timeout_s <= 0
        ):
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not math.isfinite(self.backoff_s) or self.backoff_s < 0:
            raise ValueError(f"backoff_s must be non-negative, got {self.backoff_s}")

    @property
    def enabled(self) -> bool:
        """Whether any timeout/budget machinery is active."""
        return self.timeout_s is not None or self.max_retries is not None

    def allows_retry(self, retries_so_far: int) -> bool:
        """Whether a request that has already retried ``retries_so_far``
        times may spend another retry."""
        return self.max_retries is None or retries_so_far < self.max_retries

    def backoff_delay(self, retries_so_far: int) -> float:
        """Seconds to sleep before the next retry (exponential, capped)."""
        if self.backoff_s == 0.0:
            return 0.0
        return self.backoff_s * (2.0 ** min(retries_so_far, 16))
