"""Service-level objectives and admission control for online serving.

Each admitted request carries an SLO — a completion deadline in **seconds**
measured from its arrival.  The policy derives the deadline from the
request's *isolated* analytic latency (Eq. 1-3 under the current placement,
no queueing): a request is "fast enough" when it finishes within
``latency_multiplier`` times what it would take on an idle cluster, with an
absolute floor so near-zero estimates don't create impossible deadlines.

Admission control compares the deadline against a *predicted* completion
time (isolated latency + live queue-pressure estimate from the queue-aware
router).  Requests predicted to miss are rejected at arrival — shedding load
early keeps the tail of the admitted stream bounded, which is what the
goodput metric rewards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SLOPolicy:
    """How deadlines are assigned and enforced.

    Attributes:
        latency_multiplier: Deadline = ``multiplier * isolated_estimate_s``
            (dimensionless; >= 1).
        floor_s: Minimum deadline in seconds (guards tiny estimates).
        absolute_s: If set, overrides the scaled deadline with a fixed
            per-request budget in seconds.
        admission: ``True`` rejects requests predicted to miss their SLO at
            arrival; ``False`` admits everything (pure FIFO overload).
    """

    latency_multiplier: float = 3.0
    floor_s: float = 1.0
    absolute_s: Optional[float] = None
    admission: bool = True

    def __post_init__(self) -> None:
        if self.latency_multiplier < 1.0:
            raise ValueError(
                f"latency_multiplier must be >= 1, got {self.latency_multiplier}"
            )
        if self.floor_s < 0:
            raise ValueError(f"floor_s must be non-negative, got {self.floor_s}")
        if self.absolute_s is not None and self.absolute_s <= 0:
            raise ValueError(f"absolute_s must be positive, got {self.absolute_s}")

    def slo_for(self, isolated_estimate_s: float) -> float:
        """The deadline (seconds from arrival) for a request whose isolated
        analytic latency is ``isolated_estimate_s``."""
        if self.absolute_s is not None:
            return self.absolute_s
        return max(self.floor_s, self.latency_multiplier * isolated_estimate_s)

    def admit(self, predicted_latency_s: float, slo_s: float) -> bool:
        """Whether to admit a request predicted to finish in ``predicted_latency_s``."""
        if not self.admission:
            return True
        return predicted_latency_s <= slo_s
