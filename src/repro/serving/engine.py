"""The flat (vectorized) serving engine: one event loop, no generator frames.

:class:`FlatServingEngine` replays an arrival trace through the exact same
serving semantics as the legacy process engine in
:mod:`repro.serving.runtime` — admission, streaming queue-aware routing,
micro-batching, churn re-placement, replica autoscaling, and the energy
ledger — but keeps all live-request state in preallocated numpy columns
(SLO/finish/retry/pending/assigned-host arrays indexed by arrival number)
and advances a single :class:`~repro.sim.flat.FlatEventLoop` of plain
``(time, seq, fn, args)`` continuations.  The legacy engine spends a Python
generator frame plus several Event objects per request per hop; here a hop
is one function call, which is what lets one run replay millions of
arrivals.

**Bit-identity contract.**  Same runtime config + same trace + same fault
schedule ⇒ a :class:`~repro.serving.report.ServingReport` identical to the
legacy engine's, record for record.  This holds because the flat engine is
an *event-order-faithful* translation, not a re-modeling:

- every continuation pushed here corresponds 1:1 (or as a contiguous
  fusion) to an event the legacy kernel would push at the same simulated
  time and in the same relative insertion order, so the ``(time, seq)``
  heap pops in the same order and every float is computed from identical
  operand state;
- process bootstraps are mirrored by *gate entries* pushed at setup in the
  same order legacy starts its processes, so same-time interleavings match
  even when an arrival coincides with a churn tick to the last ulp;
- the only skipped events are provable no-ops (process-completion events
  nothing waits on), and the only fusion is a batch's per-job completion
  broadcast — ``k`` contiguous pushes collapsed into one entry whose
  handler runs the ``k`` continuations inline in the same order.

Caches (service seconds, transfer seconds, batch services, isolated
estimates keyed by a placement/live-set generation counter) memoize pure
deterministic functions only, so they change *when* a float is computed,
never *which* float.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.requests import InferenceRequest, _request_counter
from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.core.placement.adaptive import AdaptivePlacementController
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.latency import RoutingDecision
from repro.profiles.energy import resolve_energy_profile
from repro.serving.churn import FAIL, RECOVER
from repro.serving.faults import LINK_DEGRADE, SLOW, SLOW_END, FaultEvent
from repro.serving.report import (
    BrownoutRecord,
    ChurnRecord,
    DeviceEnergy,
    EnergyReport,
    MigrationRecord,
    RequestRecord,
    ScalingRecord,
    ServingReport,
    build_report_arrays,
    merged_busy_seconds,
)
from repro.serving.workload import ArrivalTrace
from repro.sim.flat import FlatEventLoop
from repro.utils.errors import PlacementError


class _ModelInfo:
    """Per-deployed-model constants, resolved once per run.

    ``proto`` is a request with ``request_id=-1`` standing in for any
    request of this model in pure pricing calls (service seconds depend on
    the model, never the request identity); building it with an explicit id
    keeps the global request counter untouched.
    """

    __slots__ = (
        "index", "name", "spec", "proto", "encoders", "head",
        "module_names", "n_enc", "payloads", "out_bytes",
    )

    def __init__(self, index: int, name: str, spec, proto, encoders, head,
                 module_names, payloads, out_bytes) -> None:
        self.index = index
        self.name = name
        self.spec = spec
        self.proto = proto
        self.encoders = encoders
        self.head = head
        self.module_names = module_names
        self.n_enc = len(encoders)
        self.payloads = payloads
        self.out_bytes = out_bytes


#: Job layout: [is_head, arrival_index, encoder_path, est_service,
#: model_info_index, cancelled, notified, queue_key].  A plain list — a
#: million queued jobs stay cheap, and the three mutable tail slots mirror
#: the legacy ``_Job`` watchdog flags (``cancelled`` marks an attempt
#: abandoned by its retry watchdog; ``notified`` guards the one-shot
#: completion against double firing; ``key`` is the micro-batch queue the
#: job sits in once enqueued, None before).
_IS_HEAD, _IDX, _PATH, _EST, _MODEL, _CANCELLED, _NOTIFIED, _KEY = range(8)


class FlatServingEngine:
    """One serving run on the flat event loop; built fresh per ``run``."""

    #: Cache-coherence contract, machine-checked by lint rule R003: any
    #: method that mutates one of these routing-scored attributes must
    #: advance ``_state_version`` (directly or via ``_bump_generation``)
    #: on its fall-through path, or the pressure/isolated caches keyed on
    #: the counter would serve stale floats.  ``run`` is exempt: it builds
    #: the state wholesale before the event loop starts.
    _ROUTING_STATE = frozenset(
        {
            "_slot_used", "_slot_waiters", "_backlog", "_reserved",
            "_slow", "_live", "_placement",
        }
    )
    _ROUTING_STATE_SETUP = ("run",)

    def __init__(self, runtime) -> None:
        self.rt = runtime

    # ==================================================================
    # Run
    # ==================================================================
    def run(
        self,
        trace: ArrivalTrace,
        fault_events: Sequence[FaultEvent] = (),
    ) -> ServingReport:
        rt = self.rt
        self._loop = FlatEventLoop()
        self._cluster = build_testbed(rt.device_names, requester=rt.requester)
        self._engine = rt._deploy_engine(self._cluster, trace)
        self._placement: Placement = self._engine.placement
        self._latency_model = self._engine.latency_model()
        self._network = self._cluster.network
        self._devices = self._cluster.devices
        self._device_names: List[str] = list(self._cluster.device_names)
        self._dev_index = {name: i for i, name in enumerate(self._device_names)}
        self._requester = self._cluster.requester
        self._live: Set[str] = set(self._cluster.device_names)
        self._crashed: Set[str] = set()
        self._slow: Dict[str, float] = {name: 1.0 for name in self._device_names}
        self._retry = rt.retry
        self._module_specs = self._engine.module_specs
        self._sorted_modules = sorted(self._module_specs)

        # Mirrors of the legacy runtime's mutable serving state.
        self._slot_cap = {
            name: self._devices[name].slots.capacity for name in self._device_names
        }
        self._slot_used = {name: 0 for name in self._device_names}
        self._slot_waiters: Dict[str, deque] = {
            name: deque() for name in self._device_names
        }
        self._nic_busy = False          # the requester's capacity-1 uplink
        self._nic_waiters: deque = deque()
        # Pre-seeded with every device so the hot path can use plain
        # indexing instead of .get(name, 0.0).
        self._reserved: Dict[str, float] = {name: 0.0 for name in self._device_names}
        self._backlog: Dict[str, float] = {name: 0.0 for name in self._device_names}
        self._queues: Dict[Tuple[str, str], List[tuple]] = {}
        self._active_servers: Set[Tuple[str, str]] = set()
        self._fail_times: Dict[str, List[float]] = {}
        self._radio_joules: Dict[str, float] = {}
        self._busy_intervals: Dict[str, List[Tuple[float, float]]] = {}
        self._reconfig_waiters: List[Tuple[bool, int, int]] = []
        self._recent_requests: List[InferenceRequest] = []
        self._migrations: List[MigrationRecord] = []
        self._churn_log: List[ChurnRecord] = []
        self._scaling_log: List[ScalingRecord] = []
        self._pending_adds: Set[str] = set()
        self._brownout_level = 0
        self._brownout_shed: frozenset = frozenset()
        self._brownout_log: List[BrownoutRecord] = []
        self._controller = AdaptivePlacementController(
            self._network, expected_requests=rt.adapt_expected_requests
        )
        self._problem_cache: Dict[Tuple[str, ...], PlacementProblem] = {}

        # Pure-function caches; the generation counter invalidates the
        # placement/live-set-dependent isolated estimates.
        self._generation = 0
        self._infos: List[_ModelInfo] = []
        self._info_by_name: Dict[str, _ModelInfo] = {}
        self._svc_cache: Dict[Tuple[int, str, str], float] = {}
        self._batch_cache: Dict[Tuple[str, str, int, int], float] = {}
        self._scale_cache: Dict[Tuple[int, str], float] = {}
        self._transfer_cache: Dict[Tuple[str, str, int], float] = {}
        self._isolated_cache: Dict[int, Tuple[int, Optional[float]]] = {}
        # Invalidated wholesale by _bump_generation (placement/live changes).
        self._route_cache: Dict[Tuple[int, str], List[Tuple[float, str]]] = {}
        # Queue-pressure memo: info.index -> (state_version, pressure).
        # _state_version advances at every routing-state mutation (slots,
        # waiters, backlog, reserved, generation), so a hit means the exact
        # same floats would be recomputed.  At heavy overload, runs of
        # consecutive rejected arrivals leave the state untouched and this
        # turns the per-arrival pressure scan into a dict probe.
        self._state_version = 0
        self._pressure_cache: Dict[int, Tuple[int, float]] = {}
        # slo_for is pure in its argument (frozen policy), and the reject
        # reason is a pure format of (predicted, slo) — both memoized
        # because overloaded runs recompute them with identical inputs for
        # long runs of consecutive rejected arrivals.
        self._slo_cache: Dict[float, float] = {}
        self._reject_reason_cache: Dict[Tuple[float, float], str] = {}
        self._energy_profiles = {
            name: resolve_energy_profile(name) for name in self._device_names
        }
        self._track_energy = rt.track_energy

        # The request-state columns: one row per arrival.
        n = len(trace.arrivals)
        self._arrival_models = [a.model_name for a in trace.arrivals]
        self._arrival_times = np.array(
            [a.time for a in trace.arrivals], dtype=np.float64
        )
        max_enc = max(
            (len(self._engine.resolve_model(name).encoders) for name in rt.models),
            default=0,
        )
        self._req_ids = np.full(n, -1, dtype=np.int64)
        self._slo = np.zeros(n, dtype=np.float64)
        self._finish = np.full(n, np.nan, dtype=np.float64)
        self._retries = np.zeros(n, dtype=np.int32)
        self._admitted = np.zeros(n, dtype=bool)
        self._pending = np.zeros(n, dtype=np.int32)
        self._info_of = np.zeros(n, dtype=np.int32)
        self._enc_hosts = np.full((n, max(1, max_enc)), -1, dtype=np.int16)
        self._enc_tried = np.zeros((n, max(1, max_enc)), dtype=bool)
        self._head_tried = np.zeros(n, dtype=bool)
        self._timed_out = np.zeros(n, dtype=bool)
        self._rejected: List[Optional[str]] = [None] * n
        self._unresolved = n
        if rt.brownout is not None:
            self._brownout_rank = self._brownout_ranking()

        # Entry order mirrors the legacy process bootstraps — arrivals in
        # trace order, then the fault walker, then the brownout tick, then
        # the autoscale tick — so same-time continuations keep the legacy
        # counter interleaving to the last ulp.  Arrivals are scheduled
        # directly at their times (insertion order alone fixes the relative
        # sequence; the t=0 trampoline pop the legacy engine pays per
        # request is skipped).  The fault stream arrives pre-sorted from
        # compile_faults, exactly as the legacy engine receives it.
        loop = self._loop
        push_at = loop.push_at
        on_arrival = self._on_arrival
        for idx, t in enumerate(self._arrival_times.tolist()):
            push_at(t, on_arrival, idx)
        if fault_events:
            self._fault_events = list(fault_events)
            loop.push(0.0, self._fault_advance, 0)
        if rt.brownout is not None and trace.arrivals:
            loop.push(0.0, self._brownout_gate)
        if rt.autoscale and trace.arrivals:
            loop.push(0.0, self._autoscale_gate)

        loop.run(max_events=rt.max_events)
        return self._build_report(trace)

    # ==================================================================
    # Arrival, admission
    # ==================================================================
    def _info_for(self, model_name: str) -> _ModelInfo:
        info = self._info_by_name.get(model_name)
        if info is None:
            spec = self._engine.resolve_model(model_name)
            proto = InferenceRequest(
                model=spec, source=self._requester, arrival_time=0.0, request_id=-1
            )
            encoders = tuple(spec.encoders)
            payloads = []
            out_bytes = []
            for encoder_name in encoders:
                module = self._latency_model.module(encoder_name)
                payloads.append(spec.payload_bytes(module.modality or "image"))
                out_bytes.append(module.output_bytes)
            info = _ModelInfo(
                index=len(self._infos), name=model_name, spec=spec, proto=proto,
                encoders=encoders, head=spec.head,
                module_names=tuple(spec.module_names),
                payloads=tuple(payloads), out_bytes=tuple(out_bytes),
            )
            self._infos.append(info)
            self._info_by_name[model_name] = info
        return info

    def _on_arrival(self, idx: int) -> None:
        rt = self.rt
        model_name = self._arrival_models[idx]
        info = self._info_for(model_name)
        # Mirrors engine.request(): the id is drawn from the same global
        # counter at the same point, but the (frozen, slow-to-construct)
        # request object itself is only materialized for admitted requests,
        # which are the only ones the controller's recents window sees.
        request_id = next(_request_counter)
        self._req_ids[idx] = request_id
        self._info_of[idx] = info.index

        isolated = self._isolated(info)
        if isolated is None:
            # Mid-migration window: some module has no live host right now.
            self._slo[idx] = rt.slo.slo_for(0.0)
            if rt.slo.admission:
                self._reject(idx, "no live host for a required module")
                return
            if model_name in self._brownout_shed:
                self._reject(
                    idx,
                    f"brownout level {self._brownout_level}: shedding {model_name}",
                )
                return
        else:
            slo_s = self._slo_cache.get(isolated)
            if slo_s is None:
                slo_s = rt.slo.slo_for(isolated)
                self._slo_cache[isolated] = slo_s
            self._slo[idx] = slo_s
            if model_name in self._brownout_shed:
                self._reject(
                    idx,
                    f"brownout level {self._brownout_level}: shedding {model_name}",
                )
                return
            predicted = isolated + self._queue_pressure(info)
            if not rt.slo.admit(predicted, slo_s):
                reason = self._reject_reason_cache.get((predicted, slo_s))
                if reason is None:
                    reason = f"predicted {predicted:.2f}s exceeds SLO {slo_s:.2f}s"
                    self._reject_reason_cache[(predicted, slo_s)] = reason
                self._reject(idx, reason)
                return
        self._admitted[idx] = True
        self._remember(
            InferenceRequest(
                model=info.spec, source=self._requester,
                arrival_time=self._loop.now, request_id=request_id,
            )
        )

        self._pending[idx] = info.n_enc
        if info.n_enc:
            for path in range(info.n_enc):
                self._loop.push(0.0, self._enc_route, idx, path)
        else:
            self._head_route(idx)

    def _reject(self, idx: int, reason: str) -> None:
        self._rejected[idx] = reason
        self._unresolved -= 1

    def _remember(self, request: InferenceRequest) -> None:
        self._recent_requests.append(request)
        if len(self._recent_requests) > 4 * self.rt.recent_window:
            del self._recent_requests[: -self.rt.recent_window]

    # ==================================================================
    # Encoder paths
    # ==================================================================
    def _enc_route(self, idx: int, path: int) -> None:
        if self._timed_out[idx]:
            # A sibling path exhausted the shared retry budget; mirror the
            # legacy generator's loop-top return (one completion event).
            self._loop.push(0.0, self._enc_path_ended, idx)
            return
        info = self._infos[self._info_of[idx]]
        host = self._route_module(info, info.encoders[path], reserve=True)
        if host is None:
            self._reconfig_waiters.append((False, idx, path))
            return
        if self._enc_tried[idx, path]:
            self._retries[idx] += 1
        else:
            self._enc_tried[idx, path] = True
        # The job is created at routing time so the retry watchdog covers
        # the transfer leg too, and its estimated service is priced at the
        # same instant the router reserved it (straggler-safe ledger).
        est = self._svc(info, info.encoders[path], host) * self._slow[host]
        job = [False, idx, path, est, info.index, False, False, None]
        if self._retry.timeout_s is not None:
            self._loop.push(self._retry.timeout_s, self._watch_fire, job)
        if self._nic_busy:
            self._nic_waiters.append((job, host))
        else:
            self._nic_busy = True
            self._loop.push(0.0, self._enc_send, job, host)

    def _enc_send(self, job: list, host: str) -> None:
        if job[_CANCELLED] or not self._network.has_path(self._requester, host):
            # Timed out while waiting for the uplink, or a partition keeps
            # the payload from landing: hold the nic for zero seconds.
            self._enc_after_send(job, host, False)
            return
        info = self._infos[job[_MODEL]]
        seconds = self._transfer_seconds(self._requester, host, info.payloads[job[_PATH]])
        if seconds > 0:
            self._loop.push(seconds, self._enc_after_send, job, host, True)
        else:
            self._enc_after_send(job, host, True)

    def _enc_after_send(self, job: list, host: str, sent: bool = True) -> None:
        if self._nic_waiters:
            wjob, whost = self._nic_waiters.popleft()
            self._loop.push(0.0, self._enc_send, wjob, whost)
        else:
            self._nic_busy = False
        info = self._infos[job[_MODEL]]
        path = job[_PATH]
        if sent:
            self._charge_radio(self._requester, host, info.payloads[path])
        if job[_CANCELLED] or not sent:
            # Undo the routing reservation and retry, like a device loss.
            self._release(host, job[_EST])
            self._enc_failed(job)
            return
        self._enqueue(info.encoders[path], host, job)

    def _enc_failed(self, job: list) -> None:
        """One encoder attempt failed (flush, stale batch, timeout, or an
        undeliverable transfer): spend a retry or end the request."""
        idx = job[_IDX]
        if not self._retry.allows_retry(int(self._retries[idx])):
            self._timed_out[idx] = True
            self._loop.push(0.0, self._enc_path_ended, idx)
            return
        delay = self._retry.backoff_delay(int(self._retries[idx]))
        if delay > 0:
            self._loop.push(delay, self._enc_route, idx, job[_PATH])
            return
        self._enc_route(idx, job[_PATH])

    def _enc_path_done(self, idx: int, path: int, host: str) -> None:
        self._enc_hosts[idx, path] = self._dev_index[host]
        self._pending[idx] -= 1
        if self._pending[idx] == 0:
            self._loop.push(0.0, self._encs_joined, idx)

    def _enc_path_ended(self, idx: int) -> None:
        """An encoder path terminated without a host (retry budget spent)."""
        self._pending[idx] -= 1
        if self._pending[idx] == 0:
            self._loop.push(0.0, self._encs_joined, idx)

    def _encs_joined(self, idx: int) -> None:
        if self._timed_out[idx]:
            # Terminal: the legacy request process unwinds here.
            self._unresolved -= 1
            return
        self._head_route(idx)

    # ==================================================================
    # Head path
    # ==================================================================
    def _head_route(self, idx: int) -> None:
        if self._timed_out[idx]:
            # Terminal: mirror the legacy _head_op loop-top return (the
            # request process unwinds without a finish time).
            self._unresolved -= 1
            return
        info = self._infos[self._info_of[idx]]
        host = self._route_module(info, info.head, reserve=True)
        if host is None:
            self._reconfig_waiters.append((True, idx, 0))
            return
        if self._head_tried[idx]:
            self._retries[idx] += 1
        else:
            self._head_tried[idx] = True
        est = self._svc(info, info.head, host) * self._slow[host]
        job = [True, idx, 0, est, info.index, False, False, None]
        if self._retry.timeout_s is not None:
            self._loop.push(self._retry.timeout_s, self._watch_fire, job)
        self._head_transfers(job, host, 0)

    def _head_transfers(self, job: list, host: str, start_path: int) -> None:
        """Ship cached embeddings to the head's host, one hop at a time.

        Sequential like the legacy loop: a hop with positive transfer time
        suspends here and resumes at ``start_path + 1`` when it lands.  A
        watchdog cancellation or a partition between an encoder's host and
        the head abandons the attempt (reservation released, retry spent).
        """
        info = self._infos[job[_MODEL]]
        idx = job[_IDX]
        names = self._device_names
        path = start_path
        while path < info.n_enc:
            enc_host = names[self._enc_hosts[idx, path]]
            if job[_CANCELLED] or not self._network.has_path(enc_host, host):
                self._release(host, job[_EST])
                self._head_failed(job, stranded=not job[_CANCELLED])
                return
            seconds = self._transfer_seconds(enc_host, host, info.out_bytes[path])
            if seconds > 0:
                self._loop.push(seconds, self._head_transfer_done, job, host, path)
                return
            self._charge_radio(enc_host, host, info.out_bytes[path])
            path += 1
        if job[_CANCELLED]:
            self._release(host, job[_EST])
            self._head_failed(job)
            return
        self._enqueue(info.head, host, job)

    def _head_transfer_done(self, job: list, host: str, path: int) -> None:
        info = self._infos[job[_MODEL]]
        enc_host = self._device_names[self._enc_hosts[job[_IDX], path]]
        self._charge_radio(enc_host, host, info.out_bytes[path])
        self._head_transfers(job, host, path + 1)

    def _head_failed(self, job: list, stranded: bool = False) -> None:
        """One head attempt failed: spend a retry or end the request.

        ``stranded`` marks a partition failure (a cached embedding can't
        reach the head's host): every re-route at this instant would fail
        the same reachability check, so the retry parks on the
        reconfiguration signal instead of spinning — a cut link is always
        restored eventually (the fault-plan validator rejects permanent
        cuts), and every reachability change broadcasts the signal.
        """
        idx = job[_IDX]
        if not self._retry.allows_retry(int(self._retries[idx])):
            self._timed_out[idx] = True
            self._unresolved -= 1
            return
        delay = self._retry.backoff_delay(int(self._retries[idx]))
        if stranded:
            if delay > 0:
                self._loop.push(delay, self._head_stranded, idx)
            else:
                self._head_stranded(idx)
            return
        if delay > 0:
            self._loop.push(delay, self._head_route, idx)
            return
        self._head_route(idx)

    def _head_stranded(self, idx: int) -> None:
        self._reconfig_waiters.append((True, idx, 0))

    # ==================================================================
    # Micro-batch servers
    # ==================================================================
    def _enqueue(self, module_name: str, host: str, job: list) -> None:
        key = (module_name, host)
        job[_KEY] = key
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = []
        queue.append(job)
        self._release(host, job[_EST])
        self._backlog[host] = self._backlog[host] + job[_EST]
        self._state_version += 1
        if key not in self._active_servers:
            self._active_servers.add(key)
            self._loop.push(0.0, self._server_drain, module_name, host)

    def _server_drain(self, module_name: str, host: str) -> None:
        """The legacy server loop, flattened; returning means "suspended"."""
        rt = self.rt
        key = (module_name, host)
        queue = self._queues[key]
        while queue:
            if host not in self._live:
                self._flush_queue(key)
                break
            if rt.batch_window_s > 0 and len(queue) < rt.max_batch_size:
                self._loop.push(rt.batch_window_s, self._server_window, module_name, host)
                return
            if self._server_chunk(module_name, host):
                continue
            return
        self._active_servers.discard(key)

    def _server_window(self, module_name: str, host: str) -> None:
        key = (module_name, host)
        if host not in self._live:
            self._flush_queue(key)
            self._active_servers.discard(key)
            return
        if not self._queues[key]:
            # A failure flushed the queue during the window and the device
            # already recovered; nothing left to run.
            self._active_servers.discard(key)
            return
        if self._server_chunk(module_name, host):
            self._server_drain(module_name, host)

    def _server_chunk(self, module_name: str, host: str) -> bool:
        """Extract and submit one micro-batch.

        True means "loop again now" (the chunk re-routes because a
        migration moved the module); False means the server is suspended
        until the batch's slot grant / service completes.
        """
        rt = self.rt
        queue = self._queues[(module_name, host)]
        chunk = queue[: rt.max_batch_size]
        del queue[: rt.max_batch_size]
        for job in chunk:
            self._drop_backlog(host, job)
        if not self._devices[host].hosts(module_name):
            self._notify_chunk(host, chunk, False)
            return True
        best = chunk[0]
        best_scale = self._scale_for(best[_MODEL], module_name)
        for job in chunk[1:]:
            scale = self._scale_for(job[_MODEL], module_name)
            if scale > best_scale:
                best, best_scale = job, scale
        service = self._slow[host] * self._batch_service(
            module_name, host, best[_MODEL], len(chunk)
        )
        submitted = self._loop.now
        if self._slot_used[host] < self._slot_cap[host]:
            self._slot_used[host] += 1
            self._loop.push(
                0.0, self._server_granted, module_name, host, chunk, service, submitted
            )
        else:
            self._slot_waiters[host].append(
                (module_name, host, chunk, service, submitted)
            )
        self._state_version += 1
        return False

    def _server_granted(
        self, module_name: str, host: str, chunk: list, service: float, submitted: float
    ) -> None:
        self._loop.push(
            service, self._server_done, module_name, host, chunk, submitted, self._loop.now
        )

    def _server_done(
        self, module_name: str, host: str, chunk: list, submitted: float, start: float
    ) -> None:
        waiters = self._slot_waiters[host]
        if waiters:
            self._loop.push(0.0, self._server_granted, *waiters.popleft())
        else:
            self._slot_used[host] -= 1
        self._state_version += 1
        if self._track_energy:
            self._busy_intervals.setdefault(host, []).append((start, self._loop.now))
        lost = host not in self._live or any(
            submitted <= t <= self._loop.now for t in self._fail_times.get(host, ())
        )
        self._notify_chunk(host, chunk, not lost)
        self._server_drain(module_name, host)

    def _notify_chunk(self, host: str, chunk: list, ok: bool) -> None:
        """Schedule the per-job completion broadcast for a chunk.

        Jobs already resumed by their retry watchdog are skipped; the rest
        are marked ``notified`` *now* — mirroring the legacy engine, where
        the one-shot done events fire synchronously here — so a watchdog
        popping before the broadcast entry sees them as settled.
        """
        jobs = [job for job in chunk if not job[_NOTIFIED]]
        if not jobs:
            return
        for job in jobs:
            job[_NOTIFIED] = True
        self._loop.push(0.0, self._chunk_done, host, jobs, ok)

    def _chunk_done(self, host: str, chunk: list, ok: bool) -> None:
        """The fused per-job completion broadcast (one entry per batch)."""
        for job in chunk:
            self._job_done(job, host, ok)

    def _job_done(self, job: list, host: str, ok: bool) -> None:
        idx = job[_IDX]
        if job[_IS_HEAD]:
            if ok:
                self._finish[idx] = self._loop.now
                self._unresolved -= 1
            else:
                self._head_failed(job)
        else:
            if ok:
                self._loop.push(0.0, self._enc_path_done, idx, job[_PATH], host)
            else:
                self._enc_failed(job)

    def _drop_backlog(self, host: str, job: list) -> None:
        self._backlog[host] = max(0.0, self._backlog[host] - job[_EST])
        self._state_version += 1

    def _flush_queue(self, key: Tuple[str, str]) -> None:
        """Fail every queued (unstarted) job so it re-routes elsewhere."""
        queue = self._queues.get(key)
        if not queue:
            return
        jobs, queue[:] = list(queue), []
        for job in jobs:
            self._drop_backlog(key[1], job)
        self._notify_chunk(key[1], jobs, False)

    # ==================================================================
    # Retry watchdogs (RetryPolicy timeouts)
    # ==================================================================
    def _watch_fire(self, job: list) -> None:
        """The attempt's deadline passed: cancel it wherever it is.

        Still queued — dequeue it and fail the job now.  Mid-service — the
        batch keeps the device busy, but the owner is resumed immediately
        and the stale result is dropped at chunk completion (``notified``).
        Mid-transfer (not yet enqueued) — only mark ``cancelled``; the
        owner checks the flag at its next checkpoint.
        """
        if job[_NOTIFIED] or job[_CANCELLED]:
            return
        job[_CANCELLED] = True
        if job[_KEY] is None:
            return
        queue = self._queues.get(job[_KEY])
        if queue is not None:
            for pos, queued in enumerate(queue):
                if queued is job:
                    del queue[pos]
                    self._drop_backlog(job[_KEY][1], job)
                    break
        job[_NOTIFIED] = True
        self._loop.push(0.0, self._timeout_resume, job)

    def _timeout_resume(self, job: list) -> None:
        """The owner's resume after a watchdog fired (done event mirror)."""
        if job[_IS_HEAD]:
            self._head_failed(job)
        else:
            self._enc_failed(job)

    # ==================================================================
    # Streaming queue-aware routing (exact router-math mirror)
    # ==================================================================
    def _live_pairs(self, info: _ModelInfo, module_name: str) -> List[Tuple[float, str]]:
        """(service_seconds, device) for the module's live hosts, in
        placement order.  Pure given (placement, live-set); cached per
        generation so routing scans skip the placement lookup and the
        service-cache probes."""
        key = (info.index, module_name)
        pairs = self._route_cache.get(key)
        if pairs is None:
            pairs = [
                (self._svc(info, module_name, device_name), device_name)
                for device_name in self._placement.hosts(module_name)
                if device_name in self._live
            ]
            self._route_cache[key] = pairs
        return pairs

    def _route_scored(
        self, info: _ModelInfo, module_name: str
    ) -> Optional[Tuple[str, float, float]]:
        """First-min scan of (service + wait, name); returns
        (host, service, wait) or None when no live host exists.  The wait
        arithmetic keeps the streaming router's exact float op order."""
        pairs = self._live_pairs(info, module_name)
        if not pairs:
            return None
        slot_used = self._slot_used
        slot_waiters = self._slot_waiters
        slot_cap = self._slot_cap
        backlog = self._backlog
        reserved = self._reserved
        slow = self._slow
        best_total = best_name = best_service = best_wait = None
        for service, device_name in pairs:
            # The cached pairs are nominal; straggler factors are applied
            # here so routing prices the degraded speed (legacy router op
            # order: compute_seconds, then `service * slow`).
            service = service * slow[device_name]
            capacity = slot_cap[device_name]
            outstanding = slot_used[device_name] + len(slot_waiters[device_name])
            wait = (
                outstanding / capacity * service
                + backlog[device_name] / capacity
                + reserved[device_name] / capacity
            )
            total = service + wait
            if (
                best_name is None
                or total < best_total
                or (total == best_total and device_name < best_name)
            ):
                best_total, best_name = total, device_name
                best_service, best_wait = service, wait
        return best_name, best_service, best_wait

    def _route_module(self, info: _ModelInfo, module_name: str, reserve: bool) -> Optional[str]:
        scored = self._route_scored(info, module_name)
        if scored is None:
            return None
        host, service, _wait = scored
        if reserve:
            self._reserved[host] = self._reserved[host] + service
            self._state_version += 1
        return host

    def _estimated_wait(self, device_name: str, service_seconds: float) -> float:
        capacity = self._slot_cap[device_name]
        outstanding = self._slot_used[device_name] + len(self._slot_waiters[device_name])
        live_wait = outstanding / capacity * service_seconds
        backlog = self._backlog[device_name] / capacity
        reserved = self._reserved[device_name] / capacity
        return live_wait + backlog + reserved

    def _reserve(self, device_name: str, service_seconds: float) -> None:
        self._reserved[device_name] = (
            self._reserved[device_name] + service_seconds
        )
        self._state_version += 1

    def _release(self, device_name: str, service_seconds: float) -> None:
        # Sub-nanosecond residues snap to 0.0 exactly like the streaming
        # router's release (scale-down eligibility compares against zero).
        outstanding = self._reserved[device_name] - service_seconds
        if outstanding < 1e-9:
            outstanding = 0.0
        self._reserved[device_name] = outstanding
        self._state_version += 1

    def _queue_pressure(self, info: _ModelInfo) -> float:
        cached = self._pressure_cache.get(info.index)
        if cached is not None and cached[0] == self._state_version:
            return cached[1]
        # Routing mutates nothing here (reserve=False in the legacy path),
        # so the per-module waits captured during the scan equal the waits
        # the legacy code recomputes after choosing all hosts.
        waits: Dict[str, float] = {}
        pressure = float("inf")
        for module_name in info.module_names:
            scored = self._route_scored(info, module_name)
            if scored is None:
                break
            waits[module_name] = scored[2]
        else:
            encoder_wait = 0.0
            for encoder_name in info.encoders:
                wait = waits[encoder_name]
                if wait > encoder_wait:
                    encoder_wait = wait
            pressure = encoder_wait + waits[info.head]
        self._pressure_cache[info.index] = (self._state_version, pressure)
        return pressure

    def _isolated(self, info: _ModelInfo) -> Optional[float]:
        cached = self._isolated_cache.get(info.index)
        if cached is not None and cached[0] == self._generation:
            return cached[1]
        hosts: Dict[str, str] = {}
        value: Optional[float] = None
        routable = True
        for module_name in info.module_names:
            pairs = self._live_pairs(info, module_name)
            if not pairs:
                routable = False
                break
            hosts[module_name] = min(pairs)[1]
        if routable:
            decision = RoutingDecision(request=info.proto, hosts=hosts)
            value = self._latency_model.breakdown(
                info.proto, self._placement, routing=decision
            ).total
        self._isolated_cache[info.index] = (self._generation, value)
        return value

    def _bump_generation(self) -> None:
        self._generation += 1
        self._route_cache.clear()
        self._state_version += 1

    # ------------------------------------------------------------------
    # Pure pricing caches
    # ------------------------------------------------------------------
    def _svc(self, info: _ModelInfo, module_name: str, host: str) -> float:
        key = (info.index, module_name, host)
        value = self._svc_cache.get(key)
        if value is None:
            value = self._latency_model.compute_seconds(info.proto, module_name, host)
            self._svc_cache[key] = value
        return value

    def _batch_service(self, module_name: str, host: str, model_i: int, batch: int) -> float:
        key = (module_name, host, model_i, batch)
        value = self._batch_cache.get(key)
        if value is None:
            device = self._devices[host]
            value = device.compute_model.seconds(
                self._module_specs[module_name],
                device.profile,
                model=self._infos[model_i].spec,
                batch_size=batch,
            )
            self._batch_cache[key] = value
        return value

    def _scale_for(self, model_i: int, module_name: str) -> float:
        key = (model_i, module_name)
        value = self._scale_cache.get(key)
        if value is None:
            value = self._infos[model_i].spec.scale_for(module_name)
            self._scale_cache[key] = value
        return value

    def _transfer_seconds(self, src: str, dst: str, payload_bytes: int) -> float:
        if self._network.has_jitter:
            return self._network.transfer_seconds(src, dst, payload_bytes)
        key = (src, dst, payload_bytes)
        value = self._transfer_cache.get(key)
        if value is None:
            value = self._network.transfer_seconds(src, dst, payload_bytes)
            self._transfer_cache[key] = value
        return value

    # ==================================================================
    # Fault injection and adaptive re-placement
    # ==================================================================
    def _fault_advance(self, i: int) -> None:
        events = self._fault_events
        loop = self._loop
        while i < len(events):
            event = events[i]
            if event.time > loop.now:
                loop.push(event.time - loop.now, self._fault_advance, i)
                return
            applied, detail, reconfigure = self._apply_fault(event)
            self._churn_log.append(
                ChurnRecord(loop.now, event.label, event.kind, applied, detail)
            )
            if reconfigure:
                decision = self._replace_decision()
                if (
                    decision is not None
                    and decision.migrate
                    and decision.new_placement is not None
                ):
                    if decision.switching_cost_seconds > 0:
                        loop.push(
                            decision.switching_cost_seconds,
                            self._fault_migrated, decision, loop.now, i,
                        )
                        return
                    self._install(decision.new_placement)
                    self._migrations.append(
                        MigrationRecord(
                            loop.now, decision.reason, decision.switching_cost_seconds
                        )
                    )
                self._signal_reconfigured()
            i += 1

    def _fault_migrated(self, decision, decided_at: float, i: int) -> None:
        self._install(decision.new_placement)
        # Stamped with the decision time so the log attributes the
        # migration to the fault event that triggered it.
        self._migrations.append(
            MigrationRecord(decided_at, decision.reason, decision.switching_cost_seconds)
        )
        self._signal_reconfigured()
        self._fault_advance(i + 1)

    def _apply_fault(self, event: FaultEvent) -> Tuple[bool, str, bool]:
        """Apply one fault; returns ``(applied, detail, reconfigure)``.

        The exact mirror of the legacy runtime's ``_apply_fault``, plus the
        flat engine's cache invalidations: straggler factors bump the
        routing-state version (scores change), link faults clear the
        transfer-price cache (bandwidths changed).
        """
        if event.kind == FAIL:
            applied, detail = self._apply_failure(event.device)
            if applied and event.region:
                detail = f"region {event.region}"
            return applied, detail, applied
        if event.kind == RECOVER:
            applied, detail = self._apply_recovery(event.device)
            if applied and event.region:
                detail = f"region {event.region}"
            return applied, detail, applied
        if event.kind == SLOW:
            self._slow[event.device] = event.factor
            self._state_version += 1
            return True, f"x{event.factor:g}", False
        if event.kind == SLOW_END:
            self._slow[event.device] = 1.0
            self._state_version += 1
            return True, "", False
        # Link faults: reprice through the network, then re-derive which
        # devices the requester can still reach.
        a, b = event.link  # type: ignore[misc]
        if event.kind == LINK_DEGRADE:
            self._network.degrade_link(a, b, event.factor)
            detail = "cut" if event.factor == 0.0 else f"bandwidth x{event.factor:g}"
        else:
            self._network.restore_link(a, b)
            detail = ""
        self._transfer_cache.clear()
        # Isolated estimates price transfer legs at current bandwidths
        # (the legacy engine recomputes them per arrival), so a repriced
        # link invalidates them even when the placement generation and
        # reachability are unchanged.
        self._isolated_cache.clear()
        changed, change_detail = self._refresh_reachability()
        if change_detail:
            detail = f"{detail}; {change_detail}" if detail else change_detail
        return True, detail, changed

    def _replace_decision(self):
        problem_now = self._live_problem()
        requests = self._recent_requests[-self.rt.recent_window:]
        if not requests:
            requests = [self._engine.request(name) for name in self.rt.models]
        try:
            return self._controller.evaluate(problem_now, self._placement, requests)
        except PlacementError:
            # Pre-checked via _feasible; a failure here means the pool
            # changed under us — keep serving on the old placement.
            return None

    def _apply_failure(self, device_name: str) -> Tuple[bool, str]:
        if device_name == self.rt.requester:
            return False, "requester never fails"
        if device_name in self._crashed:
            return False, "already failed"
        remaining = [
            n for n in self._device_names if n in self._live and n != device_name
        ]
        if not self._feasible(remaining):
            return False, "placement infeasible without it"
        self._crashed.add(device_name)
        if device_name in self._live:
            self._lose_device(device_name)
        return True, ""

    def _apply_recovery(self, device_name: str) -> Tuple[bool, str]:
        if device_name not in self._crashed:
            if device_name not in self._devices:
                return False, "unknown device"
            if device_name in self._live:
                return False, "already live"
            return False, "partitioned, not failed"
        self._crashed.discard(device_name)
        if not self._requester_reaches(device_name):
            # Back up, but marooned behind a cut link: it rejoins the live
            # pool when the partition heals (reachability refresh).
            return True, "recovered but still partitioned"
        self._live.add(device_name)
        self._bump_generation()
        return True, ""

    def _lose_device(self, device_name: str) -> None:
        """Remove a device from the live pool: flush its queues and stamp
        the loss so in-flight batches detect it at completion."""
        self._live.discard(device_name)
        self._bump_generation()
        self._fail_times.setdefault(device_name, []).append(self._loop.now)
        for key in list(self._queues):
            if key[1] == device_name:
                self._flush_queue(key)

    def _requester_reaches(self, device_name: str) -> bool:
        if device_name == self._requester:
            return True
        return device_name in self._network.reachable_from(self._requester)

    def _refresh_reachability(self) -> Tuple[bool, str]:
        """Reconcile the live pool with requester-side reachability after a
        link change.  Partitioned devices leave exactly like failures
        (queues flushed, in-flight work lost); devices that are alive and
        newly reachable rejoin.  Returns whether the pool changed, plus a
        log detail."""
        reachable = self._network.reachable_from(self._requester)
        lost = [
            n for n in self._device_names
            if n in self._live and n != self._requester and n not in reachable
        ]
        gained = [
            n for n in self._device_names
            if n not in self._live and n not in self._crashed and n in reachable
        ]
        for name in lost:
            self._lose_device(name)
        for name in gained:
            self._live.add(name)
        if gained:
            self._bump_generation()
        parts = []
        if lost:
            parts.append("partitioned: " + ", ".join(lost))
        if gained:
            parts.append("rejoined: " + ", ".join(gained))
        return bool(lost or gained), "; ".join(parts)

    def _install(self, placement: Placement) -> None:
        """Materialize ``placement`` on the live devices (unload then load)."""
        assignment = placement.as_dict()
        for name in self._device_names:
            if name not in self._live:
                continue  # failed devices keep their weights for a comeback
            device = self._devices[name]
            keep = {m for m, hosts in assignment.items() if name in hosts}
            for loaded_name in list(device.loaded):
                if loaded_name not in keep:
                    device.unload(loaded_name)
            for module_name in sorted(keep):
                if not device.hosts(module_name):
                    device.load(self._module_specs[module_name])
        self._placement = placement
        self._bump_generation()

    def _problem_for(self, device_names: Sequence[str]) -> PlacementProblem:
        key = tuple(device_names)
        problem = self._problem_cache.get(key)
        if problem is None:
            problem = PlacementProblem(
                modules=self._engine.problem.modules,
                devices=tuple(self._devices[name].profile for name in device_names),
                models=self._engine.problem.models,
            )
            self._problem_cache[key] = problem
        return problem

    def _live_problem(self) -> PlacementProblem:
        return self._problem_for([n for n in self._device_names if n in self._live])

    def _feasible(self, live_names: Sequence[str]) -> bool:
        if not live_names:
            return False
        try:
            greedy_placement(self._problem_for(live_names))
        except PlacementError:
            return False
        return True

    def _signal_reconfigured(self) -> None:
        waiters, self._reconfig_waiters = self._reconfig_waiters, []
        self._loop.push(0.0, self._reconfig_broadcast, waiters)

    def _reconfig_broadcast(self, waiters: List[Tuple[bool, int, int]]) -> None:
        for is_head, idx, path in waiters:
            if is_head:
                self._head_route(idx)
            else:
                self._enc_route(idx, path)

    # ==================================================================
    # Brownout controller (graceful load shedding)
    # ==================================================================
    def _brownout_ranking(self) -> List[str]:
        """Model classes ordered by SLO slack, smallest first (the exact
        mirror of the legacy ranking: same prototypes, same floats)."""
        slacks = []
        for spec in self._engine.problem.models:
            info = self._info_for(spec.name)
            isolated = self._isolated(info)
            iso = isolated if isolated is not None else 0.0
            slacks.append((self.rt.slo.slo_for(iso) - iso, spec.name))
        slacks.sort()
        return [name for _, name in slacks]

    def _brownout_pressure(self) -> float:
        """Cluster backlog pressure: queued-but-unstarted service-seconds
        per live compute slot (inf while no device is live)."""
        queued = 0.0
        capacity = 0
        for name in self._device_names:
            if name not in self._live:
                continue
            queued += self._backlog[name]
            capacity += self._slot_cap[name]
        return queued / capacity if capacity else float("inf")

    def _brownout_assess(self, now: float) -> None:
        """One hysteresis step: raise the shed level above the high-water
        pressure, lower it at or below the low-water mark, and always keep
        at least one model class admitted."""
        policy = self.rt.brownout
        pressure = self._brownout_pressure()
        level = self._brownout_level
        if pressure > policy.high_backlog_s:
            level += 1
        elif pressure <= policy.low_backlog_s:
            level -= 1
        cap = len(self._brownout_rank) - 1
        if policy.max_level is not None:
            cap = min(cap, policy.max_level)
        level = max(0, min(level, cap))
        if level != self._brownout_level:
            self._brownout_level = level
            shed = tuple(self._brownout_rank[:level])
            self._brownout_shed = frozenset(shed)
            self._brownout_log.append(BrownoutRecord(now, level, pressure, shed))

    def _brownout_gate(self) -> None:
        if self._unresolved > 0:
            self._loop.push(self.rt.brownout.interval_s, self._brownout_tick)

    def _brownout_tick(self) -> None:
        if self._unresolved <= 0:
            return
        self._brownout_assess(self._loop.now)
        if self._unresolved > 0:
            self._loop.push(self.rt.brownout.interval_s, self._brownout_tick)

    # ==================================================================
    # Serving-layer replica autoscaling
    # ==================================================================
    def _autoscale_gate(self) -> None:
        self._idle_rounds: Dict[str, int] = {}
        if self._unresolved > 0:
            self._loop.push(self.rt.autoscale_interval_s, self._autoscale_tick)

    def _autoscale_tick(self) -> None:
        rt = self.rt
        if self._unresolved <= 0:
            return
        idle_rounds = self._idle_rounds
        for module_name in self._sorted_modules:
            pressure, queued_seconds = self._module_pressure(module_name)
            if pressure > rt.scale_up_backlog_s:
                idle_rounds[module_name] = 0
                self._scale_up(module_name, pressure, queued_seconds)
            elif pressure == 0.0:
                idle_rounds[module_name] = idle_rounds.get(module_name, 0) + 1
                if idle_rounds[module_name] >= rt.scale_down_idle_rounds:
                    self._scale_down(module_name)
                    idle_rounds[module_name] = 0
            else:
                idle_rounds[module_name] = 0
        if self._unresolved > 0:
            self._loop.push(rt.autoscale_interval_s, self._autoscale_tick)

    def _module_pressure(self, module_name: str) -> Tuple[float, float]:
        hosts = [h for h in self._placement.hosts(module_name) if h in self._live]
        if not hosts:
            return 0.0, 0.0
        queued = 0.0
        for host in hosts:
            for job in self._queues.get((module_name, host), ()):
                queued += job[_EST]
        capacity = sum(self._slot_cap[h] for h in hosts)
        return queued / capacity, queued

    def _scale_up(self, module_name: str, pressure: float, queued_seconds: float) -> None:
        rt = self.rt
        if module_name in self._pending_adds:
            return
        hosts = self._placement.hosts(module_name)
        if len(hosts) >= rt.max_replicas:
            return
        module = self._module_specs[module_name]
        problem = self._engine.problem
        live_hosts = [h for h in hosts if h in self._live]
        if not live_hosts:
            return  # churn re-placement, not the autoscaler, owns this
        fastest = min(
            problem.compute_seconds(module, self._devices[h].profile)
            for h in live_hosts
        )
        candidates = [
            name for name in self._device_names
            if name in self._live and name not in hosts
            and self._devices[name].can_load(module)
            and problem.compute_seconds(module, self._devices[name].profile)
            <= rt.scale_up_speed_ratio * fastest
        ]
        if not candidates:
            return
        chosen = min(
            candidates,
            key=lambda name: (
                problem.compute_seconds(module, self._devices[name].profile),
                name,
            ),
        )
        cost = problem.compute_model.load_seconds(module, self._devices[chosen].profile)
        if cost > queued_seconds:
            return
        self._pending_adds.add(module_name)
        detail = f"backlog {pressure:.2f}s/slot > {rt.scale_up_backlog_s:.2f}s"
        self._loop.push(0.0, self._scale_up_start, module_name, chosen, cost, detail)

    def _scale_up_start(self, module_name: str, chosen: str, cost: float, detail: str) -> None:
        decided_at = self._loop.now
        if cost > 0:
            self._loop.push(
                cost, self._scale_up_finish, module_name, chosen, cost, detail, decided_at
            )
        else:
            self._scale_up_finish(module_name, chosen, cost, detail, decided_at)

    def _scale_up_finish(
        self, module_name: str, chosen: str, cost: float, detail: str, decided_at: float
    ) -> None:
        device = self._devices[chosen]
        module = self._module_specs[module_name]
        if (
            chosen not in self._live
            or not device.can_load(module)
            or chosen in self._placement.hosts(module_name)
            or len(self._placement.hosts(module_name)) >= self.rt.max_replicas
        ):
            self._scaling_log.append(
                ScalingRecord(
                    decided_at, "add", module_name, chosen, cost, False,
                    "aborted: candidate failed or filled up during the load window",
                )
            )
        else:
            device.load(module)
            self._placement = self._placement.with_extra(module_name, chosen)
            self._bump_generation()
            self._scaling_log.append(
                ScalingRecord(decided_at, "add", module_name, chosen, cost, True, detail)
            )
        self._pending_adds.discard(module_name)

    def _scale_down(self, module_name: str) -> None:
        rt = self.rt
        hosts = self._placement.hosts(module_name)
        live_hosts = [h for h in hosts if h in self._live]
        if len(hosts) <= 1 or len(live_hosts) <= 1:
            return
        module = self._module_specs[module_name]
        problem = self._engine.problem
        droppable = [
            h for h in live_hosts
            if not self._queues.get((module_name, h))
            and self._reserved.get(h, 0.0) == 0.0
        ]
        if not droppable:
            return
        victim = max(
            droppable,
            key=lambda name: (
                problem.compute_seconds(module, self._devices[name].profile),
                name,
            ),
        )
        self._devices[victim].unload(module_name)
        self._placement = Placement(
            {
                name: (tuple(h for h in hs if h != victim) if name == module_name else hs)
                for name, hs in self._placement.as_dict().items()
            }
        )
        self._bump_generation()
        self._scaling_log.append(
            ScalingRecord(
                self._loop.now, "drop", module_name, victim, 0.0, True,
                f"idle for {rt.scale_down_idle_rounds} rounds",
            )
        )

    # ==================================================================
    # Energy accounting
    # ==================================================================
    def _charge_radio(self, src: str, dst: str, payload_bytes: int) -> None:
        if not self._track_energy or src == dst:
            return
        self._radio_joules[src] = self._radio_joules.get(src, 0.0) + (
            self._energy_profiles[src].transfer_joules(payload_bytes)
        )
        self._radio_joules[dst] = self._radio_joules.get(dst, 0.0) + (
            self._energy_profiles[dst].transfer_joules(payload_bytes)
        )

    def _energy_report(self) -> EnergyReport:
        horizon = self._loop.now
        devices = []
        for name in self._device_names:
            profile = self._energy_profiles[name]
            active_s = merged_busy_seconds(self._busy_intervals.get(name, ()), horizon)
            idle_s = max(0.0, horizon - active_s)
            devices.append(
                DeviceEnergy(
                    device=name,
                    active_s=active_s,
                    idle_s=idle_s,
                    active_j=profile.active_watts * active_s,
                    idle_j=profile.idle_watts * idle_s,
                    radio_j=self._radio_joules.get(name, 0.0),
                )
            )
        return EnergyReport(horizon_s=horizon, devices=tuple(devices))

    # ==================================================================
    # Report
    # ==================================================================
    def _build_report(self, trace: ArrivalTrace) -> ServingReport:
        rt = self.rt
        records: Tuple[RequestRecord, ...] = ()
        if rt.keep_records:
            # tolist() converts each column to plain Python scalars in one
            # pass; per-element numpy indexing is ~10x slower at 1M rows.
            ids = self._req_ids.tolist()
            times = self._arrival_times.tolist()
            slos = self._slo.tolist()
            admits = self._admitted.tolist()
            finishes = self._finish.tolist()
            retries = self._retries.tolist()
            touts = self._timed_out.tolist()
            records = tuple(
                RequestRecord(
                    request_id=ids[i],
                    model_name=self._arrival_models[i],
                    arrival_time=times[i],
                    slo_s=slos[i],
                    admitted=admits[i],
                    rejected_reason=self._rejected[i],
                    # NaN != NaN: the only unfinished markers are NaN.
                    finish_time=finishes[i] if finishes[i] == finishes[i] else None,
                    retries=retries[i],
                    timed_out=touts[i],
                )
                for i in range(len(self._arrival_models))
            )
        return build_report_arrays(
            trace.kind,
            trace.duration_s,
            trace.seed,
            request_ids=self._req_ids,
            arrival_times=self._arrival_times,
            slo_s=self._slo,
            admitted=self._admitted,
            finish_times=self._finish,
            retries=self._retries,
            rejected=np.array([r is not None for r in self._rejected], dtype=bool),
            timed_out=self._timed_out,
            migrations=self._migrations,
            churn=self._churn_log,
            energy=self._energy_report() if self._track_energy else None,
            scaling=self._scaling_log,
            brownout=self._brownout_log,
            records=records,
        )
