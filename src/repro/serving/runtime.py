"""The online serving runtime: streaming requests, SLOs, churn, re-placement.

This is the continuous-serving counterpart of the one-shot batch executors
in :mod:`repro.core.routing`.  A :class:`ServingRuntime` drives the
discrete-event :class:`~repro.sim.Simulator` with an arrival trace from
:mod:`repro.serving.workload` and serves every request through:

1. **Admission** — the SLO policy (:mod:`repro.serving.slo`) prices the
   request (isolated Eq. 1-3 latency + live queue pressure) and rejects it
   at arrival if it is predicted to miss its deadline.
2. **Queue-aware routing** — a streaming extension of
   :class:`~repro.core.routing.queue_aware.QueueAwareRouter` that only
   considers *live* hosts and folds the micro-batcher's backlog into the
   wait estimate.
3. **Micro-batched execution** — per ``(module, device)`` server loops
   drain their queues in FIFO chunks of up to ``max_batch_size`` and run
   each chunk as ONE batched service (footnote 4 scaling via
   :func:`~repro.core.routing.batching.batched_service_time` semantics),
   which is how a burst of requests sharing a vision encoder amortizes it.
4. **Fault handling** — injected faults (:mod:`repro.serving.faults`,
   generalizing the fail/recover churn of :mod:`repro.serving.churn`)
   flush a lost device's queues, mark in-flight work lost (detected at
   service completion, like a timeout), and trigger the
   :class:`~repro.core.placement.adaptive.AdaptivePlacementController`:
   stranded modules force a migration whose switching cost is charged as
   simulated re-loading delay before the new placement takes effect.
   Straggler (``slow``) faults scale a device's compute times and are
   priced into routing and batching; link faults reprice (or cut)
   transfers through :class:`~repro.cluster.network.Network`, and devices
   partitioned away from the requester leave the live pool exactly like
   failures until connectivity returns.  Affected requests re-route and
   retry — **no request is ever lost or double-counted**: every arrival
   terminates as completed, rejected, or (retry budget exhausted under a
   :class:`~repro.serving.slo.RetryPolicy`) timed out.

All times are **seconds** of simulated time; payload sizes are **bytes**.

Modeling assumptions (documented, load-bearing):

- Failure detection happens at operation completion: work in flight on a
  device when it fails runs to its scheduled end, is then discarded and
  retried elsewhere (the detection delay stands in for a timeout) — unless
  a :class:`~repro.serving.slo.RetryPolicy` timeout fires first and
  cancels the attempt outright.
- Encoder outputs are durably cached once produced, so a head-side retry
  re-ships embeddings without re-running the encoder.
- The requester device never fails (it holds the input data); a partition
  is measured from the requester's side of the network.
- SLO deadlines and autoscale planning use *nominal* hardware speeds: a
  straggler does not earn its requests longer deadlines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import build_testbed
from repro.core.engine import PlacementAlgorithm, S2M3Engine
from repro.core.placement.adaptive import AdaptivePlacementController
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.executor import UplinkPool, transfer_proc
from repro.core.routing.latency import RoutingDecision
from repro.core.routing.queue_aware import QueueAwareRouter
from repro.profiles.devices import edge_device_names
from repro.serving.churn import FAIL, RECOVER, DeviceChurnEvent
from repro.serving.faults import (
    LINK_DEGRADE,
    LINK_RESTORE,
    SLOW,
    SLOW_END,
    BrownoutPolicy,
    FaultEvent,
    FaultPlan,
    compile_faults,
)
from repro.profiles.energy import resolve_energy_profile
from repro.serving.report import (
    BrownoutRecord,
    ChurnRecord,
    DeviceEnergy,
    EnergyReport,
    MigrationRecord,
    RequestRecord,
    ScalingRecord,
    ServingReport,
    build_report,
    merged_busy_seconds,
)
from repro.serving.slo import RetryPolicy, SLOPolicy
from repro.serving.workload import ArrivalTrace
from repro.sim import Event
from repro.sim.trace import CATEGORY_COMPUTE, CATEGORY_HEAD
from repro.utils.errors import PlacementError


class StreamingQueueAwareRouter(QueueAwareRouter):
    """Queue-aware routing for a live stream.

    Extends the burst router with three stream-specific signals, so every
    replica of a module is priced by a reservation-aware cost:

    - candidates are filtered to the *live* device set (churn-aware);
    - the wait estimate adds the micro-batcher's queued-but-unstarted
      backlog (in service-seconds) — the exact ledger of routed work that
      has already reached a queue;
    - it keeps an exact ledger of **in-flight reservations** for work that
      has been *routed but not yet enqueued* (crossing the uplink between
      routing and the micro-batcher).  Without them, a burst of
      simultaneous arrivals all route before any queue forms and pile onto
      the single cheapest replica.  Unlike the burst router's time-decaying
      bucket, streaming reservations do not decay: each one is released
      exactly when its job lands in a queue and the backlog ledger takes
      over, so decay would only double-drain the estimate.

    Ties break toward the smaller (score, device name) pair — equal-cost
    replicas resolve deterministically by name.
    """

    def __init__(
        self,
        cluster,
        latency_model,
        placement,
        live: Set[str],
        backlog: Dict[str, float],
        slow: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__(cluster, latency_model, placement)
        self._live = live
        self._backlog = backlog
        # Straggler fault factors (1.0 = nominal); routing prices the
        # *degraded* speed so slowed replicas shed load to healthy ones.
        self._slow = slow if slow is not None else {}

    def reserved_seconds(self, device_name: str) -> float:
        """In-flight reserved service-**seconds** against ``device_name``.

        Overrides the burst router's leaky-bucket read with an **exact**
        ledger: every streaming reservation is released the moment its job
        reaches a micro-batch queue (the runtime's ``_enqueue``), so
        nothing should decay in between — time-decaying here *and*
        releasing the full amount later would double-drain the shared
        bucket and under-report work still crossing the uplink.
        """
        state = self._reservations.get(device_name)
        return state[1] if state is not None else 0.0

    def estimated_wait(self, device_name: str, service_seconds: float) -> float:
        """Expected queueing delay (**seconds**) for a new arrival needing
        ``service_seconds`` on ``device_name``: live slot occupancy, plus
        the micro-batch backlog, plus in-flight reservations."""
        device = self.cluster.device(device_name)
        outstanding = device.slots.in_use + device.slots.queue_length
        live_wait = outstanding / device.slots.capacity * service_seconds
        backlog = self._backlog.get(device_name, 0.0) / device.slots.capacity
        reserved = self.reserved_seconds(device_name) / device.slots.capacity
        return live_wait + backlog + reserved

    def release(self, device_name: str, service_seconds: float) -> None:
        """Release an in-flight reservation: the routed work reached a
        micro-batch queue, so the backlog ledger now accounts for it.

        Residues below a nanosecond snap to exactly 0.0: the ledger is a
        float sum of reserve/release pairs, and IEEE-754 subtraction can
        leave ~1e-17 remainders that would otherwise read as "work still
        in flight" forever (the scale-down eligibility check compares
        against zero).
        """
        outstanding = self.reserved_seconds(device_name) - service_seconds
        if outstanding < 1e-9:
            outstanding = 0.0
        self._reservations[device_name] = (self.cluster.sim.now, outstanding)

    def route_module(
        self, request: InferenceRequest, module_name: str, reserve: bool = False
    ) -> Optional[str]:
        """Best live host for one module, or None while none is live.

        With ``reserve=True`` (the actual routing step, not a what-if
        estimate) the chosen host is charged an in-flight reservation for
        the module's service seconds; the caller must :meth:`release` it
        when the job is enqueued (the runtime does this in ``_enqueue``).
        """
        candidates = [
            device_name
            for device_name in self.placement.hosts(module_name)
            if device_name in self._live
        ]
        if not candidates:
            return None
        scored = []
        for device_name in candidates:
            service = self.latency_model.compute_seconds(request, module_name, device_name)
            service = service * self._slow.get(device_name, 1.0)
            wait = self.estimated_wait(device_name, service)
            scored.append((service + wait, device_name, service))
        _, chosen, service = min(scored)
        if reserve:
            self.reserve(chosen, service)
        return chosen

    def __call__(self, request: InferenceRequest) -> Optional[RoutingDecision]:
        """A what-if routing of the whole request (admission pricing).

        Never reserves — admission control must not poison the wait
        estimates of requests it ends up rejecting.
        """
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            host = self.route_module(request, module_name)
            if host is None:
                return None
            hosts[module_name] = host
        return RoutingDecision(request=request, hosts=hosts)


@dataclass(eq=False)
class _Job:
    """One module *attempt* owed to a request.

    Identity-compared (``eq=False``): the watchdog's dequeue must remove
    *this* job, never a value-equal sibling attempt.

    Created at routing time (so a retry-policy watchdog can cover the
    transfer leg too).  ``cancelled`` is set by the watchdog — the attempt
    is abandoned wherever it is (mid-transfer, queued, or mid-service);
    ``notified`` guards the one-shot ``done`` event against double firing
    (watchdog vs. batch completion vs. queue flush); ``key`` is the
    micro-batch queue the job sits in once enqueued (None before)."""

    request: InferenceRequest
    done: Event
    est_service: float
    cancelled: bool = False
    notified: bool = False
    key: Optional[Tuple[str, str]] = None


class ServingRuntime:
    """Continuous serving of an arrival trace on a fresh testbed cluster.

    Args:
        models: Catalog model names to deploy (the workload draws from these).
        device_names: Cluster devices; defaults to the paper's four-device
            edge pool.  The ``requester`` always participates.
        requester: Source device holding every request's input data.
        slo: Deadline/admission policy; defaults to :class:`SLOPolicy`.
        max_batch_size: Micro-batcher chunk cap (requests per batched service).
        batch_window_s: Optional accumulation window in seconds — a server
            with a sub-capacity queue waits this long before draining, so
            near-simultaneous arrivals share a batch.  0 disables it.
        replicate: Run the leftover-memory replication pass at deployment so
            queue-aware routing has replicas to spread load over.
        adapt_expected_requests: Hysteresis volume for the churn controller —
            a migration must amortize its switching cost over this many
            requests (see :class:`AdaptivePlacementController`).
        recent_window: How many recently admitted requests price a candidate
            re-placement (falls back to one request per model when empty).
        autoscale: Run the serving-layer replica autoscaler: a periodic
            control loop (every ``autoscale_interval_s`` simulated seconds)
            that **adds** a replica of any module whose queued-but-unstarted
            backlog exceeds ``scale_up_backlog_s`` service-seconds per slot
            of its live hosts — charging the module's load time as a
            switching cost before the new copy serves, exactly like churn
            migrations — and **drops** an idle surplus replica after
            ``scale_down_idle_rounds`` consecutive zero-backlog rounds
            (drops are free: unloading is instant and only queried-empty
            hosts are eligible, so no queued work is lost and the
            conservation guarantee is untouched).  Decisions are logged as
            :class:`~repro.serving.report.ScalingRecord` entries in
            ``ServingReport.scaling``.
        autoscale_interval_s: Control-loop period in **seconds** of
            simulated time.
        scale_up_backlog_s: Scale-up threshold in queued service-**seconds**
            per live slot; ``None`` derives it from the SLO policy as
            ``0.5 * slo.floor_s`` (scale out before queueing alone eats
            half the deadline floor).
        scale_down_idle_rounds: Consecutive idle control rounds before a
            surplus replica is dropped.
        scale_up_speed_ratio: Candidate-device guard (dimensionless): a new
            replica's planning compute time may be at most this multiple of
            the module's fastest live host.  Keeps an overload from scaling
            a heavy encoder onto a pathologically slow device whose long
            services then dominate the tail.
        max_replicas: Upper bound on a module's host-set size (memory
            guard; counts failed hosts too — their weights stay resident).
        engine: Which serving core drives the run.  ``"flat"`` (default)
            is the vectorized event loop of
            :class:`~repro.serving.engine.FlatServingEngine` — per-request
            state in numpy columns, continuations as plain callbacks —
            which replays the same semantics orders of magnitude faster;
            ``"processes"`` is the original generator-process engine, kept
            as the bit-identity oracle.  Same config + trace + churn ⇒
            identical :class:`~repro.serving.report.ServingReport` from
            either engine.
        max_events: Optional livelock cap forwarded to the event loop;
            ``None`` (default) derives it from the scheduled work (see
            :func:`repro.sim.simulator.default_max_events`).
        keep_records: Keep the per-request :class:`RequestRecord` tuple on
            the report.  ``False`` drops it after aggregation — the
            memory-saving choice for million-arrival replays where only
            the aggregate metrics matter.
        track_energy: Account per-device energy during the run (see
            :class:`~repro.serving.report.EnergyReport`): active joules over
            the union of compute/head spans, idle joules (``idle_watts``)
            over the rest of the wall-clock horizon — failed devices keep
            drawing idle power, they leave rather than power off — and
            per-byte radio joules on both endpoints of every input and
            embedding transfer (co-located hops free, matching
            :mod:`repro.profiles.energy`).  Deployment-phase model loading
            is out of scope: the ledger covers the serving run itself.
        retry: Per-attempt timeout / bounded-retry / backoff policy
            (:class:`~repro.serving.slo.RetryPolicy`).  The default policy
            (no timeout, unlimited retries, no backoff) reproduces the
            pre-policy runtime bit-for-bit; with ``timeout_s`` set, every
            module attempt races a watchdog and a request whose retry
            budget runs out terminates as *timed out* (the report's third
            terminal state).
        brownout: Optional :class:`~repro.serving.faults.BrownoutPolicy`.
            When set, a periodic controller watches backlog pressure and
            sheds arrivals of the lowest-SLO-slack model classes first
            (tiered admission) instead of letting every queue collapse;
            level changes are logged in ``ServingReport.brownout``.
        congestion_aware: Plan the deployment with the queue-aware exact
            solver instead of greedy Algorithm 1: arrival rates measured
            from the trace (:meth:`CongestionModel.from_trace`) price each
            device's M/G/1-style expected wait into the placement
            objective, so the solver optimizes what ``serve`` measures
            under load rather than empty-cluster latency (see
            ``docs/placement.md``).  Both engines plan identically —
            reports stay bit-identical across ``engine="flat"`` and
            ``engine="processes"``.
        placement_algorithm: Custom planner forwarded to
            :class:`~repro.core.engine.S2M3Engine` (mutually exclusive
            with ``congestion_aware``, which installs its own).

    Every ``run`` builds a fresh cluster and simulator (clock at 0), so the
    same runtime object can serve many traces; with identical arguments and
    an identical trace the resulting report metrics are identical too.
    """

    def __init__(
        self,
        models: Sequence[str],
        device_names: Optional[Sequence[str]] = None,
        requester: str = "jetson-a",
        slo: Optional[SLOPolicy] = None,
        max_batch_size: int = 8,
        batch_window_s: float = 0.0,
        replicate: bool = True,
        adapt_expected_requests: int = 20,
        recent_window: int = 32,
        autoscale: bool = False,
        autoscale_interval_s: float = 0.5,
        scale_up_backlog_s: Optional[float] = None,
        scale_down_idle_rounds: int = 6,
        scale_up_speed_ratio: float = 3.0,
        max_replicas: int = 3,
        engine: str = "flat",
        max_events: Optional[int] = None,
        keep_records: bool = True,
        track_energy: bool = True,
        retry: Optional[RetryPolicy] = None,
        brownout: Optional[BrownoutPolicy] = None,
        congestion_aware: bool = False,
        placement_algorithm: Optional[PlacementAlgorithm] = None,
    ) -> None:
        if not models:
            raise ValueError("need at least one model to serve")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if batch_window_s < 0:
            raise ValueError(f"batch_window_s must be non-negative, got {batch_window_s}")
        if autoscale_interval_s <= 0:
            raise ValueError(f"autoscale_interval_s must be positive, got {autoscale_interval_s}")
        if scale_up_backlog_s is not None and scale_up_backlog_s <= 0:
            raise ValueError(f"scale_up_backlog_s must be positive, got {scale_up_backlog_s}")
        if scale_down_idle_rounds < 1:
            raise ValueError(f"scale_down_idle_rounds must be >= 1, got {scale_down_idle_rounds}")
        if scale_up_speed_ratio < 1:
            raise ValueError(f"scale_up_speed_ratio must be >= 1, got {scale_up_speed_ratio}")
        if max_replicas < 1:
            raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
        if engine not in ("flat", "processes"):
            raise ValueError(f"engine must be 'flat' or 'processes', got {engine!r}")
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        if congestion_aware and placement_algorithm is not None:
            raise ValueError(
                "congestion_aware installs its own placement algorithm; "
                "pass one or the other, not both"
            )
        self.models = list(models)
        self.device_names = list(device_names) if device_names is not None else edge_device_names()
        self.requester = requester
        self.slo = slo if slo is not None else SLOPolicy()
        self.max_batch_size = max_batch_size
        self.batch_window_s = batch_window_s
        self.replicate = replicate
        self.adapt_expected_requests = adapt_expected_requests
        self.recent_window = recent_window
        self.autoscale = autoscale
        self.autoscale_interval_s = autoscale_interval_s
        if scale_up_backlog_s is not None:
            self.scale_up_backlog_s = scale_up_backlog_s
        else:
            # SLOPolicy allows floor_s == 0; keep the derived threshold
            # positive (the constructor's invariant) with a 0.5 s fallback
            # so zero-floor policies don't scale out on microscopic backlog.
            derived = 0.5 * self.slo.floor_s
            self.scale_up_backlog_s = derived if derived > 0 else 0.5
        self.scale_down_idle_rounds = scale_down_idle_rounds
        self.scale_up_speed_ratio = scale_up_speed_ratio
        self.max_replicas = max_replicas
        self.engine = engine
        self.max_events = max_events
        self.keep_records = keep_records
        self.track_energy = track_energy
        self.retry = retry if retry is not None else RetryPolicy()
        self.brownout = brownout
        self.congestion_aware = congestion_aware
        self.placement_algorithm = placement_algorithm

    # ==================================================================
    # Deployment (shared by both engines)
    # ==================================================================
    def _deploy_engine(self, cluster, trace: ArrivalTrace) -> S2M3Engine:
        """Build, plan, and deploy the S2M3 engine for one run.

        The single deployment path for both serving cores, so planner
        choices (``congestion_aware``, ``placement_algorithm``) cannot
        fork the engines: identical config + trace ⇒ identical placement.
        """
        algorithm = self.placement_algorithm
        if self.congestion_aware:
            # Imported lazily to keep the core solver stack out of the
            # serving module's import graph unless the flag is used.
            from repro.core.placement.optimal import optimal_placement
            from repro.core.placement.tensors import CongestionModel

            congestion = CongestionModel.from_trace(trace)

            def algorithm(problem: PlacementProblem) -> Placement:
                # request_id=-1 keeps solver-only scoring requests from
                # bumping the process-global request counter (bit-identity
                # of served request ids across configurations).
                requests = [
                    InferenceRequest(model=spec, source=cluster.requester, request_id=-1)
                    for spec in problem.models
                ]
                placement, _ = optimal_placement(
                    problem, requests, network=cluster.network, congestion=congestion
                )
                return placement

        engine = S2M3Engine(
            cluster, self.models, replicate=self.replicate,
            placement_algorithm=algorithm,
        )
        engine.deploy()
        return engine

    # ==================================================================
    # Run
    # ==================================================================
    def run(
        self,
        trace: ArrivalTrace,
        churn_events: Iterable[DeviceChurnEvent] = (),
        faults: Optional[FaultPlan] = None,
    ) -> ServingReport:
        """Serve ``trace`` (optionally under churn/faults); returns the report.

        ``churn_events`` (legacy fail/recover deltas) and ``faults`` (a
        typed :class:`~repro.serving.faults.FaultPlan` adding stragglers,
        link faults and regional outages) merge into one time-sorted
        injection stream.  The plan is validated against the device pool
        and network topology *before* any serving starts — unknown names
        raise :class:`ValueError`, never silently skip.

        The report enforces conservation: every arrival is completed,
        rejected, or timed out, never lost — a violation raises
        :class:`RuntimeError`.

        Dispatches to the engine selected at construction: the flat
        vectorized event loop (default) or the legacy generator-process
        engine — both produce identical reports for identical inputs,
        faulted or not.
        """
        if faults is not None:
            pool = set(self.device_names) | {self.requester}
            # build_testbed always wires the paper's Table III topology, so
            # a fresh Network validates link names exactly.
            faults.validate_for(sorted(pool), network=Network())
        fault_events = compile_faults(faults, churn_events)
        if self.engine == "flat":
            # Imported lazily: repro.serving.engine imports from this module's
            # siblings, and the legacy path must stay importable without it.
            from repro.serving.engine import FlatServingEngine

            return FlatServingEngine(self).run(trace, fault_events)
        return self._run_processes(trace, fault_events)

    def _run_processes(
        self,
        trace: ArrivalTrace,
        fault_events: Sequence[FaultEvent] = (),
    ) -> ServingReport:
        """The legacy engine: one generator process per request per hop."""
        self._cluster = build_testbed(self.device_names, requester=self.requester)
        self._sim = self._cluster.sim
        self._engine = self._deploy_engine(self._cluster, trace)
        self._placement: Placement = self._engine.placement
        self._latency_model = self._engine.latency_model()
        self._live: Set[str] = set(self._cluster.device_names)
        self._crashed: Set[str] = set()
        self._slow: Dict[str, float] = {name: 1.0 for name in self._cluster.device_names}
        self._backlog: Dict[str, float] = {}
        self._router = StreamingQueueAwareRouter(
            self._cluster, self._latency_model, self._placement, self._live,
            self._backlog, self._slow,
        )
        self._controller = AdaptivePlacementController(
            self._cluster.network, expected_requests=self.adapt_expected_requests
        )
        # Churn toggles between a handful of live pools; caching the problem
        # per pool lets the controller's latency-model/tensor cache hit by
        # object identity instead of rebuilding on every assessment.
        self._problem_cache: Dict[Tuple[str, ...], PlacementProblem] = {}
        self._queues: Dict[Tuple[str, str], List[_Job]] = {}
        self._active_servers: Set[Tuple[str, str]] = set()
        self._nics = UplinkPool(self._sim)
        self._fail_times: Dict[str, List[float]] = {}
        self._radio_joules: Dict[str, float] = {}
        self._reconfig_event: Event = self._sim.event()
        self._recent_requests: List[InferenceRequest] = []
        self._migrations: List[MigrationRecord] = []
        self._churn_log: List[ChurnRecord] = []
        self._scaling_log: List[ScalingRecord] = []
        self._pending_adds: Set[str] = set()
        self._unresolved = len(trace.arrivals)
        self._brownout_level = 0
        self._brownout_shed: frozenset = frozenset()
        self._brownout_log: List[BrownoutRecord] = []
        if self.brownout is not None:
            self._brownout_rank = self._brownout_ranking()

        records: List[RequestRecord] = []
        for index, arrival in enumerate(trace.arrivals):
            record = RequestRecord(
                request_id=-1, model_name=arrival.model_name, arrival_time=arrival.time
            )
            records.append(record)
            self._sim.process(self._request_proc(record), name=f"serve-{index}")
        if fault_events:
            self._sim.process(self._fault_proc(fault_events), name="churn")
        if self.brownout is not None and trace.arrivals:
            self._sim.process(self._brownout_proc(), name="brownout")
        if self.autoscale and trace.arrivals:
            self._sim.process(self._autoscale_proc(), name="autoscale")
        self._sim.run(max_events=self.max_events)
        return build_report(
            trace.kind,
            trace.duration_s,
            trace.seed,
            records,
            self._migrations,
            self._churn_log,
            energy=self._energy_report() if self.track_energy else None,
            scaling=self._scaling_log,
            brownout=self._brownout_log,
            keep_records=self.keep_records,
        )

    # ==================================================================
    # Request lifecycle
    # ==================================================================
    def _request_proc(self, record: RequestRecord):
        try:
            yield from self._serve_one(record)
        finally:
            # Terminal either way (completed or rejected); the autoscaler's
            # control loop exits once nothing is left to serve.
            self._unresolved -= 1

    def _serve_one(self, record: RequestRecord):
        sim = self._sim
        if record.arrival_time > 0:
            yield sim.timeout(record.arrival_time)
        request = self._engine.request(record.model_name, arrival_time=sim.now)
        record.request_id = request.request_id

        isolated = self._isolated_estimate(request)
        if isolated is None:
            # Mid-migration window: some module has no live host right now.
            if self.slo.admission:
                record.slo_s = self.slo.slo_for(0.0)
                record.rejected_reason = "no live host for a required module"
                return
            record.slo_s = self.slo.slo_for(0.0)
            if record.model_name in self._brownout_shed:
                record.rejected_reason = (
                    f"brownout level {self._brownout_level}: "
                    f"shedding {record.model_name}"
                )
                return
        else:
            record.slo_s = self.slo.slo_for(isolated)
            if record.model_name in self._brownout_shed:
                record.rejected_reason = (
                    f"brownout level {self._brownout_level}: "
                    f"shedding {record.model_name}"
                )
                return
            predicted = isolated + self._queue_pressure(request)
            if not self.slo.admit(predicted, record.slo_s):
                record.rejected_reason = (
                    f"predicted {predicted:.2f}s exceeds SLO {record.slo_s:.2f}s"
                )
                return
        record.admitted = True
        self._remember(request)

        encoders = list(request.model.encoders)
        encoder_hosts: Dict[str, str] = {}
        paths = [
            sim.process(
                self._module_op(request, record, encoder_name, send_input=True),
                name=f"q{request.request_id}:{encoder_name}",
            )
            for encoder_name in encoders
        ]
        if paths:
            hosts = yield sim.all_of(paths)
            encoder_hosts = dict(zip(encoders, hosts))
        if record.timed_out:
            return
        yield from self._head_op(request, record, encoder_hosts)
        if record.timed_out:
            return
        record.finish_time = sim.now

    def _module_op(self, request: InferenceRequest, record: RequestRecord, module_name: str, send_input: bool):
        """Route -> (transfer input) -> micro-batch -> retry on failure.

        Returns the host that finally served the module, or None when the
        request's retry budget ran out (``record.timed_out`` is then set).

        The job is created at *routing* time so the retry watchdog covers
        the whole attempt (transfer + queue + service); its estimated
        service is priced at the same instant the router reserved it, so
        the reservation ledger releases the exact float it charged even if
        a straggler fault lands mid-transfer.
        """
        sim = self._sim
        attempt = 0
        while True:
            if record.timed_out:
                # A sibling path exhausted the shared retry budget.
                return None
            host = self._router.route_module(request, module_name, reserve=True)
            if host is None:
                # Wait out the migration; a new placement always arrives
                # (stranded modules force the controller's hand).
                yield self._reconfigured()
                continue
            if attempt > 0:
                record.retries += 1
            attempt += 1
            est_service = (
                self._latency_model.compute_seconds(request, module_name, host)
                * self._slow[host]
            )
            job = _Job(request=request, done=sim.event(), est_service=est_service)
            if self.retry.timeout_s is not None:
                self._arm_watchdog(job)
            delivered = True
            if send_input:
                module = self._latency_model.module(module_name)
                modality = module.modality or "image"
                payload = request.model.payload_bytes(modality)
                nic = self._nics.get(request.source)
                token = yield nic.acquire()
                delivered = False
                try:
                    if not job.cancelled and self._cluster.network.has_path(
                        request.source, host
                    ):
                        yield from transfer_proc(
                            self._cluster, request.source, host, payload,
                            f"{modality}->{host}", request.request_id,
                        )
                        delivered = True
                finally:
                    nic.release(token)
                if delivered:
                    self._charge_radio(request.source, host, payload)
            if job.cancelled or not delivered:
                # Timed out mid-transfer, or a partition kept the payload
                # from landing: undo the reservation and retry.
                self._router.release(host, est_service)
                ok = False
            else:
                self._enqueue(module_name, host, job)
                ok = yield job.done
            if ok:
                return host
            if not self.retry.allows_retry(record.retries):
                record.timed_out = True
                return None
            delay = self.retry.backoff_delay(record.retries)
            if delay > 0:
                yield sim.timeout(delay)

    def _head_op(self, request: InferenceRequest, record: RequestRecord, encoder_hosts: Dict[str, str]):
        """Ship embeddings to the head's host, run the head, retry on failure."""
        sim = self._sim
        head_name = request.model.head
        attempt = 0
        while True:
            if record.timed_out:
                return
            host = self._router.route_module(request, head_name, reserve=True)
            if host is None:
                yield self._reconfigured()
                continue
            if attempt > 0:
                record.retries += 1
            attempt += 1
            est_service = (
                self._latency_model.compute_seconds(request, head_name, host)
                * self._slow[host]
            )
            job = _Job(request=request, done=sim.event(), est_service=est_service)
            if self.retry.timeout_s is not None:
                self._arm_watchdog(job)
            delivered = True
            for encoder_name, encoder_host in encoder_hosts.items():
                if job.cancelled or not self._cluster.network.has_path(encoder_host, host):
                    # Cached embeddings can't reach the head right now
                    # (timeout or partition); abandon the attempt.
                    delivered = False
                    break
                module = self._latency_model.module(encoder_name)
                yield from transfer_proc(
                    self._cluster, encoder_host, host, module.output_bytes,
                    f"emb->{host}", request.request_id,
                )
                self._charge_radio(encoder_host, host, module.output_bytes)
            if job.cancelled or not delivered:
                self._router.release(host, est_service)
                ok = False
            else:
                self._enqueue(head_name, host, job)
                ok = yield job.done
            if ok:
                return host
            if not self.retry.allows_retry(record.retries):
                record.timed_out = True
                return
            delay = self.retry.backoff_delay(record.retries)
            if delay > 0:
                yield sim.timeout(delay)
            if not delivered and not job.cancelled:
                # A partition strands a cached embedding: every re-route at
                # this instant would fail the same reachability check, so
                # wait for the next reachability/placement change instead
                # of spinning (a cut link is always restored eventually —
                # the fault-plan validator rejects permanent cuts).
                yield self._reconfigured()

    # ==================================================================
    # Micro-batch servers
    # ==================================================================
    def _enqueue(self, module_name: str, host: str, job: _Job) -> None:
        key = (module_name, host)
        job.key = key
        self._queues.setdefault(key, []).append(job)
        # The routed work is now visible as backlog; release the in-flight
        # reservation the router took at routing time (same service value).
        self._router.release(host, job.est_service)
        self._backlog[host] = self._backlog.get(host, 0.0) + job.est_service
        if key not in self._active_servers:
            self._active_servers.add(key)
            self._sim.process(self._server_proc(module_name, host), name=f"srv:{module_name}@{host}")

    def _server_proc(self, module_name: str, host: str):
        """Drain one (module, host) queue in FIFO micro-batches."""
        sim = self._sim
        key = (module_name, host)
        queue = self._queues[key]
        device = self._cluster.device(host)
        module = self._latency_model.module(module_name)
        category = CATEGORY_HEAD if module.is_head else CATEGORY_COMPUTE
        try:
            while queue:
                if host not in self._live:
                    self._flush_queue(key)
                    break
                if self.batch_window_s > 0 and len(queue) < self.max_batch_size:
                    yield sim.timeout(self.batch_window_s)
                    if host not in self._live:
                        self._flush_queue(key)
                        break
                    if not queue:
                        # A failure flushed the queue during the window and
                        # the device already recovered; nothing left to run.
                        break
                chunk = queue[: self.max_batch_size]
                del queue[: self.max_batch_size]
                # Backlog tracks queued-but-unstarted work only; once a job
                # enters a batch, its remaining time is visible to the wait
                # estimate through the device's slot occupancy instead.
                for job in chunk:
                    self._drop_backlog(host, job)
                if not device.hosts(module_name):
                    # A migration moved the module off this host between
                    # routing and service; the jobs re-route.
                    self._finish_chunk(chunk, ok=False)
                    continue
                heaviest = max(
                    chunk, key=lambda j: j.request.model.scale_for(module_name)
                )
                submitted = sim.now
                yield from device.execute(
                    module,
                    model=heaviest.request.model,
                    batch_size=len(chunk),
                    label=f"batch[{len(chunk)}] {module_name}",
                    category=category,
                    service_scale=self._slow[host],
                )
                lost = self._failed_during(host, submitted)
                self._finish_chunk(chunk, ok=not lost)
        finally:
            self._active_servers.discard(key)

    def _finish_chunk(self, chunk: List[_Job], ok: bool) -> None:
        for job in chunk:
            if job.notified:
                continue  # the retry watchdog already resumed its owner
            job.notified = True
            job.done.succeed(ok)

    def _drop_backlog(self, host: str, job: _Job) -> None:
        self._backlog[host] = max(0.0, self._backlog.get(host, 0.0) - job.est_service)

    def _flush_queue(self, key: Tuple[str, str]) -> None:
        """Fail every queued (unstarted) job so it re-routes elsewhere."""
        queue = self._queues.get(key)
        if not queue:
            return
        jobs, queue[:] = list(queue), []
        for job in jobs:
            self._drop_backlog(key[1], job)
            if job.notified:
                continue
            job.notified = True
            job.done.succeed(False)

    # ==================================================================
    # Retry watchdogs (RetryPolicy timeouts)
    # ==================================================================
    def _arm_watchdog(self, job: _Job) -> None:
        """Race the attempt against the retry policy's per-attempt timeout."""
        self._sim.timeout(self.retry.timeout_s).add_callback(
            lambda _event: self._watch_fire(job)
        )

    def _watch_fire(self, job: _Job) -> None:
        """The attempt's deadline passed: cancel it wherever it is.

        Still queued — dequeue it and fail the job now.  Mid-service — the
        batch keeps the device busy, but the owner is resumed immediately
        and the stale result is dropped at chunk completion (``notified``).
        Mid-transfer (not yet enqueued) — only mark ``cancelled``; the
        owner checks the flag at its next checkpoint (events for the
        in-flight transfer are already scheduled and cannot be unwound).
        """
        if job.notified or job.cancelled:
            return
        job.cancelled = True
        if job.key is None:
            return
        queue = self._queues.get(job.key)
        if queue is not None and job in queue:
            queue.remove(job)
            self._drop_backlog(job.key[1], job)
        job.notified = True
        job.done.succeed(False)

    def _failed_during(self, host: str, since: float) -> bool:
        if host not in self._live:
            return True
        return any(since <= t <= self._sim.now for t in self._fail_times.get(host, ()))

    # ==================================================================
    # Fault injection and adaptive re-placement
    # ==================================================================
    def _fault_proc(self, events: Sequence[FaultEvent]):
        """Walk the merged fault stream, applying each event at its time.

        Events that change the *live pool* (crashes, recoveries,
        partitions healing or opening) trigger the adaptive re-placement
        controller; straggler and bandwidth-only link faults reprice
        without reconfiguring."""
        sim = self._sim
        for event in events:
            if event.time > sim.now:
                yield sim.timeout(event.time - sim.now)
            applied, detail, reconfigure = self._apply_fault(event)
            self._churn_log.append(
                ChurnRecord(sim.now, event.label, event.kind, applied, detail)
            )
            if reconfigure:
                yield from self._replace()
                self._signal_reconfigured()

    def _apply_fault(self, event: FaultEvent) -> Tuple[bool, str, bool]:
        """Apply one fault; returns ``(applied, detail, reconfigure)``."""
        if event.kind == FAIL:
            applied, detail = self._apply_failure(event.device)
            if applied and event.region:
                detail = f"region {event.region}"
            return applied, detail, applied
        if event.kind == RECOVER:
            applied, detail = self._apply_recovery(event.device)
            if applied and event.region:
                detail = f"region {event.region}"
            return applied, detail, applied
        if event.kind == SLOW:
            self._set_slow(event.device, event.factor)
            return True, f"x{event.factor:g}", False
        if event.kind == SLOW_END:
            self._set_slow(event.device, 1.0)
            return True, "", False
        # Link faults: reprice through the network, then re-derive which
        # devices the requester can still reach.
        a, b = event.link  # type: ignore[misc]
        if event.kind == LINK_DEGRADE:
            self._cluster.network.degrade_link(a, b, event.factor)
            detail = "cut" if event.factor == 0.0 else f"bandwidth x{event.factor:g}"
        else:
            self._cluster.network.restore_link(a, b)
            detail = ""
        self._after_link_change()
        changed, change_detail = self._refresh_reachability()
        if change_detail:
            detail = f"{detail}; {change_detail}" if detail else change_detail
        return True, detail, changed

    def _set_slow(self, device_name: str, factor: float) -> None:
        """Install a straggler factor (the flat engine overlays cache
        invalidation on top of this hook)."""
        self._slow[device_name] = factor

    def _after_link_change(self) -> None:
        """Hook for the flat engine's transfer-price cache invalidation."""

    def _apply_failure(self, device_name: str):
        if device_name == self.requester:
            return False, "requester never fails"
        if device_name in self._crashed:
            return False, "already failed"
        remaining = [n for n in self._cluster.device_names if n in self._live and n != device_name]
        if not self._feasible(remaining):
            return False, "placement infeasible without it"
        self._crashed.add(device_name)
        if device_name in self._live:
            self._lose_device(device_name)
        return True, ""

    def _apply_recovery(self, device_name: str):
        if device_name not in self._crashed:
            if device_name not in self._cluster.devices:
                return False, "unknown device"
            if device_name in self._live:
                return False, "already live"
            return False, "partitioned, not failed"
        self._crashed.discard(device_name)
        if not self._requester_reaches(device_name):
            # Back up, but marooned behind a cut link: it rejoins the live
            # pool when the partition heals (reachability refresh).
            return True, "recovered but still partitioned"
        self._live.add(device_name)
        return True, ""

    def _lose_device(self, device_name: str) -> None:
        """Remove a device from the live pool: flush its queues and stamp
        the loss so in-flight batches detect it at completion."""
        self._live.discard(device_name)
        self._fail_times.setdefault(device_name, []).append(self._sim.now)
        for key in list(self._queues):
            if key[1] == device_name:
                self._flush_queue(key)

    def _requester_reaches(self, device_name: str) -> bool:
        if device_name == self.requester:
            return True
        return device_name in self._cluster.network.reachable_from(self.requester)

    def _refresh_reachability(self) -> Tuple[bool, str]:
        """Reconcile the live pool with requester-side reachability after a
        link change.  Partitioned devices leave exactly like failures
        (queues flushed, in-flight work lost); devices that are alive and
        newly reachable rejoin.  Returns whether the pool changed, plus a
        log detail."""
        reachable = self._cluster.network.reachable_from(self.requester)
        lost = [
            n for n in self._cluster.device_names
            if n in self._live and n != self.requester and n not in reachable
        ]
        gained = [
            n for n in self._cluster.device_names
            if n not in self._live and n not in self._crashed and n in reachable
        ]
        for name in lost:
            self._lose_device(name)
        for name in gained:
            self._live.add(name)
        parts = []
        if lost:
            parts.append("partitioned: " + ", ".join(lost))
        if gained:
            parts.append("rejoined: " + ", ".join(gained))
        return bool(lost or gained), "; ".join(parts)

    def _replace(self):
        """Let the adaptive controller re-place for the current live pool,
        charging any switching cost as simulated reload delay."""
        problem_now = self._live_problem()
        requests = self._recent_requests[-self.recent_window:]
        if not requests:
            requests = [self._engine.request(name) for name in self.models]
        try:
            decision = self._controller.evaluate(problem_now, self._placement, requests)
        except PlacementError:
            # Pre-checked via _feasible; a failure here means the pool
            # changed under us — keep serving on the old placement.
            return
        if decision.migrate and decision.new_placement is not None:
            decided_at = self._sim.now
            if decision.switching_cost_seconds > 0:
                yield self._sim.timeout(decision.switching_cost_seconds)
            self._install(decision.new_placement)
            # Stamped with the decision time so the log attributes the
            # migration to the churn event that triggered it; the new
            # placement takes effect switching_cost_s later.
            self._migrations.append(
                MigrationRecord(decided_at, decision.reason, decision.switching_cost_seconds)
            )

    def _install(self, placement: Placement) -> None:
        """Materialize ``placement`` on the live devices (unload then load)."""
        modules = self._engine.module_specs
        assignment = placement.as_dict()
        for name in self._cluster.device_names:
            if name not in self._live:
                continue  # failed devices keep their weights for a comeback
            device = self._cluster.devices[name]
            keep = {m for m, hosts in assignment.items() if name in hosts}
            for loaded_name in list(device.loaded):
                if loaded_name not in keep:
                    device.unload(loaded_name)
            for module_name in sorted(keep):
                if not device.hosts(module_name):
                    device.load(modules[module_name])
        self._placement = placement
        self._router.placement = placement

    def _problem_for(self, device_names: Sequence[str]) -> PlacementProblem:
        key = tuple(device_names)
        problem = self._problem_cache.get(key)
        if problem is None:
            problem = PlacementProblem(
                modules=self._engine.problem.modules,
                devices=tuple(self._cluster.devices[name].profile for name in device_names),
                models=self._engine.problem.models,
            )
            self._problem_cache[key] = problem
        return problem

    def _live_problem(self) -> PlacementProblem:
        return self._problem_for(
            [name for name in self._cluster.device_names if name in self._live]
        )

    def _feasible(self, live_names: Sequence[str]) -> bool:
        # The feasibility probe and the controller's candidate each run one
        # greedy solve per applied event; the problems are small (a handful
        # of modules x devices), so the duplication is cheaper than
        # widening the controller's API to accept a precomputed candidate.
        if not live_names:
            return False
        try:
            greedy_placement(self._problem_for(live_names))
        except PlacementError:
            return False
        return True

    def _reconfigured(self) -> Event:
        return self._reconfig_event

    def _signal_reconfigured(self) -> None:
        event, self._reconfig_event = self._reconfig_event, self._sim.event()
        event.succeed(True)

    # ==================================================================
    # Brownout controller (graceful load shedding)
    # ==================================================================
    def _brownout_ranking(self) -> List[str]:
        """Model classes ordered by SLO slack, smallest first.

        Slack = deadline minus isolated latency on the fresh deployment —
        the classes already closest to their deadlines are shed first
        (they are the least likely to produce goodput under pressure).
        Scoring uses ``request_id=-1`` prototypes so ranking never bumps
        the process-global request counter (bit-identity of served ids).
        """
        slacks = []
        for spec in self._engine.problem.models:
            proto = InferenceRequest(
                model=spec, source=self._cluster.requester, request_id=-1
            )
            isolated = self._isolated_estimate(proto)
            iso = isolated if isolated is not None else 0.0
            slacks.append((self.slo.slo_for(iso) - iso, spec.name))
        slacks.sort()
        return [name for _, name in slacks]

    def _brownout_pressure(self) -> float:
        """Cluster backlog pressure: queued-but-unstarted service-seconds
        per live compute slot (inf while no device is live)."""
        queued = 0.0
        capacity = 0
        for name in self._cluster.device_names:
            if name not in self._live:
                continue
            queued += self._backlog.get(name, 0.0)
            capacity += self._cluster.device(name).slots.capacity
        return queued / capacity if capacity else float("inf")

    def _brownout_assess(self, now: float) -> None:
        """One hysteresis step: raise the shed level above the high-water
        pressure, lower it at or below the low-water mark, and always keep
        at least one model class admitted."""
        policy = self.brownout
        pressure = self._brownout_pressure()
        level = self._brownout_level
        if pressure > policy.high_backlog_s:
            level += 1
        elif pressure <= policy.low_backlog_s:
            level -= 1
        cap = len(self._brownout_rank) - 1
        if policy.max_level is not None:
            cap = min(cap, policy.max_level)
        level = max(0, min(level, cap))
        if level != self._brownout_level:
            self._brownout_level = level
            shed = tuple(self._brownout_rank[:level])
            self._brownout_shed = frozenset(shed)
            self._brownout_log.append(BrownoutRecord(now, level, pressure, shed))

    def _brownout_proc(self):
        sim = self._sim
        while self._unresolved > 0:
            yield sim.timeout(self.brownout.interval_s)
            if self._unresolved <= 0:
                break
            self._brownout_assess(sim.now)

    # ==================================================================
    # Serving-layer replica autoscaling
    # ==================================================================
    def _module_pressure(self, module_name: str) -> Tuple[float, float]:
        """Queued-but-unstarted work for one module.

        Returns ``(pressure, queued_seconds)``: the sum of est_service over
        every live queue of the module (service-**seconds**), both raw and
        divided by the total slot capacity of its live hosts.  Modules with
        no live host report ``(0, 0)`` (churn re-placement, not the
        autoscaler, owns that situation)."""
        hosts = [h for h in self._placement.hosts(module_name) if h in self._live]
        if not hosts:
            return 0.0, 0.0
        queued = 0.0
        for host in hosts:
            for job in self._queues.get((module_name, host), ()):
                queued += job.est_service
        capacity = sum(self._cluster.device(h).slots.capacity for h in hosts)
        return queued / capacity, queued

    def _autoscale_proc(self):
        """The control loop: one add/drop assessment per module per round.

        Runs only while requests are outstanding, so an idle tail never
        keeps the simulator alive; modules are visited in sorted-name order
        for determinism.  Scale-up load waits run as their **own** sim
        processes, so a slow load never stalls the next round's pressure
        assessment of other modules.
        """
        sim = self._sim
        idle_rounds: Dict[str, int] = {}
        while self._unresolved > 0:
            yield sim.timeout(self.autoscale_interval_s)
            if self._unresolved <= 0:
                break
            for module_name in sorted(self._engine.module_specs):
                pressure, queued_seconds = self._module_pressure(module_name)
                if pressure > self.scale_up_backlog_s:
                    idle_rounds[module_name] = 0
                    self._scale_up(module_name, pressure, queued_seconds)
                elif pressure == 0.0:
                    idle_rounds[module_name] = idle_rounds.get(module_name, 0) + 1
                    if idle_rounds[module_name] >= self.scale_down_idle_rounds:
                        self._scale_down(module_name)
                        idle_rounds[module_name] = 0
                else:
                    idle_rounds[module_name] = 0

    def _scale_up(self, module_name: str, pressure: float, queued_seconds: float) -> None:
        """Decide an add for an overloaded module, charging its load time.

        The candidate is the live device (not already hosting the module,
        with the weights fitting in free memory, within the speed-ratio
        guard) with the smallest planning compute time, name tie-break.
        The load delay is spawned as its own sim process — the replica only
        joins the routable set ``cost_s`` later, the control loop keeps
        ticking meanwhile, and the decision is re-validated after the wait
        (the device may have failed or filled up; an aborted add is logged,
        never applied).  At most one add per module is in flight.
        """
        if module_name in self._pending_adds:
            return
        hosts = self._placement.hosts(module_name)
        if len(hosts) >= self.max_replicas:
            return
        module = self._engine.module_specs[module_name]
        problem = self._engine.problem
        live_hosts = [h for h in hosts if h in self._live]
        if not live_hosts:
            return  # churn re-placement, not the autoscaler, owns this
        fastest = min(
            problem.compute_seconds(module, self._cluster.device(h).profile)
            for h in live_hosts
        )
        candidates = [
            name for name in self._cluster.device_names
            if name in self._live and name not in hosts
            and self._cluster.device(name).can_load(module)
            and problem.compute_seconds(module, self._cluster.device(name).profile)
            <= self.scale_up_speed_ratio * fastest
        ]
        if not candidates:
            return
        chosen = min(
            candidates,
            key=lambda name: (
                problem.compute_seconds(module, self._cluster.device(name).profile),
                name,
            ),
        )
        device = self._cluster.device(chosen)
        cost = problem.compute_model.load_seconds(module, device.profile)
        # Amortization gate (the adaptive controller's hysteresis, scaled to
        # the backlog): loading must cost less than the queued work it can
        # relieve, otherwise the burst is over before the replica exists.
        if cost > queued_seconds:
            return
        self._pending_adds.add(module_name)
        detail = f"backlog {pressure:.2f}s/slot > {self.scale_up_backlog_s:.2f}s"
        self._sim.process(
            self._finish_scale_up(module_name, chosen, cost, detail),
            name=f"scale-up:{module_name}@{chosen}",
        )

    def _finish_scale_up(self, module_name: str, chosen: str, cost: float, detail: str):
        """Pay the load time, then install the replica if still valid."""
        sim = self._sim
        device = self._cluster.device(chosen)
        module = self._engine.module_specs[module_name]
        decided_at = sim.now
        try:
            if cost > 0:
                yield sim.timeout(cost)
            if (
                chosen not in self._live
                or not device.can_load(module)
                or chosen in self._placement.hosts(module_name)
                # A churn re-placement during the window may have re-grown
                # the host set (replicate=True deployments) — re-check the
                # cap too.
                or len(self._placement.hosts(module_name)) >= self.max_replicas
            ):
                self._scaling_log.append(
                    ScalingRecord(
                        decided_at, "add", module_name, chosen, cost, False,
                        "aborted: candidate failed or filled up during the load window",
                    )
                )
                return
            device.load(module)
            self._placement = self._placement.with_extra(module_name, chosen)
            self._router.placement = self._placement
            self._scaling_log.append(
                ScalingRecord(decided_at, "add", module_name, chosen, cost, True, detail)
            )
        finally:
            self._pending_adds.discard(module_name)

    def _scale_down(self, module_name: str) -> None:
        """Drop one surplus idle replica (free: unloading is instant).

        Only hosts with an empty micro-batch queue for the module are
        eligible, and at least one **live** host always remains, so no
        queued work is lost and routing never goes dark — the conservation
        guarantee is untouched.  Among eligible hosts the slowest (largest
        planning compute time, name tie-break) is dropped, keeping the
        fast replicas serving.
        """
        hosts = self._placement.hosts(module_name)
        live_hosts = [h for h in hosts if h in self._live]
        if len(hosts) <= 1 or len(live_hosts) <= 1:
            return
        module = self._engine.module_specs[module_name]
        problem = self._engine.problem
        # Eligible victims have an empty micro-batch queue AND no routed
        # work still crossing the uplink toward them (the router's exact
        # in-flight reservation ledger) — dropping a host a job is already
        # headed for would only force a retry and re-pay the transfer.
        droppable = [
            h for h in live_hosts
            if not self._queues.get((module_name, h))
            and self._router.reserved_seconds(h) == 0.0
        ]
        if not droppable:
            return
        # live_hosts has >= 2 members here, so dropping one victim always
        # leaves a live host serving.
        victim = max(
            droppable,
            key=lambda name: (
                problem.compute_seconds(module, self._cluster.device(name).profile),
                name,
            ),
        )
        self._cluster.device(victim).unload(module_name)
        self._placement = Placement(
            {
                name: (tuple(h for h in hs if h != victim) if name == module_name else hs)
                for name, hs in self._placement.as_dict().items()
            }
        )
        self._router.placement = self._placement
        self._scaling_log.append(
            ScalingRecord(
                self._sim.now, "drop", module_name, victim, 0.0, True,
                f"idle for {self.scale_down_idle_rounds} rounds",
            )
        )

    # ==================================================================
    # Energy accounting
    # ==================================================================
    def _charge_radio(self, src: str, dst: str, payload_bytes: int) -> None:
        """Charge per-byte radio joules to both transfer endpoints.

        Co-located hops are free — the same rule as the placement-time
        energy model and ``Network.transfer_seconds``.  Retried transfers
        charge again: the radios really did move the bytes twice.
        """
        if not self.track_energy or src == dst:
            return
        self._radio_joules[src] = self._radio_joules.get(src, 0.0) + (
            resolve_energy_profile(src).transfer_joules(payload_bytes)
        )
        self._radio_joules[dst] = self._radio_joules.get(dst, 0.0) + (
            resolve_energy_profile(dst).transfer_joules(payload_bytes)
        )

    def _energy_report(self) -> EnergyReport:
        """Per-device energy over the run's wall-clock horizon.

        Active time is the union of the device's compute/head spans from
        the execution timeline (overlapping batches on a multi-slot device
        count once); every other second draws ``idle_watts`` — so active +
        idle seconds equal the horizon per device, and the totals are an
        exact integral of the modeled power draw plus the radio ledger.
        """
        horizon = self._sim.now
        intervals: Dict[str, List[Tuple[float, float]]] = {}
        for span in self._cluster.trace.spans:
            if span.category in (CATEGORY_COMPUTE, CATEGORY_HEAD):
                intervals.setdefault(span.device, []).append((span.start, span.end))
        devices = []
        for name in self._cluster.device_names:
            profile = resolve_energy_profile(name)
            active_s = merged_busy_seconds(intervals.get(name, ()), horizon)
            idle_s = max(0.0, horizon - active_s)
            devices.append(
                DeviceEnergy(
                    device=name,
                    active_s=active_s,
                    idle_s=idle_s,
                    active_j=profile.active_watts * active_s,
                    idle_j=profile.idle_watts * idle_s,
                    radio_j=self._radio_joules.get(name, 0.0),
                )
            )
        return EnergyReport(horizon_s=horizon, devices=tuple(devices))

    # ==================================================================
    # Admission helpers
    # ==================================================================
    def _isolated_estimate(self, request: InferenceRequest) -> Optional[float]:
        """Idle-cluster Eq. 1-3 latency under the live fastest-host routing,
        or None while some module has no live host."""
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            candidates = [
                d for d in self._placement.hosts(module_name) if d in self._live
            ]
            if not candidates:
                return None
            hosts[module_name] = min(
                candidates,
                key=lambda d: (self._latency_model.compute_seconds(request, module_name, d), d),
            )
        decision = RoutingDecision(request=request, hosts=hosts)
        return self._latency_model.breakdown(request, self._placement, routing=decision).total

    def _queue_pressure(self, request: InferenceRequest) -> float:
        """Estimated extra wait (s) the live queues add to this request:
        the max over its parallel encoder paths plus the head's wait."""
        decision = self._router(request)
        if decision is None:
            return float("inf")
        encoder_wait = 0.0
        for encoder_name in request.model.encoders:
            host = decision.host_of(encoder_name)
            service = (
                self._latency_model.compute_seconds(request, encoder_name, host)
                * self._slow[host]
            )
            encoder_wait = max(encoder_wait, self._router.estimated_wait(host, service))
        head_name = request.model.head
        head_host = decision.host_of(head_name)
        head_service = (
            self._latency_model.compute_seconds(request, head_name, head_host)
            * self._slow[head_host]
        )
        return encoder_wait + self._router.estimated_wait(head_host, head_service)

    def _remember(self, request: InferenceRequest) -> None:
        self._recent_requests.append(request)
        if len(self._recent_requests) > 4 * self.recent_window:
            del self._recent_requests[: -self.recent_window]

