"""Online serving runtime: dynamic workloads, SLOs, faults, degradation.

The batch experiments evaluate one-shot request sets; this package serves
*streams*.  Compose it from five pieces:

- :class:`WorkloadGenerator` / :class:`ArrivalTrace` — seeded Poisson,
  bursty (MMPP), and diurnal arrival processes over the model catalog.
- :class:`SLOPolicy` — per-request deadlines and admission control.
- :class:`FaultPlan` / :func:`fault_scenario` — typed, seeded fault
  injection: device crash/recover (subsuming the legacy
  :func:`generate_churn` schedules), straggler slowdowns, link
  degradation/cuts, and correlated regional outages.
- :class:`RetryPolicy` / :class:`BrownoutPolicy` — graceful degradation:
  per-attempt timeouts with a bounded retry budget (exhausted requests
  terminate as *timed out*, the report's third terminal state), and
  backlog-pressure admission tiering that sheds the lowest-SLO-slack model
  classes first.
- :class:`ServingRuntime` — drives the serving run with the queue-aware
  router, per-(module, device) micro-batching, SLO admission, and adaptive
  re-placement under faults; returns a :class:`ServingReport` with
  p50/p95/p99 latency, goodput, and SLO attainment.  Two interchangeable
  cores: the vectorized :class:`FlatServingEngine` event loop (default,
  ``engine="flat"``) and the legacy generator-process engine
  (``engine="processes"``) — bit-identical reports either way, faulted
  or not.

Quickstart::

    from repro.serving import (
        BrownoutPolicy, RetryPolicy, ServingRuntime, WorkloadGenerator,
        fault_scenario,
    )

    models = ["clip-vit-b16", "encoder-vqa-small"]
    trace = WorkloadGenerator(models, kind="bursty", rate_rps=0.4,
                              duration_s=60.0, seed=0).generate()
    plan = fault_scenario("regional-outage", duration_s=60.0, seed=0)
    runtime = ServingRuntime(
        models,
        retry=RetryPolicy(timeout_s=8.0, max_retries=4),
        brownout=BrownoutPolicy(),
    )
    report = runtime.run(trace, faults=plan)
    print(report.render())
"""

from repro.serving.churn import FAIL, RECOVER, DeviceChurnEvent, generate_churn
from repro.serving.engine import FlatServingEngine
from repro.serving.faults import (
    BrownoutPolicy,
    FaultEvent,
    FaultPlan,
    compile_faults,
    crash,
    degrade_link,
    regional_outage,
    slowdown,
)
from repro.serving.report import (
    BrownoutRecord,
    ChurnRecord,
    DeviceEnergy,
    EnergyReport,
    MigrationRecord,
    RequestRecord,
    ScalingRecord,
    ServingReport,
)
from repro.serving.runtime import ServingRuntime, StreamingQueueAwareRouter
from repro.serving.scenarios import fault_scenario, scenario_names
from repro.serving.slo import RetryPolicy, SLOPolicy
from repro.serving.workload import WORKLOAD_KINDS, Arrival, ArrivalTrace, WorkloadGenerator

__all__ = [
    "Arrival",
    "ArrivalTrace",
    "BrownoutPolicy",
    "BrownoutRecord",
    "ChurnRecord",
    "DeviceChurnEvent",
    "DeviceEnergy",
    "EnergyReport",
    "FAIL",
    "FaultEvent",
    "FaultPlan",
    "FlatServingEngine",
    "RECOVER",
    "MigrationRecord",
    "RequestRecord",
    "RetryPolicy",
    "ScalingRecord",
    "SLOPolicy",
    "ServingReport",
    "ServingRuntime",
    "StreamingQueueAwareRouter",
    "WORKLOAD_KINDS",
    "WorkloadGenerator",
    "compile_faults",
    "crash",
    "degrade_link",
    "fault_scenario",
    "generate_churn",
    "regional_outage",
    "scenario_names",
    "slowdown",
]
