"""Online serving runtime: dynamic workloads, SLOs, and device churn.

The batch experiments evaluate one-shot request sets; this package serves
*streams*.  Compose it from four pieces:

- :class:`WorkloadGenerator` / :class:`ArrivalTrace` — seeded Poisson,
  bursty (MMPP), and diurnal arrival processes over the model catalog.
- :class:`SLOPolicy` — per-request deadlines and admission control.
- :func:`generate_churn` / :class:`DeviceChurnEvent` — seeded device
  fail/recover schedules.
- :class:`ServingRuntime` — drives the serving run with the queue-aware
  router, per-(module, device) micro-batching, SLO admission, and adaptive
  re-placement under churn; returns a :class:`ServingReport` with
  p50/p95/p99 latency, goodput, and SLO attainment.  Two interchangeable
  cores: the vectorized :class:`FlatServingEngine` event loop (default,
  ``engine="flat"``) and the legacy generator-process engine
  (``engine="processes"``) — bit-identical reports either way.

Quickstart::

    from repro.serving import ServingRuntime, WorkloadGenerator, generate_churn

    models = ["clip-vit-b16", "encoder-vqa-small"]
    trace = WorkloadGenerator(models, kind="bursty", rate_rps=0.4,
                              duration_s=60.0, seed=0).generate()
    churn = generate_churn(["desktop", "laptop", "jetson-b", "jetson-a"],
                           requester="jetson-a", rate_per_s=0.05,
                           duration_s=60.0, seed=0)
    report = ServingRuntime(models).run(trace, churn)
    print(report.render())
"""

from repro.serving.churn import FAIL, RECOVER, DeviceChurnEvent, generate_churn
from repro.serving.engine import FlatServingEngine
from repro.serving.report import (
    ChurnRecord,
    DeviceEnergy,
    EnergyReport,
    MigrationRecord,
    RequestRecord,
    ScalingRecord,
    ServingReport,
)
from repro.serving.runtime import ServingRuntime, StreamingQueueAwareRouter
from repro.serving.slo import SLOPolicy
from repro.serving.workload import WORKLOAD_KINDS, Arrival, ArrivalTrace, WorkloadGenerator

__all__ = [
    "Arrival",
    "ArrivalTrace",
    "ChurnRecord",
    "DeviceChurnEvent",
    "DeviceEnergy",
    "EnergyReport",
    "FAIL",
    "FlatServingEngine",
    "RECOVER",
    "MigrationRecord",
    "RequestRecord",
    "ScalingRecord",
    "SLOPolicy",
    "ServingReport",
    "ServingRuntime",
    "StreamingQueueAwareRouter",
    "WORKLOAD_KINDS",
    "WorkloadGenerator",
    "generate_churn",
]
