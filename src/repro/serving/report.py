"""Serving-run accounting: per-request records and the aggregate report.

Every arrival ends in exactly one of two terminal states — *completed* or
*rejected* — so ``completed + rejected == arrivals`` always holds (the
runtime asserts it; churn retries re-place work, they never drop or
double-count a request).  All latencies are in **seconds** of simulated
time; goodput is SLO-met completions per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.metrics import LatencySummary, summarize_latencies


@dataclass
class RequestRecord:
    """Lifecycle record of one arrival (mutated by the runtime as it serves)."""

    request_id: int
    model_name: str
    arrival_time: float
    slo_s: float = 0.0
    admitted: bool = False
    rejected_reason: Optional[str] = None
    finish_time: Optional[float] = None
    retries: int = 0

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency in seconds (completed requests only)."""
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} did not complete")
        return self.finish_time - self.arrival_time

    @property
    def slo_met(self) -> bool:
        return self.completed and self.latency <= self.slo_s


@dataclass(frozen=True)
class MigrationRecord:
    """One adaptive re-placement performed mid-stream.

    ``time`` is when the migration was *decided* (the triggering churn
    event); the new placement takes effect ``switching_cost_s`` seconds
    later, once the moved modules have reloaded.
    """

    time: float
    reason: str
    switching_cost_s: float


@dataclass(frozen=True)
class ChurnRecord:
    """One churn event as actually applied (or skipped) by the runtime."""

    time: float
    device: str
    kind: str        # "fail" / "recover"
    applied: bool
    detail: str = ""


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving run."""

    workload_kind: str
    duration_s: float
    seed: int
    arrivals: int
    admitted: int
    rejected: int
    completed: int
    slo_met: int
    retries: int
    latency: LatencySummary
    migrations: Tuple[MigrationRecord, ...] = ()
    churn: Tuple[ChurnRecord, ...] = ()
    records: Tuple[RequestRecord, ...] = field(default=(), repr=False)

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span of the run: the arrival window or the last
        completion, whichever is later."""
        return max(self.duration_s, self.latency.makespan)

    @property
    def goodput_rps(self) -> float:
        """SLO-met completions per second of elapsed simulated time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.slo_met / self.elapsed_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of *all* arrivals served within SLO (rejects count as
        misses — shedding load is not free)."""
        if self.arrivals == 0:
            return 1.0
        return self.slo_met / self.arrivals

    @property
    def completion_rate(self) -> float:
        """Fraction of arrivals that were admitted and completed."""
        if self.arrivals == 0:
            return 1.0
        return self.completed / self.arrivals

    def metrics_tuple(self) -> tuple:
        """A hashable digest of every headline metric (determinism tests)."""
        return (
            self.arrivals,
            self.admitted,
            self.rejected,
            self.completed,
            self.slo_met,
            self.retries,
            round(self.latency.mean, 9),
            round(self.latency.p50, 9),
            round(self.latency.p95, 9),
            round(self.latency.p99, 9),
            round(self.latency.makespan, 9),
        )

    def render(self) -> str:
        """Human-readable report for the CLI."""
        lines = [
            f"Online serving report — workload={self.workload_kind} "
            f"duration={self.duration_s:.0f}s seed={self.seed}",
            f"  arrivals:        {self.arrivals}",
            f"  admitted:        {self.admitted}  (rejected {self.rejected})",
            f"  completed:       {self.completed}",
            f"  latency p50:     {self.latency.p50:.3f}s",
            f"  latency p95:     {self.latency.p95:.3f}s",
            f"  latency p99:     {self.latency.p99:.3f}s",
            f"  mean latency:    {self.latency.mean:.3f}s",
            f"  goodput:         {self.goodput_rps:.3f} req/s (SLO-met per second)",
            f"  SLO attainment:  {100.0 * self.slo_attainment:.1f}% "
            f"({self.slo_met}/{self.arrivals} within deadline)",
            f"  churn retries:   {self.retries}",
        ]
        if self.churn:
            applied = sum(1 for record in self.churn if record.applied)
            lines.append(f"  churn events:    {applied} applied, {len(self.churn) - applied} skipped")
            for record in self.churn:
                mark = record.kind if record.applied else f"{record.kind} SKIPPED"
                suffix = f" ({record.detail})" if record.detail else ""
                lines.append(f"    t={record.time:7.2f}s {mark:16s} {record.device}{suffix}")
        if self.migrations:
            lines.append(f"  migrations:      {len(self.migrations)}")
            for migration in self.migrations:
                lines.append(
                    f"    t={migration.time:7.2f}s cost={migration.switching_cost_s:.2f}s "
                    f"{migration.reason}"
                )
        return "\n".join(lines)


def build_report(
    workload_kind: str,
    duration_s: float,
    seed: int,
    records: List[RequestRecord],
    migrations: List[MigrationRecord],
    churn: List[ChurnRecord],
) -> ServingReport:
    """Assemble the aggregate report, enforcing request conservation."""
    unresolved = [r for r in records if not r.completed and r.rejected_reason is None]
    if unresolved:
        ids = [r.request_id for r in unresolved[:5]]
        raise RuntimeError(
            f"{len(unresolved)} request(s) neither completed nor rejected "
            f"(e.g. ids {ids}); the serving run lost work"
        )
    completed = [r for r in records if r.completed]
    latencies = [r.latency for r in completed]
    makespan = max((r.finish_time for r in completed if r.finish_time is not None), default=0.0)
    per_model_counts: Dict[str, int] = {}
    for record in records:
        per_model_counts[record.model_name] = per_model_counts.get(record.model_name, 0) + 1
    return ServingReport(
        workload_kind=workload_kind,
        duration_s=duration_s,
        seed=seed,
        arrivals=len(records),
        admitted=sum(1 for r in records if r.admitted),
        rejected=sum(1 for r in records if r.rejected_reason is not None),
        completed=len(completed),
        slo_met=sum(1 for r in completed if r.slo_met),
        retries=sum(r.retries for r in records),
        latency=summarize_latencies(latencies, makespan=makespan),
        migrations=tuple(migrations),
        churn=tuple(churn),
        records=tuple(records),
    )
