"""Serving-run accounting: per-request records and the aggregate report.

Every arrival ends in exactly one of three terminal states — *completed*,
*rejected*, or *timed out* (its retry budget exhausted under a
:class:`~repro.serving.slo.RetryPolicy`) — so
``completed + rejected + timed_out == arrivals`` always holds (the runtime
asserts it; churn/timeout retries re-place work, they never drop or
double-count a request; without a retry policy ``timed_out`` is always 0
and the invariant reduces to the classic two-state form).  All latencies
are in **seconds** of simulated time; goodput is SLO-met completions per
second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.metrics import LatencySummary, summarize_latencies


@dataclass
class RequestRecord:
    """Lifecycle record of one arrival (mutated by the runtime as it serves)."""

    request_id: int
    model_name: str
    arrival_time: float
    slo_s: float = 0.0
    admitted: bool = False
    rejected_reason: Optional[str] = None
    finish_time: Optional[float] = None
    retries: int = 0
    timed_out: bool = False

    @property
    def completed(self) -> bool:
        return self.finish_time is not None

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency in seconds (completed requests only)."""
        if self.finish_time is None:
            raise ValueError(f"request {self.request_id} did not complete")
        return self.finish_time - self.arrival_time

    @property
    def slo_met(self) -> bool:
        return self.completed and self.latency <= self.slo_s


@dataclass(frozen=True)
class MigrationRecord:
    """One adaptive re-placement performed mid-stream.

    ``time`` is when the migration was *decided* (the triggering churn
    event); the new placement takes effect ``switching_cost_s`` seconds
    later, once the moved modules have reloaded.
    """

    time: float
    reason: str
    switching_cost_s: float


@dataclass(frozen=True)
class ChurnRecord:
    """One churn/fault event as actually applied (or skipped) by the runtime.

    ``device`` is the fault's log label: a device name for device faults,
    ``a<->b`` for link faults.
    """

    time: float
    device: str
    kind: str        # "fail" / "recover" / "slow" / "slow-end" / "link-*"
    applied: bool
    detail: str = ""


@dataclass(frozen=True)
class BrownoutRecord:
    """One brownout-controller level change.

    ``pressure_s`` is the backlog pressure (queued service-seconds per live
    compute slot) that triggered the move; ``shed`` lists the model classes
    rejected at admission while this level holds (lowest SLO slack first).
    """

    time: float
    level: int
    pressure_s: float
    shed: Tuple[str, ...]


@dataclass(frozen=True)
class ScalingRecord:
    """One autoscaler decision: add or drop a replica of one module.

    ``time`` is when the action was *decided* (seconds of simulated time);
    an ``add`` takes effect ``cost_s`` seconds later, once the module's
    weights have loaded on the new host (the same switching-cost accounting
    as churn migrations — drops are free).  ``applied`` is False when the
    action was decided but aborted at apply time (the candidate device
    failed or ran out of memory during the load window).
    """

    time: float
    action: str      # "add" / "drop"
    module: str
    device: str
    cost_s: float
    applied: bool
    detail: str = ""


def merged_busy_seconds(intervals, horizon_s: float) -> float:
    """Total length in seconds of the union of ``(start, end)`` intervals,
    clipped to ``[0, horizon_s]``.

    Overlapping compute spans (a multi-slot device running two batches at
    once) must not double-charge active power — a device is *active* while
    at least one span runs, idle otherwise, so active + idle always equals
    the wall-clock horizon exactly.
    """
    clipped = sorted(
        (max(0.0, start), min(horizon_s, end))
        for start, end in intervals
        if min(horizon_s, end) > max(0.0, start)
    )
    busy = 0.0
    current_start: Optional[float] = None
    current_end = 0.0
    for start, end in clipped:
        if current_start is None or start > current_end:
            if current_start is not None:
                busy += current_end - current_start
            current_start, current_end = start, end
        elif end > current_end:
            current_end = end
    if current_start is not None:
        busy += current_end - current_start
    return busy


@dataclass(frozen=True)
class DeviceEnergy:
    """Energy ledger of one device over a serving run.

    ``active_s`` is the union of the device's compute/head span intervals
    (overlapping batches on a multi-slot device count once); ``idle_s`` is
    the rest of the run's wall-clock horizon, so
    ``active_s + idle_s == horizon_s`` per device.  ``radio_j`` is the
    per-byte transfer energy charged to this device as sender or receiver
    (zero for co-located hops, like the placement-time energy model).
    """

    device: str
    active_s: float
    idle_s: float
    active_j: float
    idle_j: float
    radio_j: float

    @property
    def total_j(self) -> float:
        return self.active_j + self.idle_j + self.radio_j


@dataclass(frozen=True)
class EnergyReport:
    """Cluster-wide energy accounting for one serving run."""

    horizon_s: float
    devices: Tuple[DeviceEnergy, ...]

    @property
    def active_j(self) -> float:
        return sum(d.active_j for d in self.devices)

    @property
    def idle_j(self) -> float:
        return sum(d.idle_j for d in self.devices)

    @property
    def radio_j(self) -> float:
        return sum(d.radio_j for d in self.devices)

    @property
    def total_j(self) -> float:
        return self.active_j + self.idle_j + self.radio_j


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one serving run."""

    workload_kind: str
    duration_s: float
    seed: int
    arrivals: int
    admitted: int
    rejected: int
    completed: int
    slo_met: int
    retries: int
    timed_out: int
    latency: LatencySummary
    migrations: Tuple[MigrationRecord, ...] = ()
    churn: Tuple[ChurnRecord, ...] = ()
    scaling: Tuple[ScalingRecord, ...] = ()
    brownout: Tuple[BrownoutRecord, ...] = ()
    records: Tuple[RequestRecord, ...] = field(default=(), repr=False)
    energy: Optional[EnergyReport] = None

    @property
    def elapsed_s(self) -> float:
        """Wall-clock span of the run: the arrival window or the last
        completion, whichever is later."""
        return max(self.duration_s, self.latency.makespan)

    @property
    def goodput_rps(self) -> float:
        """SLO-met completions per second of elapsed simulated time."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.slo_met / self.elapsed_s

    @property
    def slo_attainment(self) -> float:
        """Fraction of *all* arrivals served within SLO (rejects count as
        misses — shedding load is not free)."""
        if self.arrivals == 0:
            return 1.0
        return self.slo_met / self.arrivals

    @property
    def completion_rate(self) -> float:
        """Fraction of arrivals that were admitted and completed."""
        if self.arrivals == 0:
            return 1.0
        return self.completed / self.arrivals

    @property
    def joules_per_request(self) -> float:
        """Total cluster joules per completed request (0 when untracked or
        nothing completed)."""
        if self.energy is None or self.completed == 0:
            return 0.0
        return self.energy.total_j / self.completed

    @property
    def joules_per_goodput(self) -> float:
        """Energy cost of goodput: total joules per SLO-met completion —
        the battery-life counterpart of ``goodput_rps`` (0 when untracked
        or nothing met its SLO)."""
        if self.energy is None or self.slo_met == 0:
            return 0.0
        return self.energy.total_j / self.slo_met

    def metrics_tuple(self) -> tuple:
        """A hashable digest of every headline metric (determinism tests)."""
        return (
            self.arrivals,
            self.admitted,
            self.rejected,
            self.completed,
            self.slo_met,
            self.retries,
            round(self.latency.mean, 9),
            round(self.latency.p50, 9),
            round(self.latency.p95, 9),
            round(self.latency.p99, 9),
            round(self.latency.makespan, 9),
            self.timed_out,
        )

    def render(self, show_energy: bool = False) -> str:
        """Human-readable report for the CLI (``show_energy`` appends the
        per-device energy ledger when accounting was tracked)."""
        lines = [
            f"Online serving report — workload={self.workload_kind} "
            f"duration={self.duration_s:.0f}s seed={self.seed}",
            f"  arrivals:        {self.arrivals}",
            f"  admitted:        {self.admitted}  (rejected {self.rejected})",
            f"  completed:       {self.completed}",
            f"  latency p50:     {self.latency.p50:.3f}s",
            f"  latency p95:     {self.latency.p95:.3f}s",
            f"  latency p99:     {self.latency.p99:.3f}s",
            f"  mean latency:    {self.latency.mean:.3f}s",
            f"  goodput:         {self.goodput_rps:.3f} req/s (SLO-met per second)",
            f"  SLO attainment:  {100.0 * self.slo_attainment:.1f}% "
            f"({self.slo_met}/{self.arrivals} within deadline)",
            f"  churn retries:   {self.retries}",
        ]
        if self.timed_out:
            lines.append(f"  timed out:       {self.timed_out} (retry budget exhausted)")
        if self.brownout:
            peak = max(record.level for record in self.brownout)
            lines.append(
                f"  brownout:        {len(self.brownout)} level changes (peak level {peak})"
            )
            for record in self.brownout:
                shed = ", ".join(record.shed) if record.shed else "none"
                lines.append(
                    f"    t={record.time:7.2f}s level={record.level} "
                    f"pressure={record.pressure_s:.2f}s shed: {shed}"
                )
        if self.churn:
            applied = sum(1 for record in self.churn if record.applied)
            lines.append(f"  churn events:    {applied} applied, {len(self.churn) - applied} skipped")
            for record in self.churn:
                mark = record.kind if record.applied else f"{record.kind} SKIPPED"
                suffix = f" ({record.detail})" if record.detail else ""
                lines.append(f"    t={record.time:7.2f}s {mark:16s} {record.device}{suffix}")
        if self.migrations:
            lines.append(f"  migrations:      {len(self.migrations)}")
            for migration in self.migrations:
                lines.append(
                    f"    t={migration.time:7.2f}s cost={migration.switching_cost_s:.2f}s "
                    f"{migration.reason}"
                )
        if self.scaling:
            applied = sum(1 for record in self.scaling if record.applied)
            lines.append(
                f"  autoscaling:     {applied} applied, {len(self.scaling) - applied} aborted"
            )
            for record in self.scaling:
                mark = record.action if record.applied else f"{record.action} ABORTED"
                suffix = f" ({record.detail})" if record.detail else ""
                lines.append(
                    f"    t={record.time:7.2f}s {mark:12s} {record.module} @ {record.device} "
                    f"cost={record.cost_s:.2f}s{suffix}"
                )
        if show_energy and self.energy is not None:
            e = self.energy
            lines.append(
                f"  energy:          {e.total_j:.1f} J over {e.horizon_s:.1f}s "
                f"(active {e.active_j:.1f} J, idle {e.idle_j:.1f} J, radio {e.radio_j:.2f} J)"
            )
            lines.append(
                f"  joules/request:  {self.joules_per_request:.1f} J per completion, "
                f"{self.joules_per_goodput:.1f} J per SLO-met"
            )
            for d in e.devices:
                lines.append(
                    f"    {d.device:>12} active {d.active_s:7.2f}s/{d.active_j:9.1f} J  "
                    f"idle {d.idle_s:7.2f}s/{d.idle_j:9.1f} J  "
                    f"radio {d.radio_j:7.3f} J  total {d.total_j:10.1f} J"
                )
        return "\n".join(lines)


def build_report_arrays(
    workload_kind: str,
    duration_s: float,
    seed: int,
    *,
    request_ids: np.ndarray,
    arrival_times: np.ndarray,
    slo_s: np.ndarray,
    admitted: np.ndarray,
    finish_times: np.ndarray,
    retries: np.ndarray,
    rejected: np.ndarray,
    migrations: Sequence[MigrationRecord],
    churn: Sequence[ChurnRecord],
    energy: Optional[EnergyReport] = None,
    scaling: Optional[Sequence[ScalingRecord]] = None,
    brownout: Optional[Sequence[BrownoutRecord]] = None,
    timed_out: Optional[np.ndarray] = None,
    records: Tuple[RequestRecord, ...] = (),
) -> ServingReport:
    """Assemble the report from per-request columns, enforcing conservation.

    The vectorized aggregation core shared by both serving engines:
    ``finish_times`` uses NaN for "never completed", ``rejected`` is the
    boolean rejection mask, ``timed_out`` is the retry-budget-exhausted
    mask (``None`` means no retry policy: all False), and every aggregate
    (counts, SLO attainment, latency percentiles, makespan) is computed
    with numpy array ops instead of per-record Python loops.  ``records``
    only rides along into the report (empty when the caller dropped them
    to save memory).
    """
    completed_mask = ~np.isnan(finish_times)
    if timed_out is None:
        timed_out = np.zeros(len(arrival_times), dtype=bool)
    unresolved_mask = ~completed_mask & ~rejected & ~timed_out
    if unresolved_mask.any():
        ids = [int(i) for i in request_ids[unresolved_mask][:5]]
        raise RuntimeError(
            f"{int(np.count_nonzero(unresolved_mask))} request(s) neither completed, "
            f"rejected, nor timed out (e.g. ids {ids}); the serving run lost work"
        )
    latencies = finish_times[completed_mask] - arrival_times[completed_mask]
    completed = int(np.count_nonzero(completed_mask))
    makespan = float(finish_times[completed_mask].max()) if completed else 0.0
    return ServingReport(
        workload_kind=workload_kind,
        duration_s=duration_s,
        seed=seed,
        arrivals=len(arrival_times),
        admitted=int(np.count_nonzero(admitted)),
        rejected=int(np.count_nonzero(rejected)),
        completed=completed,
        slo_met=int(np.count_nonzero(latencies <= slo_s[completed_mask])),
        retries=int(retries.sum()),
        timed_out=int(np.count_nonzero(timed_out)),
        latency=summarize_latencies(latencies, makespan=makespan),
        migrations=tuple(migrations),
        churn=tuple(churn),
        scaling=tuple(scaling or ()),
        brownout=tuple(brownout or ()),
        records=records,
        energy=energy,
    )


def build_report(
    workload_kind: str,
    duration_s: float,
    seed: int,
    records: List[RequestRecord],
    migrations: List[MigrationRecord],
    churn: List[ChurnRecord],
    energy: Optional[EnergyReport] = None,
    scaling: Optional[List[ScalingRecord]] = None,
    brownout: Optional[List[BrownoutRecord]] = None,
    keep_records: bool = True,
) -> ServingReport:
    """Assemble the aggregate report from :class:`RequestRecord` objects.

    Extracts the per-request columns once and delegates to
    :func:`build_report_arrays`, so record-based (legacy engine) and
    column-based (flat engine) runs aggregate through the same numpy code.
    ``keep_records=False`` drops the per-request records from the report
    (the aggregates are already computed) for memory-bound large runs.
    """
    n = len(records)
    return build_report_arrays(
        workload_kind,
        duration_s,
        seed,
        request_ids=np.fromiter((r.request_id for r in records), dtype=np.int64, count=n),
        arrival_times=np.fromiter(
            (r.arrival_time for r in records), dtype=np.float64, count=n
        ),
        slo_s=np.fromiter((r.slo_s for r in records), dtype=np.float64, count=n),
        admitted=np.fromiter((r.admitted for r in records), dtype=bool, count=n),
        finish_times=np.fromiter(
            (np.nan if r.finish_time is None else r.finish_time for r in records),
            dtype=np.float64,
            count=n,
        ),
        retries=np.fromiter((r.retries for r in records), dtype=np.int64, count=n),
        rejected=np.fromiter(
            (r.rejected_reason is not None for r in records), dtype=bool, count=n
        ),
        migrations=migrations,
        churn=churn,
        energy=energy,
        scaling=scaling,
        brownout=brownout,
        timed_out=np.fromiter((r.timed_out for r in records), dtype=bool, count=n),
        records=tuple(records) if keep_records else (),
    )
