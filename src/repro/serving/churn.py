"""Device-churn schedules for the serving runtime.

The batch churn study (:mod:`repro.core.placement.adaptive`) replays pool
*snapshots*; online serving needs *deltas* — "at t=12.4s the laptop fails",
"at t=31.0s it comes back" — interleaved with live traffic.  This module
generates seeded, deterministic fail/recover event sequences.

Rules baked into the generator:

- the requester device never fails (it holds the input data);
- a device must be live to fail and failed to recover;
- at least ``min_live`` devices stay up at any time.

Feasibility of the *placement* after a failure (can the remaining pool still
host every module?) is checked by the runtime at application time — an
infeasible failure is skipped and recorded, never silently applied.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.utils.seeding import rng_for

#: Event kinds.
FAIL = "fail"
RECOVER = "recover"


@dataclass(frozen=True)
class DeviceChurnEvent:
    """One availability delta at ``time`` (seconds): ``device`` fails or recovers."""

    time: float
    device: str
    kind: str  # FAIL or RECOVER

    def __post_init__(self) -> None:
        if self.kind not in (FAIL, RECOVER):
            raise ValueError(f"kind must be {FAIL!r} or {RECOVER!r}, got {self.kind!r}")
        if not isinstance(self.time, (int, float)) or not math.isfinite(self.time):
            raise ValueError(f"time must be a finite number, got {self.time!r}")
        if self.time < 0:
            raise ValueError(f"time must be non-negative, got {self.time}")
        if not self.device:
            raise ValueError("device name must be non-empty")


def generate_churn(
    device_names: Sequence[str],
    requester: str,
    rate_per_s: float,
    duration_s: float,
    seed: int = 0,
    min_live: int = 2,
) -> Tuple[DeviceChurnEvent, ...]:
    """A Poisson stream of fail/recover events at ``rate_per_s`` events/second.

    Deterministic for a given ``seed``.  Returns an empty tuple when
    ``rate_per_s`` is 0.  Raises :class:`ValueError` for a negative rate.
    """
    if not math.isfinite(rate_per_s):
        raise ValueError(f"rate_per_s must be finite, got {rate_per_s}")
    if rate_per_s < 0:
        raise ValueError(f"rate_per_s must be non-negative, got {rate_per_s}")
    if rate_per_s == 0:
        return ()
    if not math.isfinite(duration_s):
        raise ValueError(f"duration_s must be finite, got {duration_s}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    rng = rng_for("serving-churn", seed)
    live = [name for name in device_names]
    failed: List[str] = []
    events: List[DeviceChurnEvent] = []
    now = 0.0
    while True:
        now += float(rng.exponential(1.0 / rate_per_s))
        if now >= duration_s:
            return tuple(events)
        can_fail = [name for name in live if name != requester] if len(live) > min_live else []
        can_recover = list(failed)
        if not can_fail and not can_recover:
            continue
        # Prefer recovery half the time when both moves are possible so the
        # pool oscillates instead of draining to the floor and staying there.
        if can_fail and (not can_recover or float(rng.uniform()) < 0.5):
            device = can_fail[int(rng.integers(len(can_fail)))]
            live.remove(device)
            failed.append(device)
            events.append(DeviceChurnEvent(time=now, device=device, kind=FAIL))
        else:
            device = can_recover[int(rng.integers(len(can_recover)))]
            failed.remove(device)
            live.append(device)
            events.append(DeviceChurnEvent(time=now, device=device, kind=RECOVER))
