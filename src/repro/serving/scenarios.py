"""Named, seeded fault scenarios for resilience studies.

Each scenario is a parameterized recipe that expands to a concrete
:class:`~repro.serving.faults.FaultPlan` for a given run duration and seed
— the serving CLI's ``--faults <name>`` flag and the resilience benchmark
both draw from this registry, so a scenario name in a report or a CI log
always means the same schedule.

Timing is anchored to fractions of the run and jittered by a seeded RNG
(:func:`~repro.utils.seeding.rng_for`), so different seeds probe different
alignments of fault onset against the workload while the same seed always
reproduces the same plan.  Every scenario keeps the pool feasible
(the requester never fails; cut links are always restored), which the
plan-level validation enforces again at ``run`` time.

Scenarios (all on the paper's four-device testbed):

- ``regional-outage`` — the wired-PAN region (desktop + jetson-b) fails
  mid-run and recovers later: correlated crash, forced migration onto the
  two survivors, recovery migration back.
- ``flash-crowd-stragglers`` — no devices die, but the two fastest hosts
  (desktop, laptop) straggle in staggered windows (thermal throttling /
  co-tenant interference), so routing and batching must price degraded
  speeds while deadlines stay nominal.
- ``flaky-links`` — bandwidth collapses on the laptop and jetson-b uplinks
  in overlapping windows, plus a brief full cut of the desktop link that
  partitions it away from the requester until the link heals.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.serving.faults import (
    FaultEvent,
    FaultPlan,
    degrade_link,
    regional_outage,
    slowdown,
)
from repro.utils.seeding import rng_for

#: Scenario registry: name -> builder(duration_s, seed) -> event list.
_BUILDERS: Dict[str, Callable[[float, int], List[FaultEvent]]] = {}


def _scenario(name: str):
    def register(fn: Callable[[float, int], List[FaultEvent]]):
        _BUILDERS[name] = fn
        return fn

    return register


def _jitter(rng, lo: float, hi: float) -> float:
    """A seeded draw in [lo, hi) — scenario-time anchors wiggle with the
    seed but never reorder (the windows below keep disjoint ranges)."""
    return float(rng.uniform(lo, hi))


@_scenario("regional-outage")
def _regional_outage(duration_s: float, seed: int) -> List[FaultEvent]:
    rng = rng_for("scenario-regional-outage", seed)
    start = _jitter(rng, 0.20, 0.30) * duration_s
    end = _jitter(rng, 0.60, 0.70) * duration_s
    return regional_outage(
        ["desktop", "jetson-b"], start=start, end=end, region="wired-pan"
    )


@_scenario("flash-crowd-stragglers")
def _flash_crowd_stragglers(duration_s: float, seed: int) -> List[FaultEvent]:
    rng = rng_for("scenario-flash-crowd-stragglers", seed)
    events: List[FaultEvent] = []
    # Staggered straggler windows on the two fastest devices; factors are
    # jittered so seeds probe mild-through-severe interference.
    d_start = _jitter(rng, 0.10, 0.20) * duration_s
    d_end = _jitter(rng, 0.55, 0.65) * duration_s
    events += slowdown("desktop", factor=_jitter(rng, 3.0, 5.0), start=d_start, end=d_end)
    l_start = _jitter(rng, 0.30, 0.40) * duration_s
    l_end = _jitter(rng, 0.75, 0.85) * duration_s
    events += slowdown("laptop", factor=_jitter(rng, 2.0, 4.0), start=l_start, end=l_end)
    return events


@_scenario("flaky-links")
def _flaky_links(duration_s: float, seed: int) -> List[FaultEvent]:
    rng = rng_for("scenario-flaky-links", seed)
    events: List[FaultEvent] = []
    # Two overlapping bandwidth collapses on the wireless uplinks...
    events += degrade_link(
        "laptop", "pan-router", factor=_jitter(rng, 0.05, 0.15),
        start=_jitter(rng, 0.10, 0.20) * duration_s,
        end=_jitter(rng, 0.50, 0.60) * duration_s,
    )
    events += degrade_link(
        "jetson-b", "pan-router", factor=_jitter(rng, 0.10, 0.25),
        start=_jitter(rng, 0.25, 0.35) * duration_s,
        end=_jitter(rng, 0.65, 0.75) * duration_s,
    )
    # ...plus a brief full cut that partitions the desktop off the PAN.
    cut_start = _jitter(rng, 0.40, 0.45) * duration_s
    cut_end = cut_start + _jitter(rng, 0.10, 0.15) * duration_s
    events += degrade_link("desktop", "pan-router", factor=0.0, start=cut_start, end=cut_end)
    return events


def scenario_names() -> List[str]:
    """Registered scenario names, sorted (CLI choices, benchmark rows)."""
    return sorted(_BUILDERS)


def fault_scenario(name: str, duration_s: float, seed: int = 0) -> FaultPlan:
    """Expand a named scenario into a concrete validated :class:`FaultPlan`.

    Raises :class:`ValueError` for an unknown name or a non-positive
    duration.  Same ``(name, duration_s, seed)`` ⇒ identical plan.
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown fault scenario {name!r}; available: {scenario_names()}"
        )
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    return FaultPlan.ordered(builder(duration_s, seed))
