"""Typed, seeded fault injection for the serving runtime.

:class:`FaultPlan` generalizes the binary fail/recover churn of
:mod:`repro.serving.churn` into a validated schedule of **fault events**
that both serving engines inject identically (the bit-identical
:class:`~repro.serving.report.ServingReport` contract extends to faulted
runs):

- ``fail`` / ``recover`` — device crash/comeback, exactly today's
  :class:`~repro.serving.churn.DeviceChurnEvent` semantics (feasibility
  probe, queue flush, adaptive re-placement with switching cost);
- ``slow`` / ``slow-end`` — a *straggler* window: the device's compute
  service times are multiplied by ``factor`` (> 1 slows, < 1 speeds up)
  until the matching ``slow-end``.  Routing, wait estimates, and the
  micro-batcher all price the degraded speed; SLO deadlines keep using the
  *nominal* hardware (a straggler does not earn its requests longer
  deadlines);
- ``link-degrade`` / ``link-restore`` — one network link's bandwidth is
  scaled by ``factor`` (``0 < factor < 1``), or **cut** entirely
  (``factor == 0``), repriced through
  :meth:`~repro.cluster.network.Network.degrade_link`.  A cut that
  disconnects devices from the requester *partitions* them: they leave the
  routable pool exactly like failed devices (queues flushed, in-flight work
  lost, re-placement triggered) and rejoin when connectivity returns;
- a **regional outage** is a correlated group of ``fail`` events carrying a
  shared ``region`` tag (see :func:`regional_outage`).

All times are **seconds** of simulated time.  Validation is strict and
front-loaded: malformed events (negative/NaN times, unknown kinds, bad
factors) raise at construction, an unsorted plan raises at construction,
and unknown device/link names raise in :meth:`ServingRuntime.run
<repro.serving.runtime.ServingRuntime.run>` before any serving starts —
never silently applied or dropped.

Graceful-degradation policies ride alongside the plan:
:class:`~repro.serving.slo.RetryPolicy` (per-attempt timeout + bounded
retries + exponential backoff; exhausted requests terminate as
``timed_out``) and :class:`BrownoutPolicy` (backlog-pressure admission
tiering: shed the lowest-SLO-slack model classes first instead of
collapsing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.serving.churn import FAIL, RECOVER, DeviceChurnEvent

#: Fault-event kinds (``FAIL``/``RECOVER`` are re-used from churn).
SLOW = "slow"
SLOW_END = "slow-end"
LINK_DEGRADE = "link-degrade"
LINK_RESTORE = "link-restore"

#: Kinds that target a device, and kinds that target a link.
DEVICE_KINDS = (FAIL, RECOVER, SLOW, SLOW_END)
LINK_KINDS = (LINK_DEGRADE, LINK_RESTORE)
ALL_KINDS = DEVICE_KINDS + LINK_KINDS


def _check_time(time: float) -> None:
    if not isinstance(time, (int, float)) or not math.isfinite(time):
        raise ValueError(f"fault time must be a finite number, got {time!r}")
    if time < 0:
        raise ValueError(f"fault time must be non-negative, got {time}")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault at ``time`` (seconds of simulated time).

    Exactly one of ``device`` (for :data:`DEVICE_KINDS`) or ``link`` (for
    :data:`LINK_KINDS`, as an endpoint pair) is set.  ``factor`` is the
    compute-time multiplier for ``slow`` (finite, > 0) or the bandwidth
    multiplier for ``link-degrade`` (``0 <= factor < 1``; ``0`` cuts the
    link).  ``region`` optionally tags correlated events (regional outages)
    for the churn log.
    """

    time: float
    kind: str
    device: Optional[str] = None
    link: Optional[Tuple[str, str]] = None
    factor: float = 1.0
    region: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {ALL_KINDS}"
            )
        _check_time(self.time)
        if self.kind in DEVICE_KINDS:
            if not self.device or self.link is not None:
                raise ValueError(
                    f"{self.kind!r} fault at t={self.time} must name a device "
                    "(and no link)"
                )
        else:
            if self.link is None or self.device is not None:
                raise ValueError(
                    f"{self.kind!r} fault at t={self.time} must name a link "
                    "endpoint pair (and no device)"
                )
            a, b = self.link
            if not a or not b or a == b:
                raise ValueError(f"link fault at t={self.time} needs two distinct endpoints")
        if self.kind == SLOW:
            if not math.isfinite(self.factor) or self.factor <= 0:
                raise ValueError(
                    f"slow factor must be finite and positive, got {self.factor}"
                )
        if self.kind == LINK_DEGRADE:
            if not math.isfinite(self.factor) or not 0.0 <= self.factor < 1.0:
                raise ValueError(
                    f"link-degrade factor must be in [0, 1), got {self.factor} "
                    "(0 cuts the link; use link-restore to undo)"
                )

    @property
    def label(self) -> str:
        """The log label: the device name, or ``a<->b`` for link events."""
        if self.device is not None:
            return self.device
        a, b = self.link  # type: ignore[misc]
        return f"{a}<->{b}"


def _sort_key(event: FaultEvent) -> Tuple[float, str]:
    return (event.time, event.label)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, time-sorted schedule of :class:`FaultEvent`.

    The constructor is strict: events must already be sorted by time
    (non-decreasing) — an unsorted plan raises :class:`ValueError` rather
    than being silently reordered.  Use :meth:`ordered` to build a plan
    from builder output in any order.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        for earlier, later in zip(events, events[1:]):
            if later.time < earlier.time:
                raise ValueError(
                    f"fault plan is not sorted by time: {later.kind!r} at "
                    f"t={later.time} follows t={earlier.time}; sort events "
                    "(or build via FaultPlan.ordered)"
                )

    @classmethod
    def ordered(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        """Build a plan from events in any order (stable (time, label) sort)."""
        return cls(tuple(sorted(events, key=_sort_key)))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def validate_for(
        self,
        device_names: Sequence[str],
        network=None,
    ) -> None:
        """Check every event against the serving pool before the run starts.

        Unknown device names raise :class:`ValueError`; with ``network``
        given, link events must name an existing topology edge.  A plan
        that cuts a link and never restores it also raises — it could
        strand requests waiting forever on a partition that never heals.
        """
        known = set(device_names)
        open_cuts = {}
        for event in self.events:
            if event.kind in DEVICE_KINDS:
                if event.device not in known:
                    raise ValueError(
                        f"fault plan names unknown device {event.device!r} "
                        f"(pool: {sorted(known)})"
                    )
            else:
                a, b = event.link  # type: ignore[misc]
                if network is not None and not network.has_link(a, b):
                    raise ValueError(
                        f"fault plan names unknown link {a!r} <-> {b!r}"
                    )
                key = (a, b) if a <= b else (b, a)
                if event.kind == LINK_DEGRADE and event.factor == 0.0:
                    open_cuts[key] = event.time
                elif event.kind == LINK_RESTORE or (
                    event.kind == LINK_DEGRADE and event.factor > 0.0
                ):
                    open_cuts.pop(key, None)
        if open_cuts:
            (a, b), when = next(iter(sorted(open_cuts.items())))
            raise ValueError(
                f"link {a!r} <-> {b!r} is cut at t={when} and never restored; "
                "a permanent partition can strand requests — add a "
                "link-restore event"
            )


def compile_faults(
    faults: Optional[FaultPlan],
    churn_events: Iterable[DeviceChurnEvent] = (),
) -> Tuple[FaultEvent, ...]:
    """Merge a fault plan with legacy churn events into one sorted stream.

    Churn events are converted to fail/recover :class:`FaultEvent` and
    sorted by ``(time, device)`` exactly like the runtime always has; plan
    events merge in by the same stable ``(time, label)`` key.
    """
    converted = [
        FaultEvent(time=e.time, kind=e.kind, device=e.device)
        for e in churn_events
    ]
    plan_events = list(faults.events) if faults is not None else []
    if not plan_events:
        return tuple(sorted(converted, key=_sort_key))
    return tuple(sorted(converted + plan_events, key=_sort_key))


# ======================================================================
# Builders (convenience constructors for common fault shapes)
# ======================================================================
def crash(device: str, at: float, until: Optional[float] = None) -> List[FaultEvent]:
    """A device crash at ``at``, optionally recovering at ``until``."""
    events = [FaultEvent(time=at, kind=FAIL, device=device)]
    if until is not None:
        if until <= at:
            raise ValueError(f"recovery time {until} must be after crash time {at}")
        events.append(FaultEvent(time=until, kind=RECOVER, device=device))
    return events


def slowdown(device: str, factor: float, start: float, end: float) -> List[FaultEvent]:
    """A straggler window: ``device`` computes ``factor``x slower in [start, end)."""
    if end <= start:
        raise ValueError(f"slowdown window must have end > start, got [{start}, {end})")
    return [
        FaultEvent(time=start, kind=SLOW, device=device, factor=factor),
        FaultEvent(time=end, kind=SLOW_END, device=device),
    ]


def degrade_link(
    a: str, b: str, factor: float, start: float, end: Optional[float] = None
) -> List[FaultEvent]:
    """Scale one link's bandwidth by ``factor`` from ``start``; ``factor=0``
    cuts the link (then ``end`` is required — permanent cuts are invalid)."""
    events = [FaultEvent(time=start, kind=LINK_DEGRADE, link=(a, b), factor=factor)]
    if end is not None:
        if end <= start:
            raise ValueError(f"link window must have end > start, got [{start}, {end})")
        events.append(FaultEvent(time=end, kind=LINK_RESTORE, link=(a, b)))
    return events


def regional_outage(
    devices: Sequence[str],
    start: float,
    end: Optional[float] = None,
    region: str = "region",
) -> List[FaultEvent]:
    """A correlated outage: every device in the group fails at ``start``
    (tagged with ``region`` in the churn log) and recovers at ``end``."""
    if not devices:
        raise ValueError("regional outage needs at least one device")
    events = [
        FaultEvent(time=start, kind=FAIL, device=name, region=region)
        for name in devices
    ]
    if end is not None:
        if end <= start:
            raise ValueError(f"outage window must have end > start, got [{start}, {end})")
        events.extend(
            FaultEvent(time=end, kind=RECOVER, device=name, region=region)
            for name in devices
        )
    return events


# ======================================================================
# Brownout
# ======================================================================
@dataclass(frozen=True)
class BrownoutPolicy:
    """Backlog-pressure admission tiering: degrade before collapsing.

    A periodic controller (every ``interval_s`` simulated seconds) reads
    cluster *pressure* — queued-but-unstarted service-seconds per live
    compute slot — and moves a shed **level** up or down with hysteresis:
    above ``high_backlog_s`` the level rises by one, at or below
    ``low_backlog_s`` it falls by one.  Level ``L`` sheds arrivals of the
    ``L`` model classes with the smallest SLO slack (deadline minus
    isolated latency on the fresh deployment — the classes most likely to
    miss anyway), rejecting them at admission with a brownout reason.  At
    least one class always stays admitted: the level is capped at
    ``n_models - 1`` (and at ``max_level`` when set), so a brownout tiers
    service down instead of hard-rejecting everything.  Every level change
    is logged as a :class:`~repro.serving.report.BrownoutRecord`.
    """

    interval_s: float = 0.5
    high_backlog_s: float = 2.0
    low_backlog_s: float = 0.5
    max_level: Optional[int] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.interval_s) or self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        if not math.isfinite(self.high_backlog_s) or self.high_backlog_s <= 0:
            raise ValueError(f"high_backlog_s must be positive, got {self.high_backlog_s}")
        if not math.isfinite(self.low_backlog_s) or self.low_backlog_s < 0:
            raise ValueError(f"low_backlog_s must be non-negative, got {self.low_backlog_s}")
        if self.low_backlog_s >= self.high_backlog_s:
            raise ValueError(
                f"hysteresis requires low_backlog_s < high_backlog_s, got "
                f"{self.low_backlog_s} >= {self.high_backlog_s}"
            )
        if self.max_level is not None and self.max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {self.max_level}")
