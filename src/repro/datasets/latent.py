"""The latent-concept generative model behind all synthetic benchmarks.

A :class:`LatentConceptSpace` defines:

- ``latent_dim``-dimensional unit-norm class prototypes;
- a fixed random linear *render* per modality (image, audio) mapping
  latents to observation space — the synthetic stand-in for "how the world
  depicts a concept";
- deterministic token sequences per class — the stand-in for class names
  and prompts.

Encoders are *pretrained* against the renders (not against any benchmark):
:mod:`repro.models.weights` fits each encoder's output projection to
recover latents from rendered observations, mirroring how CLIP-style
pretraining aligns modalities in a shared embedding space.  Benchmarks then
only choose class counts and observation noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Tuple

import numpy as np

from repro.utils.seeding import rng_for

#: Shared embedding-space dimensionality (CLIP's 512, scaled down).
LATENT_DIM = 16
#: Synthetic image shape (C, H, W).
IMAGE_SHAPE: Tuple[int, int, int] = (3, 24, 24)
#: Synthetic audio clip length (a pooled log-mel vector).
AUDIO_DIM = 256
#: Token vocabulary for synthetic text.
VOCAB_SIZE = 512
#: Tokens per class-name prompt (= latent_dim / 2: each token encodes a
#: quantized pair of latent dimensions).
TOKENS_PER_PROMPT = 8
#: Quantization bins per latent dimension in the text codebook.
_TEXT_BINS = 22


@dataclass(frozen=True)
class LatentConceptSpace:
    """A world of ``num_classes`` concepts with multi-modal renders."""

    num_classes: int
    latent_dim: int = LATENT_DIM
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")

    # ------------------------------------------------------------------
    # Prototypes and renders (deterministic in the space's seed)
    # ------------------------------------------------------------------
    @cached_property
    def class_latents(self) -> np.ndarray:
        """(num_classes, latent_dim) unit-norm prototypes."""
        rng = rng_for("class-latents", self.num_classes, base_seed=self.seed)
        latents = rng.normal(size=(self.num_classes, self.latent_dim))
        return latents / np.linalg.norm(latents, axis=1, keepdims=True)

    @cached_property
    def image_render(self) -> np.ndarray:
        """(image_pixels, latent_dim) render matrix, shared by ALL spaces.

        The render is seeded independently of the class count so encoders
        pretrained against it generalize across benchmarks — like a real
        vision encoder that never saw the benchmark's label set.
        """
        rng = rng_for("image-render", self.latent_dim)
        pixels = int(np.prod(IMAGE_SHAPE))
        return rng.normal(0.0, 1.0, size=(pixels, self.latent_dim)) / np.sqrt(self.latent_dim)

    @cached_property
    def audio_render(self) -> np.ndarray:
        """(AUDIO_DIM, latent_dim) render matrix for the audio modality."""
        rng = rng_for("audio-render", self.latent_dim)
        return rng.normal(0.0, 1.0, size=(AUDIO_DIM, self.latent_dim)) / np.sqrt(self.latent_dim)

    # ------------------------------------------------------------------
    # Observation synthesis
    # ------------------------------------------------------------------
    def render_image(self, latent: np.ndarray) -> np.ndarray:
        """Render a latent to an image of :data:`IMAGE_SHAPE`."""
        flat = self.image_render @ latent
        return flat.reshape(IMAGE_SHAPE)

    def render_audio(self, latent: np.ndarray) -> np.ndarray:
        """Render a latent to an audio clip vector."""
        return self.audio_render @ latent

    def sample_image(
        self,
        class_index: int,
        noise: float,
        rng: np.random.Generator,
        pixel_noise: float = 0.0,
    ) -> np.ndarray:
        """A noisy image of class ``class_index``.

        ``noise`` perturbs the latent (class confusability — hurts every
        model equally); ``pixel_noise`` perturbs the observation (sensor
        noise — larger encoders average it out better, which is what
        separates ViT-L from ViT-B in the accuracy tables).
        """
        latent = self.noisy_latent(class_index, noise, rng)
        image = self.render_image(latent)
        if pixel_noise > 0:
            image = image + rng.normal(0.0, pixel_noise, size=image.shape)
        return image

    def sample_audio(
        self,
        class_index: int,
        noise: float,
        rng: np.random.Generator,
        pixel_noise: float = 0.0,
    ) -> np.ndarray:
        """A noisy audio clip of class ``class_index``."""
        latent = self.noisy_latent(class_index, noise, rng)
        clip = self.render_audio(latent)
        if pixel_noise > 0:
            clip = clip + rng.normal(0.0, pixel_noise, size=clip.shape)
        return clip

    def noisy_latent(self, class_index: int, noise: float, rng: np.random.Generator) -> np.ndarray:
        """Class prototype plus isotropic latent noise."""
        self._check_class(class_index)
        perturbation = rng.normal(0.0, noise / np.sqrt(self.latent_dim), size=self.latent_dim)
        return self.class_latents[class_index] + perturbation

    # ------------------------------------------------------------------
    # Text
    # ------------------------------------------------------------------
    def tokens_from_latent(self, latent: np.ndarray) -> np.ndarray:
        """Deterministically 'verbalize' a latent as a token sequence.

        Pairs of latent dimensions are tanh-squashed and quantized into a
        2-D codebook (22 x 22 = 484 < VOCAB_SIZE codes).  Because the map
        is a fixed function of the latent — not of any benchmark — a text
        encoder pretrained on (tokens, latent) pairs generalizes across
        class sets, like a real language tower.
        """
        if latent.shape != (self.latent_dim,):
            raise ValueError(f"latent must have shape ({self.latent_dim},)")
        bins = _TEXT_BINS
        squashed = np.tanh(latent * 1.5)  # -> (-1, 1)
        quantized = np.clip(((squashed + 1.0) / 2.0 * bins).astype(int), 0, bins - 1)
        pairs = quantized.reshape(TOKENS_PER_PROMPT, 2)
        return pairs[:, 0] * bins + pairs[:, 1]

    def latent_from_tokens(self, tokens: np.ndarray) -> np.ndarray:
        """Approximate inverse of :meth:`tokens_from_latent` (bin centers)."""
        bins = _TEXT_BINS
        pairs = np.stack([tokens // bins, tokens % bins], axis=1).reshape(-1)
        centers = (pairs + 0.5) / bins * 2.0 - 1.0
        return np.arctanh(np.clip(centers, -0.999, 0.999)) / 1.5

    def tokens_for_class(self, class_index: int) -> np.ndarray:
        """Token sequence for class ``class_index``'s name."""
        self._check_class(class_index)
        return self.tokens_from_latent(self.class_latents[class_index])

    def prompt_set(self) -> np.ndarray:
        """(num_classes, TOKENS_PER_PROMPT) — the zero-shot prompt set."""
        return np.stack([self.tokens_for_class(c) for c in range(self.num_classes)])

    def question_tokens(self, question_id: int) -> np.ndarray:
        """A deterministic question token sequence (for VQA)."""
        rng = rng_for("question-tokens", self.seed, question_id)
        return rng.integers(0, VOCAB_SIZE, size=TOKENS_PER_PROMPT)

    def _check_class(self, class_index: int) -> None:
        if not 0 <= class_index < self.num_classes:
            raise IndexError(f"class {class_index} out of range [0, {self.num_classes})")
