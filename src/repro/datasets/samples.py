"""Sample dataclasses for the synthetic benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClassificationSample:
    """An image with its ground-truth class."""

    image: np.ndarray
    label: int


@dataclass(frozen=True)
class RetrievalSample:
    """An image to match against the benchmark's class-prompt set."""

    image: np.ndarray
    label: int


@dataclass(frozen=True)
class VQASample:
    """An image + question; the answer indexes the answer vocabulary."""

    image: np.ndarray
    question_tokens: np.ndarray
    answer: int


@dataclass(frozen=True)
class AlignmentSample:
    """Co-occurring multi-modal observations of one concept."""

    image: np.ndarray
    audio: np.ndarray
    text_tokens: np.ndarray
    label: int


@dataclass(frozen=True)
class CaptioningSample:
    """An image whose caption is its concept's token sequence."""

    image: np.ndarray
    caption_tokens: np.ndarray
    label: int
