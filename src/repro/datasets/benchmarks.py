"""The ten evaluation benchmarks as synthetic generators.

Each benchmark fixes a class count (matching the real dataset) and an
observation-noise level (tuned so the default models score near the paper's
Table VIII).  Generation is fully deterministic given (benchmark, split,
seed); see DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.tasks import Task
from repro.datasets.latent import LatentConceptSpace
from repro.datasets.samples import (
    AlignmentSample,
    CaptioningSample,
    ClassificationSample,
    RetrievalSample,
    VQASample,
)
from repro.utils.errors import ConfigurationError
from repro.utils.seeding import rng_for


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: class count + noise + the task it evaluates."""

    name: str
    display_name: str
    task: Task
    num_classes: int
    noise: float
    pixel_noise: float = 0.0
    default_samples: int = 200

    def space(self) -> LatentConceptSpace:
        """The benchmark's concept space (classes are benchmark-specific)."""
        return LatentConceptSpace(num_classes=self.num_classes, seed=_SPACE_SEEDS[self.name])


#: Per-benchmark seeds keep class sets distinct across benchmarks.
_SPACE_SEEDS: Dict[str, int] = {}


def _register(specs: Sequence[BenchmarkSpec]) -> Dict[str, BenchmarkSpec]:
    table = {}
    for index, spec in enumerate(specs):
        table[spec.name] = spec
        _SPACE_SEEDS[spec.name] = 1000 + index
    return table


#: Class counts follow the real datasets; noise is the tuned difficulty.
BENCHMARKS: Dict[str, BenchmarkSpec] = _register(
    [
        BenchmarkSpec("food-101", "Food-101", Task.IMAGE_TEXT_RETRIEVAL, 101, noise=0.30, pixel_noise=0.25),
        BenchmarkSpec("cifar-10", "CIFAR-10", Task.IMAGE_TEXT_RETRIEVAL, 10, noise=0.70, pixel_noise=0.28),
        BenchmarkSpec("cifar-100", "CIFAR-100", Task.IMAGE_TEXT_RETRIEVAL, 100, noise=0.70, pixel_noise=0.28),
        BenchmarkSpec("country-211", "Country-211", Task.IMAGE_TEXT_RETRIEVAL, 211, noise=0.90, pixel_noise=0.42),
        BenchmarkSpec("flowers-102", "Flowers-102", Task.IMAGE_TEXT_RETRIEVAL, 102, noise=0.70, pixel_noise=0.26),
        BenchmarkSpec("coco-retrieval", "MS COCO", Task.ENCODER_VQA, 80, noise=0.40, pixel_noise=0.25),
        BenchmarkSpec("vqa-v2", "VQA-v2", Task.DECODER_VQA, 50, noise=0.25, pixel_noise=0.15),
        BenchmarkSpec("science-qa", "ScienceQA", Task.DECODER_VQA, 120, noise=0.40, pixel_noise=0.25),
        BenchmarkSpec("text-vqa", "TextVQA", Task.DECODER_VQA, 150, noise=0.50, pixel_noise=0.30),
        BenchmarkSpec("audioset-a", "AudioSet (As-A)", Task.CROSS_MODAL_ALIGNMENT, 60, noise=0.45, pixel_noise=0.25),
        BenchmarkSpec("food-101-cls", "Food-101 (classification)", Task.IMAGE_CLASSIFICATION, 101, noise=0.30, pixel_noise=0.25),
        # Extra benchmark (not in Table VIII) exercising the captioning path
        # the paper lists in Table II (NLP Connect ViT-GPT2).
        BenchmarkSpec("coco-captions", "MS COCO Captions", Task.IMAGE_CAPTIONING, 80, noise=0.25, pixel_noise=0.15),
    ]
)


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(f"unknown benchmark {name!r}") from None


def list_benchmarks() -> List[BenchmarkSpec]:
    return list(BENCHMARKS.values())


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

def generate_benchmark(name: str, samples: int = 0, split: str = "test", seed: int = 0) -> list:
    """Generate ``samples`` examples for a benchmark (task-typed samples)."""
    spec = get_benchmark(name)
    count = samples if samples > 0 else spec.default_samples
    space = spec.space()
    rng = rng_for("benchmark", name, split, seed)
    labels = rng.integers(0, spec.num_classes, size=count)

    pix = spec.pixel_noise
    if spec.task in (Task.IMAGE_TEXT_RETRIEVAL,):
        return [
            RetrievalSample(
                image=space.sample_image(int(c), spec.noise, rng, pixel_noise=pix), label=int(c)
            )
            for c in labels
        ]
    if spec.task is Task.IMAGE_CLASSIFICATION:
        return [
            ClassificationSample(
                image=space.sample_image(int(c), spec.noise, rng, pixel_noise=pix), label=int(c)
            )
            for c in labels
        ]
    if spec.task in (Task.ENCODER_VQA, Task.DECODER_VQA):
        return [
            VQASample(
                image=space.sample_image(int(c), spec.noise, rng, pixel_noise=pix),
                question_tokens=space.question_tokens(int(rng.integers(0, 1000))),
                answer=int(c),
            )
            for c in labels
        ]
    if spec.task is Task.CROSS_MODAL_ALIGNMENT:
        return [
            AlignmentSample(
                image=space.sample_image(int(c), spec.noise, rng, pixel_noise=pix),
                audio=space.sample_audio(int(c), spec.noise, rng, pixel_noise=pix),
                text_tokens=space.tokens_for_class(int(c)),
                label=int(c),
            )
            for c in labels
        ]
    if spec.task is Task.IMAGE_CAPTIONING:
        return [
            CaptioningSample(
                image=space.sample_image(int(c), spec.noise, rng, pixel_noise=pix),
                caption_tokens=space.tokens_for_class(int(c)),
                label=int(c),
            )
            for c in labels
        ]
    raise ConfigurationError(f"benchmark {name!r} has unsupported task {spec.task!r}")
