"""Synthetic benchmark substrate.

The paper evaluates on ten public benchmarks.  Offline, we substitute a
*latent-concept* generative model (:mod:`repro.datasets.latent`): every
class has a latent prototype; images/audio are fixed random linear renders
of (noisy) latents; texts are deterministic token sequences per class.  The
per-benchmark noise and class count (:mod:`repro.datasets.benchmarks`) are
tuned so zero-shot accuracies land near Table VIII, and — the actual claim
under test — split inference is bit-identical to centralized inference.
"""

from repro.datasets.latent import LatentConceptSpace
from repro.datasets.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    generate_benchmark,
    get_benchmark,
    list_benchmarks,
)
from repro.datasets.samples import (
    AlignmentSample,
    CaptioningSample,
    ClassificationSample,
    RetrievalSample,
    VQASample,
)

__all__ = [
    "LatentConceptSpace",
    "BENCHMARKS",
    "BenchmarkSpec",
    "generate_benchmark",
    "get_benchmark",
    "list_benchmarks",
    "AlignmentSample",
    "CaptioningSample",
    "ClassificationSample",
    "RetrievalSample",
    "VQASample",
]
