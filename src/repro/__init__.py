"""repro — a full reproduction of S2M3 (ICDCS 2025).

S2M3 splits multi-modal models into functional modules, shares common
modules across tasks, and places/routes them over resource-constrained edge
devices (Yoon et al., "S2M3: Split-and-Share Multi-Modal Models for
Distributed Multi-Task Inference on the Edge", arXiv:2508.04271).

Start with :class:`repro.core.engine.S2M3Engine` and
:func:`repro.cluster.topology.build_testbed`; see README.md for a tour and
``python -m repro`` for the experiment runner.
"""

__version__ = "1.0.0"
