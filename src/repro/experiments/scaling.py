"""Synthetic beyond-paper-scale placement instances.

The paper's instances top out at 4 modules x 5 devices.  The scaling
benchmarks (``benchmarks/test_placement_scaling.py`` and
``scripts/run_benchmarks.py``) need instances up to ~10 modules x ~32
devices to exercise the cost-tensor layer and the branch-and-bound solver,
so this module fabricates deterministic ones: a multi-modal model whose
encoders cycle through the vision/text/audio kinds, a fleet of heterogeneous
devices (one anchor device is always big enough for the largest module, so
greedy placement stays feasible), and a star network behind one router.

Everything is seeded through :func:`repro.utils.seeding.rng_for`, so the
same ``(n_modules, n_devices, seed)`` triple always produces the same
instance — benchmark runs are comparable across commits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.models import ModelSpec
from repro.core.modules import FAMILY_ANALYTIC, FAMILY_TRANSFORMER, ModuleKind, ModuleSpec
from repro.core.placement.problem import PlacementProblem
from repro.core.tasks import Task
from repro.profiles.communication import LinkProfile
from repro.profiles.devices import DeviceProfile
from repro.utils.seeding import rng_for
from repro.utils.units import GB, MB

#: Hub node of the synthetic star topology.
SCALING_ROUTER = "scale-router"

_ENCODER_KINDS = (
    ModuleKind.VISION_ENCODER,
    ModuleKind.TEXT_ENCODER,
    ModuleKind.AUDIO_ENCODER,
)


@dataclass(frozen=True)
class ScalingInstance:
    """One synthetic placement instance plus the requests that score it."""

    problem: PlacementProblem
    network: Network
    model: ModelSpec
    requests: Tuple[InferenceRequest, ...]

    @property
    def n_modules(self) -> int:
        return len(self.problem.modules)

    @property
    def n_devices(self) -> int:
        return len(self.problem.devices)


def _throughput(rng) -> dict:
    """A full per-kind throughput table around a device-wide speed grade."""
    grade = float(rng.uniform(5.0, 120.0))
    return {
        (ModuleKind.VISION_ENCODER, "*"): grade * float(rng.uniform(0.8, 1.2)),
        (ModuleKind.TEXT_ENCODER, "*"): grade * float(rng.uniform(0.5, 1.0)),
        (ModuleKind.AUDIO_ENCODER, "*"): grade * float(rng.uniform(0.6, 1.1)),
        (ModuleKind.LANGUAGE_MODEL, "*"): grade * float(rng.uniform(0.05, 0.2)),
        (ModuleKind.DISTANCE, "*"): grade * 30.0,
        (ModuleKind.CLASSIFIER, "*"): grade * 30.0,
    }


def synthetic_instance(
    n_modules: int,
    n_devices: int,
    seed: int = 0,
    n_requests: int = 4,
) -> ScalingInstance:
    """Build a deterministic ``n_modules x n_devices`` placement instance.

    ``n_modules`` counts the task head, so the model gets ``n_modules - 1``
    encoders; ``n_requests`` requests arrive from sources rotating over the
    first few devices (distinct sources keep the transfer tensors honest).
    """
    if n_modules < 2:
        raise ValueError(f"need >= 2 modules (encoder + head), got {n_modules}")
    if n_devices < 2:
        raise ValueError(f"need >= 2 devices, got {n_devices}")
    rng = rng_for("placement-scaling", n_modules, n_devices, seed)

    modules: List[ModuleSpec] = []
    for i in range(n_modules - 1):
        modules.append(
            ModuleSpec(
                name=f"enc-{i:02d}",
                kind=_ENCODER_KINDS[i % len(_ENCODER_KINDS)],
                params=int(rng.integers(20, 400)) * 1_000_000,
                work=float(rng.uniform(5.0, 60.0)),
                family=FAMILY_TRANSFORMER,
                output_bytes=2 * 1024,
            )
        )
    head = ModuleSpec(
        name="synth-head",
        kind=ModuleKind.CLASSIFIER,
        params=0,
        work=0.05,
        family=FAMILY_ANALYTIC,
    )
    modules.append(head)

    model = ModelSpec(
        name=f"synthetic-{n_modules}x{n_devices}",
        display_name=f"Synthetic {n_modules}x{n_devices}",
        task=Task.IMAGE_CLASSIFICATION,
        encoders=tuple(module.name for module in modules[:-1]),
        head=head.name,
    )

    largest = max(module.memory_bytes for module in modules)
    devices: List[DeviceProfile] = []
    links: List[LinkProfile] = []
    for i in range(n_devices):
        if i == 0:
            # Anchor: always fits the largest module, so greedy never fails.
            memory = max(int(8.0 * GB), 2 * largest)
        else:
            memory = int(float(rng.uniform(0.3, 6.0)) * GB)
        devices.append(
            DeviceProfile(
                name=f"dev-{i:02d}",
                description="synthetic scaling device",
                memory_bytes=memory,
                throughput=_throughput(rng),
                load_throughput_bps=float(rng.uniform(20.0, 300.0)) * MB,
                parallel_slots=int(rng.integers(1, 3)),
            )
        )
        links.append(
            LinkProfile(
                devices[-1].name,
                SCALING_ROUTER,
                bandwidth_bps=float(rng.uniform(40.0, 1000.0)) * 1_000_000,
                latency_s=float(rng.uniform(0.001, 0.005)),
            )
        )

    problem = PlacementProblem(
        modules=tuple(modules), devices=tuple(devices), models=(model,)
    )
    network = Network(links=links)
    requests = tuple(
        InferenceRequest(model=model, source=devices[q % min(4, n_devices)].name)
        for q in range(n_requests)
    )
    return ScalingInstance(problem=problem, network=network, model=model, requests=requests)
