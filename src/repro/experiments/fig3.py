"""Fig. 3: the inference timeline for CLIP ViT-B/16 on Jetson + Laptop.

The paper's figure fixes the placement for visual clarity: the Jetson
(requester) hosts the vision encoder and head, the laptop hosts the text
encoder; both encoders run in parallel and transmission is nearly
invisible.  We reproduce that exact scenario — explicit placement, one
request — and render the device timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import build_testbed
from repro.core.catalog import MODULE_CATALOG, get_model
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.executor import execute_requests
from repro.core.routing.latency import LatencyModel
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.sim.trace import CATEGORY_COMPUTE, CATEGORY_TRANSMISSION, Span

MODEL = "clip-vit-b16"

#: The paper's illustrated placement.
FIG3_PLACEMENT: Dict[str, Tuple[str, ...]] = {
    "clip-vit-b16-vision": ("jetson-a",),
    "clip-trf-38m": ("laptop",),
    "cosine-similarity": ("jetson-a",),
}

#: Paper-reported step durations (s) for EXPERIMENTS.md.
PAPER_FIG3 = {
    "jetson_image_encode": 2.39,
    "laptop_text_encode": 2.06,
    "total": 2.47,
}


@dataclass
class Fig3Result:
    spans: List[Span]
    total_seconds: float
    gantt: str

    def spans_of(self, category: str) -> List[Span]:
        return [span for span in self.spans if span.category == category]

    @property
    def encode_overlap_seconds(self) -> float:
        """Overlap between the two encoder spans — the parallelism evidence."""
        compute = self.spans_of(CATEGORY_COMPUTE)
        if len(compute) < 2:
            return 0.0
        first, second = compute[0], compute[1]
        return max(0.0, min(first.end, second.end) - max(first.start, second.start))

    @property
    def transmission_seconds(self) -> float:
        return sum(span.duration for span in self.spans_of(CATEGORY_TRANSMISSION))


def run_fig3() -> Fig3Result:
    cluster = build_testbed(["laptop", "jetson-a"], requester=DEFAULT_REQUESTER)
    model = get_model(MODEL)
    placement = Placement(FIG3_PLACEMENT)
    problem = PlacementProblem(
        modules=tuple(
            module for module in MODULE_CATALOG.values() if module.name in FIG3_PLACEMENT
        ),
        devices=tuple(device.profile for device in cluster.devices.values()),
        models=(model,),
    )
    # Pre-load the fixed placement onto the devices.
    modules = {m.name: m for m in problem.modules}
    for module_name, hosts in placement.as_dict().items():
        for host in hosts:
            cluster.device(host).load(modules[module_name])
    latency_model = LatencyModel(problem, cluster.network, parallel=True)
    request = InferenceRequest(model=model, source=DEFAULT_REQUESTER)
    result = execute_requests(cluster, placement, [request], latency_model)
    # Render serving separately from the (much longer) loading phase, as the
    # paper's figure does with its broken axis.
    from repro.sim import TraceRecorder
    from repro.sim.trace import CATEGORY_LOADING

    serving = TraceRecorder(
        spans=[span for span in cluster.trace.spans if span.category != CATEGORY_LOADING]
    )
    load_notes = [
        f"model loading on {span.device}: {span.duration:.2f}s ({span.label})"
        for span in cluster.trace.by_category(CATEGORY_LOADING)
    ]
    spans = sorted(serving.spans, key=lambda s: (s.start, s.end))
    gantt = serving.render_gantt() + "\n" + "\n".join(load_notes)
    return Fig3Result(
        spans=spans,
        total_seconds=result.outcomes[0].latency,
        gantt=gantt,
    )


def render_fig3(result: "Fig3Result | None" = None) -> str:
    result = result if result is not None else run_fig3()
    lines = [
        "Fig. 3: inference timeline, CLIP ViT-B/16 on Jetson (vision+head) and Laptop (text)",
        result.gantt,
        f"total latency: {result.total_seconds:.2f}s (paper: {PAPER_FIG3['total']:.2f}s)",
        f"encoder overlap: {result.encode_overlap_seconds:.2f}s (parallel modalities)",
        f"total transmission: {result.transmission_seconds:.3f}s (paper: 'nearly invisible')",
    ]
    return "\n".join(lines)
