"""Shared experiment plumbing: fresh clusters, engines, single-shot latency."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.topology import EdgeCluster, build_testbed
from repro.core.engine import DeploymentReport, S2M3Engine
from repro.profiles.devices import edge_device_names, testbed_device_names

DEFAULT_REQUESTER = "jetson-a"


def fresh_edge_cluster(requester: str = DEFAULT_REQUESTER) -> EdgeCluster:
    """The paper's default deployment: four PAN edge devices."""
    return build_testbed(edge_device_names(), requester=requester)


def fresh_full_cluster(requester: str = DEFAULT_REQUESTER) -> EdgeCluster:
    """Edge devices plus the GPU server (Table IX's last row)."""
    return build_testbed(testbed_device_names(), requester=requester)


def s2m3_single_request_latency(
    model_name: str,
    device_names: Optional[Sequence[str]] = None,
    requester: str = DEFAULT_REQUESTER,
    parallel: bool = True,
) -> float:
    """Deploy one model on a fresh cluster and serve one request (simulated)."""
    cluster = build_testbed(
        list(device_names) if device_names is not None else edge_device_names(),
        requester=requester,
    )
    engine = S2M3Engine(cluster, [model_name], parallel=parallel)
    engine.deploy()
    result = engine.serve([engine.request(model_name)])
    return result.outcomes[0].latency


def s2m3_deploy(
    model_names: Sequence[str],
    device_names: Optional[Sequence[str]] = None,
    requester: str = DEFAULT_REQUESTER,
    share: bool = True,
    parallel: bool = True,
) -> tuple:
    """(engine, deployment report) on a fresh cluster."""
    cluster = build_testbed(
        list(device_names) if device_names is not None else edge_device_names(),
        requester=requester,
    )
    engine = S2M3Engine(cluster, list(model_names), share=share, parallel=parallel)
    report: DeploymentReport = engine.deploy()
    return engine, report
