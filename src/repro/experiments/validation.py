"""Solver-vs-serving cross-validation of the queue-aware placement model.

The queue-aware objective (``optimal_placement(congestion=...)``) claims to
predict what the serving runtime measures under load.  This experiment
closes the loop: for each arrival rate it builds one bursty trace, plans
two deployments on the paper's edge testbed — **queue-aware** (the exact
solver pricing M/G/1-style expected waits from the trace's measured
arrival rates) and **queue-blind** (the same exact solver without the wait
term) — then replays the *identical* trace through the flat serving engine
on each and compares:

- **predicted vs measured** — per-arrival predicted latency (base Eq. 1-3
  class value plus the routed hosts' expected waits, seconds) against the
  serving-measured completion latencies, summarized with the same
  mean/p95 convention (:func:`~repro.cluster.metrics.summarize_latencies`);
- **aware vs blind** — serving-measured p95 and goodput across the two
  placements.

Two gates (checked into ``BENCH_validation.json`` by
``scripts/run_benchmarks.py``):

a. On **sub-saturation** rows the predicted mean and p95 must track the
   measured ones within the tolerance band (ratio in ``[0.5, 2.0]`` by
   default).  The wait model is *steady-state* M/G/1 with utilization
   clamped at ``rho_max``; past saturation the true queue grows without
   bound over the arrival window and no steady-state figure can track a
   horizon-truncated measurement, so overload rows are excluded from this
   gate by design (see ``docs/performance.md`` for the band rationale).
b. On the **overload** row the queue-aware placement must beat the
   queue-blind one on serving-measured p95 or goodput — the whole point
   of pricing congestion into the solver.

Admission is off (everything must be served) and both arms are single-copy
(``replicate=False``), so measured differences come from the solver's
placement choice alone.  Run with ``python -m repro validation``.
All latencies are **seconds** of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.metrics import summarize_latencies
from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.optimal import optimal_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.tensors import CongestionModel
from repro.core.routing.latency import LatencyModel
from repro.experiments.reporting import ExperimentTable

#: Model mix (three tasks sharing the ViT-B/16 tower) — the serving studies'
#: standard workload.
STUDY_MODELS = ("clip-vit-b16", "encoder-vqa-small", "image-classification-vitb16")

#: Default sweep: two sub-saturation rates the steady-state wait model can
#: track, plus one far-past-saturation rate where placements must separate.
DEFAULT_RATES = (0.1, 0.3, 4.0)

#: Default predicted/measured ratio band for the sub-saturation rows.
DEFAULT_TOLERANCE = (0.5, 2.0)

#: Requests originate at the testbed requester (it holds the input data).
_SOURCE = "jetson-a"


@dataclass(frozen=True)
class ValidationArm:
    """One placement arm (queue-aware or queue-blind) at one rate."""

    placement: Dict[str, Tuple[str, ...]]
    predicted_mean_s: float
    predicted_p95_s: float
    measured_mean_s: float
    measured_p95_s: float
    goodput_rps: float
    completed: int


@dataclass(frozen=True)
class ValidationRow:
    """One arrival rate: both arms served on the identical trace."""

    rate_rps: float
    overload: bool
    arrivals: int
    aware: ValidationArm
    blind: ValidationArm
    #: Aware-arm predicted/measured ratios (None when nothing completed).
    mean_ratio: Optional[float]
    p95_ratio: Optional[float]
    #: Tolerance verdict — None on overload rows (excluded by design).
    within_tolerance: Optional[bool]

    @property
    def aware_beats_blind(self) -> bool:
        """Strictly better on measured p95 or goodput."""
        return (
            self.aware.measured_p95_s < self.blind.measured_p95_s
            or self.aware.goodput_rps > self.blind.goodput_rps
        )


@dataclass(frozen=True)
class ValidationStudy:
    """The full sweep plus its gate verdicts."""

    kind: str
    duration_s: float
    seed: int
    models: Tuple[str, ...]
    tolerance: Tuple[float, float]
    rows: Tuple[ValidationRow, ...]

    @property
    def tolerance_ok(self) -> bool:
        """Gate (a): every gated sub-saturation row inside the band."""
        return all(row.within_tolerance is not False for row in self.rows)

    @property
    def aware_beats_blind_at_overload(self) -> bool:
        """Gate (b): the aware placement wins every overload row."""
        overload = [row for row in self.rows if row.overload]
        return bool(overload) and all(row.aware_beats_blind for row in overload)

    def as_dict(self) -> Dict[str, object]:
        """The ``BENCH_validation.json`` payload (schema: docs/performance.md)."""

        def arm(a: ValidationArm) -> Dict[str, object]:
            return {
                "placement": {name: list(hosts) for name, hosts in sorted(a.placement.items())},
                "predicted_mean_s": a.predicted_mean_s,
                "predicted_p95_s": a.predicted_p95_s,
                "measured_mean_s": a.measured_mean_s,
                "measured_p95_s": a.measured_p95_s,
                "goodput_rps": a.goodput_rps,
                "completed": a.completed,
            }

        return {
            "workload": {
                "kind": self.kind,
                "duration_s": self.duration_s,
                "seed": self.seed,
                "models": list(self.models),
            },
            "tolerance": {"low": self.tolerance[0], "high": self.tolerance[1]},
            "rows": [
                {
                    "rate_rps": row.rate_rps,
                    "overload": row.overload,
                    "arrivals": row.arrivals,
                    "aware": arm(row.aware),
                    "blind": arm(row.blind),
                    "mean_ratio": row.mean_ratio,
                    "p95_ratio": row.p95_ratio,
                    "within_tolerance": row.within_tolerance,
                    "aware_beats_blind": row.aware_beats_blind,
                }
                for row in self.rows
            ],
            "gates": {
                "tolerance_ok": self.tolerance_ok,
                "aware_beats_blind_at_overload": self.aware_beats_blind_at_overload,
            },
        }


def _solver_requests(problem: PlacementProblem) -> List[InferenceRequest]:
    """One scoring request per deployed model, from the testbed requester.

    ``request_id=-1`` keeps solver-only requests from bumping the global
    request counter (bit-identity of served ids across configurations).
    """
    return [
        InferenceRequest(model=spec, source=_SOURCE, request_id=-1)
        for spec in problem.models
    ]


def queue_blind_planner(problem: PlacementProblem) -> Placement:
    """The queue-blind exact baseline: same solver, no wait term.

    ``build_testbed`` clusters use a default :class:`Network`, so pricing
    with ``Network()`` here matches the in-cluster pricing the
    ``congestion_aware`` path performs for the other arm.
    """
    placement, _ = optimal_placement(problem, _solver_requests(problem), network=Network())
    return placement


def predicted_latencies(
    problem: PlacementProblem,
    placement: Placement,
    congestion: CongestionModel,
    trace,
) -> List[float]:
    """Per-arrival predicted latency (seconds) on a single-copy placement.

    Each arrival is predicted at its model's queue-aware class value: the
    base Eq. 1-3 latency plus the expected wait of every member module's
    host — exactly the quantity the queue-aware solver minimizes.
    """
    model = LatencyModel(problem, Network())
    requests = _solver_requests(problem)
    waits = model.congestion_waits(requests, placement, congestion)
    by_model: Dict[str, float] = {}
    for spec, request in zip(problem.models, requests):
        base = model.objective([request], placement)
        surcharge = 0.0
        for name in LatencyModel._member_names(spec):
            surcharge += waits[placement.hosts(name)[0]]
        by_model[spec.name] = base + surcharge
    return [by_model[arrival.model_name] for arrival in trace.arrivals]


def run_validation(
    models: Sequence[str] = STUDY_MODELS,
    rates: Sequence[float] = DEFAULT_RATES,
    kind: str = "bursty",
    duration_s: float = 40.0,
    seed: int = 7,
    tolerance: Tuple[float, float] = DEFAULT_TOLERANCE,
    overload_rate: float = 1.0,
) -> ValidationStudy:
    """Run the sweep: one trace per rate, both arms, predicted vs measured.

    Rates at or above ``overload_rate`` are overload rows: exempt from the
    tolerance gate (steady-state model scope), subject to the
    aware-beats-blind gate instead.
    """
    from repro.cluster.topology import build_testbed
    from repro.core.engine import S2M3Engine
    from repro.serving import ServingRuntime, SLOPolicy, WorkloadGenerator

    if not rates:
        raise ValueError("need at least one arrival rate to validate against")
    lo, hi = tolerance
    if not 0.0 < lo < hi:
        raise ValueError(f"tolerance must satisfy 0 < low < high, got {tolerance}")

    model_list = list(models)
    # The planning problem is identical across rates (same models, same
    # testbed); build it once for predictions.
    problem = S2M3Engine(build_testbed(), model_list).problem

    rows: List[ValidationRow] = []
    for rate in rates:
        trace = WorkloadGenerator(
            model_list, kind=kind, rate_rps=rate, duration_s=duration_s, seed=seed
        ).generate()
        congestion = CongestionModel.from_trace(trace)
        overload = rate >= overload_rate

        arms: Dict[str, ValidationArm] = {}
        for arm_key in ("aware", "blind"):
            kwargs = (
                dict(congestion_aware=True)
                if arm_key == "aware"
                else dict(placement_algorithm=queue_blind_planner)
            )
            runtime = ServingRuntime(
                model_list,
                slo=SLOPolicy(admission=False),
                replicate=False,
                **kwargs,
            )
            report = runtime.run(trace)
            placement = (
                optimal_placement(
                    problem,
                    _solver_requests(problem),
                    network=Network(),
                    congestion=congestion if arm_key == "aware" else None,
                )[0]
            )
            predicted = summarize_latencies(
                predicted_latencies(problem, placement, congestion, trace)
            )
            arms[arm_key] = ValidationArm(
                placement=dict(placement.as_dict()),
                predicted_mean_s=predicted.mean,
                predicted_p95_s=predicted.p95,
                measured_mean_s=report.latency.mean,
                measured_p95_s=report.latency.p95,
                goodput_rps=report.goodput_rps,
                completed=report.completed,
            )

        aware = arms["aware"]
        if aware.completed > 0 and aware.measured_mean_s > 0 and aware.measured_p95_s > 0:
            mean_ratio: Optional[float] = aware.predicted_mean_s / aware.measured_mean_s
            p95_ratio: Optional[float] = aware.predicted_p95_s / aware.measured_p95_s
        else:
            mean_ratio = p95_ratio = None
        if overload or mean_ratio is None:
            within: Optional[bool] = None
        else:
            within = lo <= mean_ratio <= hi and lo <= p95_ratio <= hi
        rows.append(
            ValidationRow(
                rate_rps=float(rate),
                overload=overload,
                arrivals=len(trace.arrivals),
                aware=aware,
                blind=arms["blind"],
                mean_ratio=mean_ratio,
                p95_ratio=p95_ratio,
                within_tolerance=within,
            )
        )

    return ValidationStudy(
        kind=kind,
        duration_s=float(duration_s),
        seed=int(seed),
        models=tuple(model_list),
        tolerance=(float(lo), float(hi)),
        rows=tuple(rows),
    )


def render_validation() -> str:
    """Render the sweep (the ``python -m repro validation`` artifact)."""
    study = run_validation()
    table = ExperimentTable(
        f"Solver-vs-serving validation ({study.kind}, {study.duration_s:g} s, "
        f"seed {study.seed}, admission off, single-copy arms)",
        [
            "rate (rps)", "overload", "arm", "pred mean (s)", "pred p95 (s)",
            "meas mean (s)", "meas p95 (s)", "goodput (rps)",
        ],
    )
    for row in study.rows:
        for key, arm in (("aware", row.aware), ("blind", row.blind)):
            table.add_row(
                row.rate_rps,
                "yes" if row.overload else "no",
                key,
                round(arm.predicted_mean_s, 3),
                round(arm.predicted_p95_s, 3),
                round(arm.measured_mean_s, 3),
                round(arm.measured_p95_s, 3),
                round(arm.goodput_rps, 3),
            )
    lo, hi = study.tolerance
    table.add_note(
        f"gate (a) tolerance [{lo:g}, {hi:g}] on sub-saturation rows: "
        + ("PASS" if study.tolerance_ok else "FAIL")
    )
    table.add_note(
        "gate (b) aware beats blind (measured p95 or goodput) at overload: "
        + ("PASS" if study.aware_beats_blind_at_overload else "FAIL")
    )
    table.add_note(
        "overload rows are exempt from gate (a): the wait model is steady-"
        "state M/G/1; past saturation the measured transient depends on the "
        "horizon (docs/performance.md)"
    )
    return table.render()
