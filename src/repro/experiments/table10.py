"""Table X: multi-task deployment cost and latency, with/without sharing.

Tasks are added one at a time (retrieval -> +encoder VQA -> +alignment ->
+classification); all active tasks fire one request simultaneously.  With
sharing, each step only pays for modules not yet deployed (the "+1K",
"+85M", "+52K" deltas), but simultaneous requests queue on shared modules,
raising latency — the paper's memory/latency trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.experiments.reporting import ExperimentTable, format_million
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names

#: The four tasks of Table X, in arrival order.
TABLE10_MODELS: List[str] = [
    "clip-vit-b16",            # image-text retrieval
    "encoder-vqa-small",       # encoder-only VQA
    "alignment-vitb16",        # cross-modal alignment
    "image-classification-vitb16",  # image classification
]

#: Paper-reported (params w/o sharing, params w/ sharing, latency w/o, latency w/).
PAPER_TABLE10: Dict[int, Tuple[str, str, float, float]] = {
    1: ("124M", "124M", 2.48, 2.48),
    2: ("248M", "124M", 2.48, 2.50),
    3: ("457M", "209M", 3.73, 4.87),
    4: ("543M", "209M", 3.73, 4.97),
}


@dataclass(frozen=True)
class Table10Row:
    task_count: int
    models: Tuple[str, ...]
    params_without_sharing: int
    params_with_sharing: int
    latency_without_sharing: float
    latency_with_sharing: float


def _deploy_and_burst(models: List[str], share: bool) -> Tuple[int, float]:
    """(total deployed params, max latency of a simultaneous burst)."""
    cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
    engine = S2M3Engine(cluster, models, share=share)
    report = engine.deploy()
    requests = [engine.request(name) for name in models]
    result = engine.serve(requests)
    return report.total_params, result.max_latency


def run_table10(models: Optional[List[str]] = None) -> List[Table10Row]:
    models = models if models is not None else TABLE10_MODELS
    rows = []
    for count in range(1, len(models) + 1):
        active = models[:count]
        unshared_params, unshared_latency = _deploy_and_burst(active, share=False)
        shared_params, shared_latency = _deploy_and_burst(active, share=True)
        rows.append(
            Table10Row(
                task_count=count,
                models=tuple(active),
                params_without_sharing=unshared_params,
                params_with_sharing=shared_params,
                latency_without_sharing=unshared_latency,
                latency_with_sharing=shared_latency,
            )
        )
    return rows


def render_table10(rows: Optional[List[Table10Row]] = None) -> ExperimentTable:
    rows = rows if rows is not None else run_table10()
    table = ExperimentTable(
        title="Table X: multi-task burst — deployment cost and latency vs sharing",
        headers=[
            "tasks", "#param w/o", "#param w/", "paper w/o", "paper w/",
            "latency w/o", "latency w/", "paper w/o", "paper w/",
        ],
    )
    for row in rows:
        paper = PAPER_TABLE10.get(row.task_count, ("?", "?", None, None))
        table.add_row(
            row.task_count,
            format_million(row.params_without_sharing),
            format_million(row.params_with_sharing),
            paper[0],
            paper[1],
            row.latency_without_sharing,
            row.latency_with_sharing,
            paper[2],
            paper[3],
        )
    saving = 1 - rows[-1].params_with_sharing / rows[-1].params_without_sharing
    table.add_note(f"sharing saves {100 * saving:.1f}% of parameters at {len(rows)} tasks "
                   "(paper: 61.5%)")
    return table
