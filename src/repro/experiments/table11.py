"""Table XI: comparison to Optimus, DistMM and Megatron-LM.

Optimus is VQA-only and DistMM retrieval-only (both estimated per the
paper's footnote 3, since neither is open source); Megatron-LM applies
model parallelism per functional module.  The multi-task row shows the
memory gap: intra-module partitioning cannot share across tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.distmm import distmm_latency
from repro.baselines.megatron import megatron_multitask_latency, megatron_params
from repro.baselines.optimus import optimus_latency
from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.core.sharing import build_sharing_plan
from repro.experiments.reporting import ExperimentTable, format_million
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import testbed_device_names

#: Table XI workloads: label -> model list (multi-task rows have several).
TABLE11_WORKLOADS: List[Tuple[str, List[str]]] = [
    ("VQA", ["flint-v0.5-1b"]),
    ("Retrieval", ["clip-vit-b16"]),
    ("Alignment", ["alignment-vitb16"]),
    ("Retrieval+Alignment", ["clip-vit-b16", "alignment-vitb16"]),
]

PAPER_TABLE11: Dict[str, Dict[str, Optional[float]]] = {
    "VQA": {"optimus": 1.57, "distmm": None, "megatron": 2.71, "s2m3": 2.71},
    "Retrieval": {"optimus": None, "distmm": 2.48, "megatron": 3.03, "s2m3": 2.48},
    "Alignment": {"optimus": None, "distmm": None, "megatron": 0.99, "s2m3": 0.55},
    "Retrieval+Alignment": {"optimus": None, "distmm": None, "megatron": 3.03, "s2m3": 2.80},
}


@dataclass(frozen=True)
class Table11Row:
    workload: str
    optimus_seconds: Optional[float]
    distmm_seconds: Optional[float]
    megatron_seconds: Optional[float]
    s2m3_seconds: float
    megatron_params: int
    s2m3_params: int


def _s2m3(models: List[str]) -> Tuple[float, int]:
    cluster = build_testbed(testbed_device_names(), requester=DEFAULT_REQUESTER)
    engine = S2M3Engine(cluster, models)
    report = engine.deploy()
    result = engine.serve([engine.request(name) for name in models])
    return result.max_latency, report.total_params


def run_table11() -> List[Table11Row]:
    devices = testbed_device_names()
    rows = []
    for label, models in TABLE11_WORKLOADS:
        optimus = distmm = None
        if label == "VQA":
            optimus = optimus_latency(models[0], devices, DEFAULT_REQUESTER)
        if label == "Retrieval":
            distmm = distmm_latency(models[0], devices, DEFAULT_REQUESTER)
        megatron = megatron_multitask_latency(models, devices, DEFAULT_REQUESTER)
        s2m3_latency, s2m3_total = _s2m3(models)
        rows.append(
            Table11Row(
                workload=label,
                optimus_seconds=optimus,
                distmm_seconds=distmm,
                megatron_seconds=megatron,
                s2m3_seconds=s2m3_latency,
                megatron_params=megatron_params(models),
                s2m3_params=build_sharing_plan(models).shared_params,
            )
        )
    return rows


def render_table11(rows: Optional[List[Table11Row]] = None) -> ExperimentTable:
    rows = rows if rows is not None else run_table11()
    table = ExperimentTable(
        title="Table XI: comparison to baselines (5-device testbed)",
        headers=[
            "workload", "Optimus(s)", "DistMM(s)", "Megatron(s)", "S2M3(s)",
            "Mega #param", "S2M3 #param",
        ],
    )
    for row in rows:
        table.add_row(
            row.workload,
            row.optimus_seconds,
            row.distmm_seconds,
            row.megatron_seconds,
            row.s2m3_seconds,
            format_million(row.megatron_params),
            format_million(row.s2m3_params),
        )
    table.add_note("Optimus/DistMM are estimated ideals (paper footnote 3); "
                   "'–' = baseline not applicable to the task")
    return table
