"""Energy-vs-latency frontier study (paper Sec. VII future work, made real).

Sweeps the latency-budget factor of
:func:`~repro.profiles.energy.energy_aware_placement` from 1.0 (no slack:
the latency-optimal regime) upward and reports, per budget, the joules and
latency of the exact minimum-energy placement within that budget — the
Pareto frontier between the paper's latency objective (Problem 4a) and the
battery-life objective it defers.  Every point runs on the shared
cost/energy tensors and the energy branch-and-bound, so the frontier is
exact, not heuristic.

Run it with ``python -m repro energy``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.optimal import energy_optimal_placement
from repro.core.placement.problem import PlacementProblem
from repro.core.routing.latency import LatencyModel
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names
from repro.profiles.energy import energy_objective

#: Budget factors swept for the frontier (1.0 = no slack over greedy).
DEFAULT_BUDGET_FACTORS: Tuple[float, ...] = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0)


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the energy-vs-latency frontier."""

    budget_factor: float
    latency_budget_s: float
    latency_s: float
    energy_j: float


def run_energy_frontier(
    model_names: Sequence[str] = ("clip-vit-b16",),
    device_names: Sequence[str] = (),
    budget_factors: Sequence[float] = DEFAULT_BUDGET_FACTORS,
    source: str = DEFAULT_REQUESTER,
) -> List[FrontierPoint]:
    """Exact frontier points for one deployment, one request per model.

    The latency model, cost tensors, and energy tensors are built once and
    shared across every budget point (the same-instance sharing the solver
    docs promise), so the sweep prices ``len(budget_factors)`` exact solves
    against one tensor build.
    """
    devices = list(device_names) if device_names else edge_device_names()
    problem = PlacementProblem.from_models(list(model_names), devices)
    network = Network()
    model = LatencyModel(problem, network)
    requests = [InferenceRequest.for_model(name, source) for name in model_names]
    greedy_latency = model.objective(requests, greedy_placement(problem))

    points = []
    for factor in budget_factors:
        budget = factor * greedy_latency
        placement, joules = energy_optimal_placement(
            problem, requests, network, latency_budget=budget, tensors=model.tensors
        )
        if placement is None:  # pragma: no cover - factor >= 1 always feasible
            continue
        points.append(
            FrontierPoint(
                budget_factor=factor,
                latency_budget_s=budget,
                latency_s=model.objective(requests, placement),
                energy_j=energy_objective(requests, placement, model),
            )
        )
    return points


def render_energy() -> str:
    """The energy frontier report for the CLI (``python -m repro energy``)."""
    lines = ["Energy-vs-latency frontier (exact, energy branch-and-bound)"]
    for models in (["clip-vit-b16"], ["clip-vit-b16", "encoder-vqa-small"]):
        points = run_energy_frontier(models)
        baseline = points[0].energy_j if points else 0.0
        lines.append(f"\n[{' + '.join(models)} on the edge pool, one request per model]")
        lines.append("  budget   latency-cap  achieved-lat  energy      vs 1.0x")
        for point in points:
            saved = (1.0 - point.energy_j / baseline) * 100.0 if baseline else 0.0
            lines.append(
                f"  {point.budget_factor:5.2f}x  {point.latency_budget_s:9.2f}s  "
                f"{point.latency_s:11.2f}s  {point.energy_j:8.1f}J  {saved:6.1f}%"
            )
    return "\n".join(lines)
