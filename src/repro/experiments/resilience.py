"""Resilience study: fault scenarios with and without graceful degradation.

Beyond the paper (which assumes a healthy pool), this study drives the
serving runtime through the named fault scenarios in
:mod:`repro.serving.scenarios` — a correlated regional outage, staggered
compute stragglers, and flaky/partitioning links — and compares two
configurations on the same seeded workload and fault schedule:

- **baseline** — faults injected, degradation machinery off: no attempt
  timeouts (unlimited silent retries on device loss) and no brownout, so
  doomed requests wait out the outage and drag tail latency.
- **graceful** — per-attempt timeouts with a bounded retry budget
  (:class:`~repro.serving.slo.RetryPolicy`: exhausted requests terminate
  as *timed out* instead of clogging queues) plus the brownout controller
  (:class:`~repro.serving.faults.BrownoutPolicy`: under backlog pressure,
  shed the lowest-SLO-slack model classes first).

Run with ``python -m repro resilience``.  ``scripts/run_benchmarks.py``
records the SAME study into ``BENCH_resilience.json`` (plus engine
cross-checks and determinism gates), so there is exactly one definition
to drift.  All latencies are **seconds** of simulated time; goodput is
SLO-met completions per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.experiments.reporting import ExperimentTable
from repro.serving.faults import BrownoutPolicy
from repro.serving.slo import RetryPolicy

#: Model mix shared with the replica study: three tasks, one shared tower.
STUDY_MODELS = ("clip-vit-b16", "encoder-vqa-small", "image-classification-vitb16")

#: Workload under study: a bursty stream the healthy four-device pool can
#: absorb (strained but stable), so the backlog each scenario builds is
#: attributable to the injected faults rather than to raw overload.
STUDY_RATE_RPS = 0.6
STUDY_DURATION_S = 40.0
STUDY_SEED = 7

#: The degradation configurations under study: (key, display label,
#: runtime kwargs).  The benchmark gate compares ``graceful`` against
#: ``baseline`` row by row, so keep exactly these two keys.
RESILIENCE_CONFIGURATIONS = (
    ("baseline", "degradation off", {}),
    (
        "graceful",
        "timeouts + retry budget + brownout",
        {
            "retry": RetryPolicy(timeout_s=6.0, max_retries=3, backoff_s=0.05),
            "brownout": BrownoutPolicy(interval_s=0.5, high_backlog_s=1.5, low_backlog_s=0.5),
        },
    ),
)


@dataclass(frozen=True)
class ResilienceRow:
    """One (scenario, configuration) cell of the study."""

    scenario: str
    configuration: str
    goodput_rps: float
    p50_s: float
    p95_s: float
    completed: int
    rejected: int
    timed_out: int
    brownout_changes: int


def run_resilience_study(
    scenarios: Sequence[str] = (),
    models: Sequence[str] = STUDY_MODELS,
    rate_rps: float = STUDY_RATE_RPS,
    duration_s: float = STUDY_DURATION_S,
    seed: int = STUDY_SEED,
    engine: str = "flat",
) -> List[Tuple[str, str, "object"]]:
    """Serve one seeded bursty stream under every (scenario, config) pair.

    Returns ``[(scenario name, configuration key, ServingReport), ...]``
    in scenario-major, :data:`RESILIENCE_CONFIGURATIONS`-minor order.
    Admission is off (everything is either served, shed by brownout, or
    timed out); the runtime itself enforces the widened conservation
    invariant ``completed + rejected + timed_out == arrivals`` on every
    run.
    """
    from repro.serving import (
        ServingRuntime,
        SLOPolicy,
        WorkloadGenerator,
        fault_scenario,
        scenario_names,
    )

    names = list(scenarios) if scenarios else scenario_names()
    trace = WorkloadGenerator(
        list(models), kind="bursty", rate_rps=rate_rps, duration_s=duration_s, seed=seed
    ).generate()
    out: List[Tuple[str, str, object]] = []
    for name in names:
        plan = fault_scenario(name, duration_s=duration_s, seed=seed)
        for key, _, kwargs in RESILIENCE_CONFIGURATIONS:
            # Admission off: arrival-time shedding would hide the backlog
            # the degradation machinery exists to manage, so the brownout
            # controller and the retry budget are the only relief valves.
            runtime = ServingRuntime(
                list(models), slo=SLOPolicy(admission=False), engine=engine, **kwargs
            )
            out.append((name, key, runtime.run(trace, faults=plan)))
    return out


def resilience_rows(reports) -> List[ResilienceRow]:
    """Digest ``run_resilience_study`` output into display rows."""
    labels = {key: label for key, label, _ in RESILIENCE_CONFIGURATIONS}
    return [
        ResilienceRow(
            scenario=scenario,
            configuration=labels[key],
            goodput_rps=report.goodput_rps,
            p50_s=report.latency.p50,
            p95_s=report.latency.p95,
            completed=report.completed,
            rejected=report.rejected,
            timed_out=report.timed_out,
            brownout_changes=len(report.brownout),
        )
        for scenario, key, report in reports
    ]


def render_resilience() -> str:
    """Render the study (the ``python -m repro resilience`` artifact)."""
    rows = resilience_rows(run_resilience_study())
    table = ExperimentTable(
        f"Serving under fault scenarios (bursty {STUDY_RATE_RPS:g} rps nominal, "
        f"{STUDY_DURATION_S:g} s, seed {STUDY_SEED})",
        [
            "scenario", "configuration", "goodput (req/s)", "p50 (s)", "p95 (s)",
            "completed", "rejected", "timed out", "brownout",
        ],
    )
    for row in rows:
        table.add_row(
            row.scenario, row.configuration, row.goodput_rps, row.p50_s, row.p95_s,
            row.completed, row.rejected, row.timed_out, row.brownout_changes,
        )
    table.add_note(
        "baseline retries device losses silently and never times out; "
        "graceful = RetryPolicy(timeout 6 s, 3 retries, 50 ms backoff) "
        "+ BrownoutPolicy(0.5 s tick, shed above 1.5 s backlog/slot)"
    )
    table.add_note(
        "conservation (completed + rejected + timed out == arrivals) is "
        "enforced by the runtime on every run"
    )
    return table.render()
