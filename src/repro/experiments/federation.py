"""Federation study: WAN spillover vs isolated clusters.

Beyond the paper's single-cluster testbed, this study federates three
timezone-offset edge clusters behind the WAN router of
:mod:`repro.federation` and asks the question the federation exists to
answer: **does letting an overloaded or degraded cluster forward work to
remote peers — at WAN latency/bandwidth cost — beat leaving each cluster
to fend for itself?**  Two scenarios, each run with spillover on and off
on identical seeded workloads:

- **offset-diurnal** — healthy clusters whose diurnal peaks are staggered
  by a third of a period (their timezones): when one peaks, the others
  are in their troughs with spare capacity a WAN hop away.
- **regional-outage** — the same staggered workload, but one cluster
  loses half its devices (a correlated regional outage) mid-run and must
  shed or forward what its survivors cannot absorb.

Run with ``python -m repro federation --study`` (single configurable runs
without ``--study``).  ``scripts/run_benchmarks.py`` records the SAME
study into ``BENCH_federation.json`` — with conservation, merge
bit-identity, and spillover-wins gates — so there is exactly one
definition to drift.  All latencies are end-to-end **seconds** (serving
plus WAN penalty for forwarded requests); goodput is end-to-end SLO-met
completions per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.reporting import ExperimentTable
from repro.federation import (
    ClusterSpec,
    FederationRuntime,
    FederationTopology,
    WanLink,
)
from repro.serving.faults import FaultPlan, regional_outage
from repro.serving.slo import SLOPolicy

#: Study shape: three clusters, one diurnal period spanning the run, the
#: peaks staggered by a third of a period — three timezones of one planet.
STUDY_DURATION_S = 120.0
STUDY_PERIOD_S = 120.0
STUDY_AMPLITUDE = 0.8
STUDY_RATE_RPS = 1.2
STUDY_CAPACITY_RPS = 1.8
STUDY_SEED = 7

#: The cluster hit by the regional outage, the devices it loses, and the
#: outage window (fractions of the run duration).
STUDY_OUTAGE_CLUSTER = "us-west"
STUDY_OUTAGE_DEVICES = ("desktop", "jetson-b")
STUDY_OUTAGE_WINDOW = (0.25, 0.75)

#: Scenario keys, in study order.
FEDERATION_SCENARIOS = ("offset-diurnal", "regional-outage")

#: Routing modes compared in every scenario.
FEDERATION_MODES = (
    ("isolated", "spillover off"),
    ("spillover", "WAN spillover on"),
)


def study_topology(
    rate_rps: float = STUDY_RATE_RPS,
    capacity_rps: float = STUDY_CAPACITY_RPS,
    period_s: float = STUDY_PERIOD_S,
) -> FederationTopology:
    """The study's three-cluster federation.

    Phase offsets split one diurnal period in thirds; WAN links use
    representative inter-region figures (us↔eu 70 ms, eu↔ap 90 ms,
    us↔ap 110 ms one-way).
    """
    return FederationTopology(
        clusters=(
            ClusterSpec(
                "us-west", rate_rps=rate_rps, capacity_rps=capacity_rps,
                phase_offset_s=0.0, region="us-west",
            ),
            ClusterSpec(
                "eu-central", rate_rps=rate_rps, capacity_rps=capacity_rps,
                phase_offset_s=period_s / 3.0, region="eu-central",
            ),
            ClusterSpec(
                "ap-south", rate_rps=rate_rps, capacity_rps=capacity_rps,
                phase_offset_s=2.0 * period_s / 3.0, region="ap-south",
            ),
        ),
        links=(
            WanLink("us-west", "eu-central", latency_s=0.07, bandwidth_mbps=200.0),
            WanLink("eu-central", "ap-south", latency_s=0.09, bandwidth_mbps=150.0),
            WanLink("us-west", "ap-south", latency_s=0.11, bandwidth_mbps=120.0),
        ),
    )


def study_fault_plans(
    scenario: str, duration_s: float = STUDY_DURATION_S
) -> Dict[str, FaultPlan]:
    """Per-cluster fault plans for a scenario key (empty when healthy)."""
    if scenario == "offset-diurnal":
        return {}
    if scenario == "regional-outage":
        start = STUDY_OUTAGE_WINDOW[0] * duration_s
        end = STUDY_OUTAGE_WINDOW[1] * duration_s
        return {
            STUDY_OUTAGE_CLUSTER: FaultPlan.ordered(
                regional_outage(
                    STUDY_OUTAGE_DEVICES, start, end, region=STUDY_OUTAGE_CLUSTER
                )
            )
        }
    raise ValueError(
        f"unknown federation scenario {scenario!r}; expected one of "
        f"{FEDERATION_SCENARIOS}"
    )


def study_runtime(
    *,
    spillover: bool,
    duration_s: float = STUDY_DURATION_S,
    rate_rps: float = STUDY_RATE_RPS,
    capacity_rps: float = STUDY_CAPACITY_RPS,
    engine: str = "flat",
) -> FederationRuntime:
    """A study-configured :class:`FederationRuntime` (admission off: the
    router and the queues, not arrival-time shedding, absorb overload)."""
    return FederationRuntime(
        study_topology(rate_rps, capacity_rps, STUDY_PERIOD_S * duration_s / STUDY_DURATION_S),
        duration_s=duration_s,
        workload_kind="diurnal",
        diurnal_period_s=STUDY_PERIOD_S * duration_s / STUDY_DURATION_S,
        diurnal_amplitude=STUDY_AMPLITUDE,
        slo=SLOPolicy(admission=False),
        engine=engine,
        spillover=spillover,
    )


def run_federation_study(
    duration_s: float = STUDY_DURATION_S,
    seed: int = STUDY_SEED,
    *,
    parallel: bool = False,
    engine: str = "flat",
) -> List[Tuple[str, str, "object"]]:
    """Run every (scenario, mode) cell of the study.

    Returns ``[(scenario, mode key, FederationReport), ...]`` in
    scenario-major, :data:`FEDERATION_MODES`-minor order.  Every report
    has already passed the cross-cluster conservation contract (the merge
    raises otherwise).
    """
    out: List[Tuple[str, str, object]] = []
    for scenario in FEDERATION_SCENARIOS:
        plans = study_fault_plans(scenario, duration_s)
        for key, _ in FEDERATION_MODES:
            runtime = study_runtime(
                spillover=(key == "spillover"), duration_s=duration_s, engine=engine
            )
            out.append(
                (scenario, key, runtime.run(seed, fault_plans=plans, parallel=parallel))
            )
    return out


@dataclass(frozen=True)
class FederationRow:
    """One (scenario, mode) cell of the study."""

    scenario: str
    mode: str
    goodput_rps: float
    p50_s: float
    p95_s: float
    completed: int
    forwarded: int
    rejected: int
    timed_out: int
    slo_attainment: float


def federation_rows(reports) -> List[FederationRow]:
    """Digest ``run_federation_study`` output into display rows."""
    labels = dict(FEDERATION_MODES)
    return [
        FederationRow(
            scenario=scenario,
            mode=labels[key],
            goodput_rps=report.goodput_rps,
            p50_s=report.latency.p50,
            p95_s=report.latency.p95,
            completed=report.completed,
            forwarded=report.forwarded,
            rejected=report.rejected,
            timed_out=report.timed_out,
            slo_attainment=report.slo_attainment,
        )
        for scenario, key, report in reports
    ]


def render_federation(
    duration_s: float = STUDY_DURATION_S,
    seed: int = STUDY_SEED,
    *,
    parallel: bool = False,
) -> str:
    """Render the study (the ``python -m repro federation --study`` artifact)."""
    rows = federation_rows(run_federation_study(duration_s, seed, parallel=parallel))
    table = ExperimentTable(
        f"WAN federation: spillover vs isolated clusters (3 clusters, diurnal "
        f"{STUDY_RATE_RPS:g} rps nominal each, {duration_s:g} s, seed {seed})",
        [
            "scenario", "mode", "goodput (req/s)", "p50 (s)", "p95 (s)",
            "completed", "forwarded", "rejected", "timed out", "SLO att.",
        ],
    )
    for row in rows:
        table.add_row(
            row.scenario, row.mode, row.goodput_rps, row.p50_s, row.p95_s,
            row.completed, row.forwarded, row.rejected, row.timed_out,
            row.slo_attainment,
        )
    table.add_note(
        "clusters peak a third of a period apart (three timezones); "
        f"regional-outage fails {'+'.join(STUDY_OUTAGE_DEVICES)} in "
        f"{STUDY_OUTAGE_CLUSTER} for the middle half of the run"
    )
    table.add_note(
        "latencies are end-to-end: serving latency plus WAN forward+return "
        "for forwarded requests; conservation (per cluster and across the "
        "WAN) is enforced by the merge on every run"
    )
    return table.render()
