"""Table VI: deployment cost and latency across architectures.

For each evaluated architecture: centralized vs. S2M3 per-device parameter
cost (the split saving), and inference time for Centralized-Cloud (GPU
server over the MAN), Centralized-Local (the requesting Jetson; "–" when the
monolith does not fit), and S2M3 on the four edge devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.baselines.centralized import centralized_inference
from repro.core.splitter import split_model
from repro.experiments.reporting import ExperimentTable, format_million, relative_saving
from repro.experiments.runner import DEFAULT_REQUESTER, s2m3_single_request_latency

#: Architectures evaluated in Table VI, in the paper's row order.
TABLE6_MODELS: List[str] = [
    "clip-rn50",
    "clip-rn101",
    "clip-rn50x4",
    "clip-rn50x16",
    "clip-rn50x64",
    "clip-vit-b32",
    "clip-vit-b16",
    "clip-vit-l14",
    "clip-vit-l14-336",
    "encoder-vqa-small",
    "encoder-vqa-large",
    "imagebind",
]

#: Paper-reported values for EXPERIMENTS.md (inference seconds).
PAPER_TABLE6: Dict[str, Dict[str, Optional[float]]] = {
    "clip-rn50": {"cloud": 2.73, "local": 53.23, "s2m3": 2.32},
    "clip-rn101": {"cloud": 2.63, "local": 48.87, "s2m3": 2.39},
    "clip-rn50x4": {"cloud": 2.64, "local": 64.54, "s2m3": 3.07},
    "clip-rn50x16": {"cloud": 2.65, "local": None, "s2m3": 4.56},
    "clip-rn50x64": {"cloud": 2.92, "local": None, "s2m3": 6.50},
    "clip-vit-b32": {"cloud": 2.42, "local": 44.26, "s2m3": 2.49},
    "clip-vit-b16": {"cloud": 2.44, "local": 45.19, "s2m3": 2.48},
    "clip-vit-l14": {"cloud": 2.61, "local": None, "s2m3": 4.46},
    "clip-vit-l14-336": {"cloud": 2.65, "local": None, "s2m3": 4.51},
    "encoder-vqa-small": {"cloud": 1.23, "local": 6.28, "s2m3": 0.50},
    "encoder-vqa-large": {"cloud": 1.50, "local": None, "s2m3": 1.23},
    "imagebind": {"cloud": 2.44, "local": None, "s2m3": 2.34},
}


@dataclass(frozen=True)
class Table6Row:
    model: str
    centralized_params: int
    s2m3_params: int
    saving_percent: float
    cloud_seconds: float
    local_seconds: Optional[float]
    s2m3_seconds: float


def run_table6(models: Optional[List[str]] = None) -> List[Table6Row]:
    """Compute every Table VI row."""
    rows = []
    for name in models if models is not None else TABLE6_MODELS:
        split = split_model(name)
        cloud = centralized_inference(name, "server", DEFAULT_REQUESTER)
        local = centralized_inference(name, DEFAULT_REQUESTER, DEFAULT_REQUESTER)
        s2m3 = s2m3_single_request_latency(name)
        rows.append(
            Table6Row(
                model=name,
                centralized_params=split.total_params,
                s2m3_params=split.max_module_params,
                saving_percent=relative_saving(split.total_params, split.max_module_params),
                cloud_seconds=cloud.inference_seconds,
                local_seconds=local.inference_seconds,
                s2m3_seconds=s2m3,
            )
        )
    return rows


def render_table6(rows: Optional[List[Table6Row]] = None) -> ExperimentTable:
    """Render Table VI with paper-reported values alongside."""
    rows = rows if rows is not None else run_table6()
    table = ExperimentTable(
        title="Table VI: deployment cost and inference latency per architecture",
        headers=[
            "model", "central #param", "S2M3 #param", "saving%",
            "cloud(s)", "paper", "local(s)", "paper", "S2M3(s)", "paper",
        ],
    )
    for row in rows:
        paper = PAPER_TABLE6.get(row.model, {})
        table.add_row(
            row.model,
            format_million(row.centralized_params),
            format_million(row.s2m3_params),
            f"-{row.saving_percent:.0f}%",
            row.cloud_seconds,
            paper.get("cloud"),
            row.local_seconds,
            paper.get("local"),
            row.s2m3_seconds,
            paper.get("s2m3"),
        )
    table.add_note("'–' = monolith does not fit the device (paper's dash cells)")
    return table
