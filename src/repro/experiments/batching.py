"""Footnote 4: batch-inference scaling of the LLM head.

The paper measures LLaVA-Next-7B at batch sizes 1/10/20 taking
1.28/4.90/9.16 s — near-linear beyond a fixed setup cost.  This experiment
regenerates the series from our batch-scaling model and reports the
module-level batching speedup that motivates the Sec. VI-C queueing remedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.catalog import get_model, get_module
from repro.core.routing.batching import BatchAggregator, batched_service_time
from repro.profiles.calibration import BATCH_ANCHORS
from repro.profiles.compute import DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import get_device_profile

MODEL = "llava-next-7b"
#: Footnote 4 measured on an NVIDIA L40S, not the testbed's P40.
DEVICE = "l40s"


@dataclass(frozen=True)
class BatchPoint:
    batch_size: int
    seconds: float
    paper_seconds: Optional[float]
    throughput_speedup: float


def run_batching(batch_sizes: Optional[List[int]] = None) -> List[BatchPoint]:
    model = get_model(MODEL)
    module = get_module(model.head)
    device = get_device_profile(DEVICE)
    aggregator = BatchAggregator(max_batch_size=64)
    paper = dict(BATCH_ANCHORS)
    points = []
    for batch in batch_sizes if batch_sizes is not None else [1, 10, 20]:
        seconds = batched_service_time(DEFAULT_COMPUTE_MODEL, module, device, model, batch)
        speedup = aggregator.speedup(DEFAULT_COMPUTE_MODEL, module, device, model, batch)
        points.append(
            BatchPoint(
                batch_size=batch,
                seconds=seconds,
                paper_seconds=paper.get(batch),
                throughput_speedup=speedup,
            )
        )
    return points


def render_batching(points: Optional[List[BatchPoint]] = None) -> str:
    points = points if points is not None else run_batching()
    lines = ["Footnote 4: LLM-head batch scaling (LLaVA-Next-7B class head)"]
    for point in points:
        paper = f" (paper {point.paper_seconds:.2f}s)" if point.paper_seconds else ""
        lines.append(
            f"batch {point.batch_size:>3}: {point.seconds:.2f}s{paper}, "
            f"throughput x{point.throughput_speedup:.1f}"
        )
    return "\n".join(lines)
