"""Table VIII: zero-shot accuracy under S2M3 vs. reported.

The paper's claim: splitting changes nothing about the computation, so
accuracy is preserved (small deltas in the paper are runtime variability).
We run each (model, benchmark) pair through BOTH pipelines; "S2M3" is the
split pipeline, "centralized" stands in for the reported number, and the
two must agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.reporting import ExperimentTable
from repro.models.evaluate import DEFAULT_BATCH_SIZE, evaluate
from repro.models.zoo import DEFAULT_ZOO, ModelZoo

#: The paper's Table VIII matrix.
TABLE8_PAIRS: List[Tuple[str, str]] = [
    ("clip-vit-b16", "food-101"),
    ("clip-vit-b16", "cifar-10"),
    ("clip-vit-b16", "cifar-100"),
    ("clip-vit-b16", "country-211"),
    ("clip-vit-b16", "flowers-102"),
    ("clip-vit-l14-336", "food-101"),
    ("clip-vit-l14-336", "cifar-10"),
    ("clip-vit-l14-336", "cifar-100"),
    ("clip-vit-l14-336", "country-211"),
    ("clip-vit-l14-336", "flowers-102"),
    ("flint-v0.5-1b", "vqa-v2"),
    ("flint-v0.5-1b", "science-qa"),
    ("flint-v0.5-1b", "text-vqa"),
    ("llava-v1.5-7b", "vqa-v2"),
    ("llava-v1.5-7b", "science-qa"),
    ("llava-v1.5-7b", "text-vqa"),
]

#: Paper-reported accuracies (S2M3 column of Table VIII), percent.
PAPER_TABLE8: Dict[Tuple[str, str], float] = {
    ("clip-vit-b16", "food-101"): 87.7,
    ("clip-vit-b16", "cifar-10"): 90.8,
    ("clip-vit-b16", "cifar-100"): 66.9,
    ("clip-vit-b16", "country-211"): 22.4,
    ("clip-vit-b16", "flowers-102"): 71.0,
    ("clip-vit-l14-336", "food-101"): 93.2,
    ("clip-vit-l14-336", "cifar-10"): 94.9,
    ("clip-vit-l14-336", "cifar-100"): 74.3,
    ("clip-vit-l14-336", "country-211"): 33.9,
    ("clip-vit-l14-336", "flowers-102"): 77.1,
    ("flint-v0.5-1b", "vqa-v2"): 70.2,
    ("flint-v0.5-1b", "science-qa"): 41.2,
    ("flint-v0.5-1b", "text-vqa"): 35.6,
    ("llava-v1.5-7b", "vqa-v2"): 78.1,
    ("llava-v1.5-7b", "science-qa"): 69.4,
    ("llava-v1.5-7b", "text-vqa"): 57.3,
}


@dataclass(frozen=True)
class Table8Row:
    model: str
    benchmark: str
    split_accuracy: float
    centralized_accuracy: float
    paper_accuracy: Optional[float]

    @property
    def split_matches_centralized(self) -> bool:
        """The reproduction's core claim: bit-identical accuracy."""
        return self.split_accuracy == self.centralized_accuracy


def run_table8(
    samples: int = 120,
    pairs: Optional[List[Tuple[str, str]]] = None,
    zoo: Optional[ModelZoo] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> List[Table8Row]:
    """Each (model, benchmark) pair runs the whole sample set through the
    batched pipeline forwards; ``batch_size`` only bounds memory, the
    resulting accuracies are bit-identical to sequential evaluation."""
    zoo = zoo if zoo is not None else DEFAULT_ZOO
    rows = []
    for model, benchmark in pairs if pairs is not None else TABLE8_PAIRS:
        split_result = evaluate(
            model, benchmark, samples=samples, split=True, zoo=zoo, batch_size=batch_size
        )
        central_result = evaluate(
            model, benchmark, samples=samples, split=False, zoo=zoo, batch_size=batch_size
        )
        rows.append(
            Table8Row(
                model=model,
                benchmark=benchmark,
                split_accuracy=split_result.accuracy,
                centralized_accuracy=central_result.accuracy,
                paper_accuracy=PAPER_TABLE8.get((model, benchmark)),
            )
        )
    return rows


def render_table8(rows: Optional[List[Table8Row]] = None, samples: int = 120) -> ExperimentTable:
    rows = rows if rows is not None else run_table8(samples=samples)
    table = ExperimentTable(
        title="Table VIII: zero-shot accuracy, S2M3 (split) vs centralized vs paper",
        headers=["model", "benchmark", "S2M3 %", "centralized %", "paper %", "split==central"],
    )
    for row in rows:
        table.add_row(
            row.model,
            row.benchmark,
            100 * row.split_accuracy,
            100 * row.centralized_accuracy,
            row.paper_accuracy,
            "yes" if row.split_matches_centralized else "NO",
        )
    table.add_note("split and centralized must agree exactly (same modules, lossless transport)")
    return table
