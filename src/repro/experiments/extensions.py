"""Extension studies: the paper's discussion/future-work items, quantified.

- **Compression fallback** (Sec. V-B): quantize a module that fits nowhere.
- **Partitioning fallback** (Sec. V-B): pipeline-split a module that still
  fits nowhere, and price the chain's transfer overhead.
- **Adaptive placement** (Sec. VI-C): reallocation under device churn with
  switching-cost hysteresis.
- **Queue-aware routing + replication** (Sec. V-B replication note).
- **Batched bursts** (Sec. VI-C): module-level aggregation vs FIFO.
- **Energy-aware placement** (Sec. VII future work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cluster.metrics import LatencySummary, summarize
from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import build_testbed
from repro.core.compression import quantize
from repro.core.engine import S2M3Engine
from repro.core.partitioning import fit_oversized_module
from repro.core.placement.adaptive import AdaptivePlacementController, ChurnEvent, simulate_churn
from repro.core.placement.problem import PlacementProblem
from repro.core.routing.batched import execute_batched_burst
from repro.core.routing.latency import LatencyModel
from repro.core.routing.queue_aware import QueueAwareRouter
from repro.core.catalog import get_module
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names, get_device_profile
from repro.profiles.energy import energy_aware_placement, energy_objective
from repro.core.placement.greedy import greedy_placement


# ---------------------------------------------------------------------------
# Compression + partitioning fallbacks
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FallbackReport:
    """What it takes to host an oversized module on a constrained pool."""

    module_name: str
    fits_uncompressed: bool
    compressed_bits: Optional[int]
    compressed_fits: bool
    partition_stages: int
    chain_seconds: float


def run_fallbacks(
    module_name: str = "vicuna-7b",
    device_names: Tuple[str, ...] = ("desktop", "laptop"),
    residual_gb: Tuple[float, float] = (8.0, 9.0),
) -> FallbackReport:
    """Host a 7B LLM (14 GB fp16) when other tasks already ate the memory.

    Desktop and laptop each retain only 8-9 GB for new modules — the
    multi-task regime the paper targets.  Compression alone (int8 = 7 GB)
    fits; pipeline partitioning spans the module across both devices without
    touching the weights.  Both fallbacks are reported.
    """
    module = get_module(module_name)
    devices = [get_device_profile(name) for name in device_names]
    residual = {
        name: int(gigabytes * 1024**3) for name, gigabytes in zip(device_names, residual_gb)
    }
    fits = module.memory_bytes <= max(residual.values())

    # Compression path: least precision loss that fits the residual memory.
    compressed_fits, bits = False, None
    for candidate_bits in (8, 4):
        candidate = quantize(module, candidate_bits)
        if candidate.spec.memory_bytes <= max(residual.values()):
            compressed_fits, bits = True, candidate_bits
            break

    # Partitioning path: split the untouched fp16 module across devices.
    network = Network()
    placement, seconds = fit_oversized_module(
        module, devices, network, residual_bytes=residual
    )
    return FallbackReport(
        module_name=module_name,
        fits_uncompressed=fits,
        compressed_bits=bits,
        compressed_fits=compressed_fits,
        partition_stages=placement.partitioned.stage_count,
        chain_seconds=seconds,
    )


# ---------------------------------------------------------------------------
# Adaptive placement under churn
# ---------------------------------------------------------------------------

def run_churn_study(expected_requests: int = 20):
    """Replay a day-in-the-life churn trace for the retrieval model.

    Epochs: full edge pool -> laptop leaves -> laptop returns (twice, to
    show hysteresis suppressing a churn-flap migration).
    """
    events = [
        ChurnEvent(0.0, tuple(edge_device_names()), "all edge devices up"),
        ChurnEvent(100.0, ("desktop", "laptop", "jetson-a"), "jetson-b leaves (idle device)"),
        ChurnEvent(200.0, ("desktop", "jetson-b", "jetson-a"), "laptop leaves"),
        ChurnEvent(300.0, tuple(edge_device_names()), "laptop returns"),
    ]
    controller = AdaptivePlacementController(Network(), expected_requests=expected_requests)
    return simulate_churn(
        ["clip-vit-b16"], events, requests_per_epoch=expected_requests, controller=controller
    )


# ---------------------------------------------------------------------------
# Queue-aware routing with replication
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RoutingStudyRow:
    router: str
    summary: LatencySummary


def run_queue_aware_study(
    model_name: str = "clip-vit-b16", burst: int = 6
) -> List[RoutingStudyRow]:
    """Replicated deployment + burst: fastest-host vs queue-aware routing."""
    rows = []
    for label in ("fastest-host (Eq. 7)", "queue-aware"):
        cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
        engine = S2M3Engine(cluster, [model_name], replicate=True)
        engine.deploy()
        requests = [engine.request(model_name) for _ in range(burst)]
        router = None
        if label == "queue-aware":
            router = QueueAwareRouter(cluster, engine.latency_model(), engine.placement)
        from repro.core.routing.executor import execute_requests

        result = execute_requests(
            cluster, engine.placement, requests, engine.latency_model(), router=router
        )
        rows.append(RoutingStudyRow(router=label, summary=summarize(result)))
    return rows


# ---------------------------------------------------------------------------
# Batched bursts
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchingStudyRow:
    mode: str
    summary: LatencySummary


def run_batched_burst_study(
    model_name: str = "clip-vit-b16", burst: int = 6
) -> List[BatchingStudyRow]:
    """FIFO one-at-a-time service vs module-level batch aggregation."""
    rows = []
    for mode in ("fifo", "batched"):
        cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
        engine = S2M3Engine(cluster, [model_name])
        engine.deploy()
        requests = [engine.request(model_name) for _ in range(burst)]
        if mode == "fifo":
            result = engine.serve(requests)
        else:
            result = execute_batched_burst(
                cluster, engine.placement, requests, engine.latency_model()
            )
        rows.append(BatchingStudyRow(mode=mode, summary=summarize(result)))
    return rows


# ---------------------------------------------------------------------------
# Streaming throughput (the paper's pipelining note, Sec. V-B)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StreamStudyRow:
    arrival_rate_rps: float
    summary: LatencySummary


def run_stream_study(
    model_name: str = "clip-vit-b16",
    rates: Tuple[float, ...] = (0.1, 0.3, 0.5),
    count: int = 12,
) -> List[StreamStudyRow]:
    """Poisson request streams at rising rates: pipelining sustains
    throughput until the bottleneck module saturates, then queues build.
    """
    from repro.cluster.requests import poisson_workload

    rows = []
    for rate in rates:
        cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
        engine = S2M3Engine(cluster, [model_name])
        engine.deploy()
        stream = poisson_workload(
            [engine.resolve_model(model_name)], DEFAULT_REQUESTER, rate, count, seed=5
        )
        result = engine.serve(stream)
        rows.append(StreamStudyRow(arrival_rate_rps=rate, summary=summarize(result)))
    return rows


# ---------------------------------------------------------------------------
# Energy-aware placement
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EnergyStudyRow:
    objective: str
    latency_seconds: float
    energy_joules: float


def run_energy_study(model_name: str = "clip-vit-b16") -> List[EnergyStudyRow]:
    """Latency-greedy vs energy-aware placement for one request."""
    problem = PlacementProblem.from_models([model_name], edge_device_names())
    network = Network()
    latency_model = LatencyModel(problem, network)
    request = InferenceRequest.for_model(model_name, DEFAULT_REQUESTER)

    rows = []
    for label, placement in [
        ("latency-greedy (paper)", greedy_placement(problem)),
        ("energy-aware (budget 1.5x)", energy_aware_placement(problem, [request], network)),
    ]:
        rows.append(
            EnergyStudyRow(
                objective=label,
                latency_seconds=latency_model.total_latency(request, placement),
                energy_joules=energy_objective([request], placement, latency_model),
            )
        )
    return rows


def render_extensions() -> str:
    """Full extension report for the CLI and benches."""
    lines = ["Extension studies (paper Secs. V-B, VI-C, VII)"]

    report = run_fallbacks()
    lines.append(
        f"\n[fallbacks] {report.module_name} on a memory-constrained desktop+laptop: "
        f"fp16 fits={report.fits_uncompressed}; "
        f"int{report.compressed_bits} fits={report.compressed_fits}; "
        f"pipeline={report.partition_stages} stages, chain={report.chain_seconds:.1f}s"
    )

    lines.append("\n[adaptive placement under churn]")
    for event, decision in run_churn_study():
        verdict = "MIGRATE" if decision.migrate else "stay"
        lines.append(f"  t={event.time:.0f}s {event.description:22s} -> {verdict}: {decision.reason}")

    lines.append("\n[queue-aware routing, replicated deployment, burst of 6]")
    for row in run_queue_aware_study():
        lines.append(
            f"  {row.router:22s} mean={row.summary.mean:.2f}s p95={row.summary.p95:.2f}s"
        )

    lines.append("\n[batched vs FIFO burst of 6]")
    for row in run_batched_burst_study():
        lines.append(f"  {row.mode:8s} mean={row.summary.mean:.2f}s max={row.summary.maximum:.2f}s")

    lines.append("\n[request streams: pipelining until the bottleneck saturates]")
    for row in run_stream_study():
        lines.append(
            f"  rate={row.arrival_rate_rps:.1f}/s mean={row.summary.mean:.2f}s "
            f"p95={row.summary.p95:.2f}s throughput={row.summary.throughput_rps:.2f}/s"
        )

    lines.append("\n[energy-aware placement]")
    for row in run_energy_study():
        lines.append(
            f"  {row.objective:28s} latency={row.latency_seconds:.2f}s "
            f"energy={row.energy_joules:.0f}J"
        )
    return "\n".join(lines)
