"""Ablations of S2M3's design choices (DESIGN.md Sec. 5).

Covers: greedy module-visit order (descending memory vs. ascending),
accumulated completion time (Eq. 5) vs. pure compute time, parallel vs.
sequential routing, replication of hot modules with leftover memory, and
sharing under increasing request pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.variants import ascending_memory_placement, no_accumulation_placement
from repro.core.routing.latency import LatencyModel
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names

#: Workload used for the placement ablations: two tasks sharing encoders.
ABLATION_MODELS = ["clip-vit-b16", "alignment-vitb16"]


@dataclass(frozen=True)
class PlacementAblationRow:
    strategy: str
    objective_seconds: float
    placement: Dict[str, tuple]


def run_placement_ablation(models: Optional[List[str]] = None) -> List[PlacementAblationRow]:
    """Analytic objective of each placement strategy on a shared workload."""
    models = models if models is not None else ABLATION_MODELS
    problem = PlacementProblem.from_models(models, edge_device_names())
    network = Network()
    latency_model = LatencyModel(problem, network)
    requests = [InferenceRequest.for_model(name, DEFAULT_REQUESTER) for name in models]

    strategies: List[tuple] = [
        ("greedy (paper)", greedy_placement),
        ("ascending memory order", ascending_memory_placement),
        ("no Eq.5 accumulation", no_accumulation_placement),
    ]
    rows = []
    for label, strategy in strategies:
        placement = strategy(problem)
        rows.append(
            PlacementAblationRow(
                strategy=label,
                objective_seconds=latency_model.objective(requests, placement),
                placement=placement.as_dict(),
            )
        )
    return rows


@dataclass(frozen=True)
class ReplicationAblationRow:
    label: str
    mean_latency: float
    total_params: int


def run_replication_ablation(
    model_name: str = "clip-vit-b16", concurrent_requests: int = 4
) -> List[ReplicationAblationRow]:
    """Does replicating hot modules into leftover memory cut queueing delay?"""
    rows = []
    for replicate in (False, True):
        cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
        engine = S2M3Engine(cluster, [model_name], replicate=replicate)
        report = engine.deploy()
        requests = [engine.request(model_name) for _ in range(concurrent_requests)]
        result = engine.serve(requests)
        rows.append(
            ReplicationAblationRow(
                label="replicated" if replicate else "single-copy",
                mean_latency=result.mean_latency,
                total_params=report.total_params,
            )
        )
    return rows


@dataclass(frozen=True)
class SharingPressureRow:
    burst_size: int
    shared_mean_latency: float
    unshared_mean_latency: float
    shared_params: int
    unshared_params: int


def run_sharing_pressure(
    models: Optional[List[str]] = None, burst_sizes: Optional[List[int]] = None
) -> List[SharingPressureRow]:
    """The Sec. V memory/latency trade-off as request pressure grows."""
    models = models if models is not None else ["clip-vit-b16", "encoder-vqa-small"]
    rows = []
    for burst in burst_sizes if burst_sizes is not None else [1, 2, 4]:
        stats = {}
        for share in (True, False):
            cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
            engine = S2M3Engine(cluster, models, share=share)
            report = engine.deploy()
            requests = [
                engine.request(models[i % len(models)]) for i in range(burst * len(models))
            ]
            result = engine.serve(requests)
            stats[share] = (result.mean_latency, report.total_params)
        rows.append(
            SharingPressureRow(
                burst_size=burst,
                shared_mean_latency=stats[True][0],
                unshared_mean_latency=stats[False][0],
                shared_params=stats[True][1],
                unshared_params=stats[False][1],
            )
        )
    return rows


def render_ablations() -> str:
    placement_rows = run_placement_ablation()
    table = ExperimentTable(
        title="Ablation: placement strategy (analytic objective, 2-task workload)",
        headers=["strategy", "objective(s)"],
    )
    for row in placement_rows:
        table.add_row(row.strategy, row.objective_seconds)

    replication_rows = run_replication_ablation()
    rep = ExperimentTable(
        title="Ablation: hot-module replication under 4 concurrent requests",
        headers=["variant", "mean latency(s)", "total params"],
    )
    for row in replication_rows:
        rep.add_row(row.label, row.mean_latency, row.total_params)

    pressure_rows = run_sharing_pressure()
    pressure = ExperimentTable(
        title="Ablation: sharing vs dedicated modules under request pressure",
        headers=["burst/task", "shared lat(s)", "unshared lat(s)", "shared params", "unshared params"],
    )
    for row in pressure_rows:
        pressure.add_row(
            row.burst_size,
            row.shared_mean_latency,
            row.unshared_mean_latency,
            row.shared_params,
            row.unshared_params,
        )
    return "\n\n".join([table.render(), rep.render(), pressure.render()])
