"""Replica study: first-class replication across solvers and serving.

Two parts, both beyond the paper (which only replicates with leftover
memory, Sec. V-B's last paragraph):

1. **Solver study** — on a paper-scale multi-source instance, compare the
   analytic cheapest-replica objective of: the single-copy optimum, greedy
   + leftover replication, the replica-aware greedy, and the exact
   replica branch-and-bound (checked against brute-force enumeration).
2. **Serving study** — an overloaded bursty stream served with a
   single-copy deployment, leftover replication, and the serving-layer
   autoscaler (``ServingRuntime(autoscale=True)``): goodput, p50/p95, and
   makespan.

Run with ``python -m repro replicas``.  All latencies are **seconds** of
simulated time; goodput is SLO-met completions per second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement, replicate_with_leftover
from repro.core.placement.problem import PlacementProblem
from repro.core.placement.replicas import (
    replica_aware_greedy,
    replica_brute_force,
    replica_optimal_placement,
)
from repro.core.routing.latency import LatencyModel
from repro.experiments.reporting import ExperimentTable
from repro.profiles.devices import edge_device_names

#: Model mix shared by both studies: three tasks sharing the ViT-B/16 tower.
STUDY_MODELS = ("clip-vit-b16", "encoder-vqa-small", "image-classification-vitb16")


@dataclass(frozen=True)
class SolverStudyRow:
    """One placement strategy priced under cheapest-replica routing."""

    strategy: str
    objective_s: float
    total_copies: int


def run_solver_study(
    models: Sequence[str] = STUDY_MODELS,
    sources: Sequence[str] = ("jetson-a", "desktop", "laptop"),
    max_copies: int = 2,
) -> Tuple[List[SolverStudyRow], bool]:
    """Compare replication strategies on one multi-source instance.

    Returns the per-strategy rows and whether the exact branch-and-bound
    matched brute-force enumeration (placement and objective).
    """
    problem = PlacementProblem.from_models(list(models), edge_device_names())
    network = Network()
    model = LatencyModel(problem, network)
    requests = [
        InferenceRequest.for_model(name, source)
        for name in models
        for source in sources
    ]

    def copies(placement) -> int:
        return sum(len(hosts) for hosts in placement.as_dict().values())

    rows: List[SolverStudyRow] = []
    single = greedy_placement(problem)
    rows.append(
        SolverStudyRow("greedy single-copy", model.replica_objective(requests, single), copies(single))
    )
    leftover = replicate_with_leftover(problem, single, max_copies=max_copies)
    rows.append(
        SolverStudyRow("greedy + leftover replication", model.replica_objective(requests, leftover), copies(leftover))
    )
    aware, aware_objective = replica_aware_greedy(
        problem, requests, network, max_copies=max_copies, tensors=model.tensors
    )
    rows.append(SolverStudyRow("replica-aware greedy", aware_objective, copies(aware)))
    exact, exact_objective = replica_optimal_placement(
        problem, requests, network, max_copies=max_copies, tensors=model.tensors
    )
    rows.append(SolverStudyRow("replica branch-and-bound (exact)", exact_objective, copies(exact)))
    brute, brute_objective = replica_brute_force(
        problem, requests, network, max_copies=max_copies, tensors=model.tensors
    )
    matches = brute_objective == exact_objective and brute.as_dict() == exact.as_dict()
    return rows, matches


#: The serving configurations under study: (key, display label, runtime
#: kwargs).  ``scripts/run_benchmarks.py`` records the SAME study into
#: ``BENCH_replicas.json``, so there is exactly one definition to drift.
SERVING_CONFIGURATIONS = (
    ("single_copy", "single-copy", {"replicate": False}),
    ("leftover", "leftover replication", {"replicate": True}),
    ("autoscale", "autoscale (single-copy start)", {"replicate": False, "autoscale": True}),
)


@dataclass(frozen=True)
class ServingStudyRow:
    """One serving configuration under the overloaded bursty stream."""

    configuration: str
    goodput_rps: float
    p50_s: float
    p95_s: float
    makespan_s: float
    replica_actions: int


def run_serving_study(
    models: Sequence[str] = STUDY_MODELS,
    rate_rps: float = 2.5,
    duration_s: float = 40.0,
    seed: int = 7,
):
    """Overload comparison: single-copy vs leftover vs autoscaled serving.

    Admission is off (everything must be served), so the metrics measure
    raw serving capacity rather than shedding policy.  Returns
    ``[(configuration key, ServingReport), ...]`` in
    :data:`SERVING_CONFIGURATIONS` order.
    """
    from repro.serving import ServingRuntime, SLOPolicy, WorkloadGenerator

    trace = WorkloadGenerator(
        list(models), kind="bursty", rate_rps=rate_rps, duration_s=duration_s, seed=seed
    ).generate()
    return [
        (
            key,
            ServingRuntime(list(models), slo=SLOPolicy(admission=False), **kwargs).run(trace),
        )
        for key, _, kwargs in SERVING_CONFIGURATIONS
    ]


def serving_study_rows(reports) -> List[ServingStudyRow]:
    """Digest ``run_serving_study`` reports into display rows."""
    labels = {key: label for key, label, _ in SERVING_CONFIGURATIONS}
    return [
        ServingStudyRow(
            configuration=labels[key],
            goodput_rps=report.goodput_rps,
            p50_s=report.latency.p50,
            p95_s=report.latency.p95,
            makespan_s=report.latency.makespan,
            replica_actions=sum(1 for s in report.scaling if s.applied),
        )
        for key, report in reports
    ]


def render_replicas() -> str:
    """Render both studies (the ``python -m repro replicas`` artifact)."""
    solver_rows, matches = run_solver_study()
    solver = ExperimentTable(
        "Replica-aware placement (cheapest-replica objective, 9 requests from 3 sources)",
        ["strategy", "objective (s)", "module copies"],
    )
    for row in solver_rows:
        solver.add_row(row.strategy, row.objective_s, row.total_copies)
    solver.add_note(
        "exact branch-and-bound vs brute-force enumeration: "
        + ("MATCH (placement + objective)" if matches else "MISMATCH")
    )
    solver.add_note("max 2 copies per module; memory budget Eq. 4d enforced per device")

    serving_rows = serving_study_rows(run_serving_study())
    serving = ExperimentTable(
        "Serving under bursty overload (2.5 rps nominal, 40 s, admission off)",
        ["configuration", "goodput (req/s)", "p50 (s)", "p95 (s)", "makespan (s)", "scale actions"],
    )
    for row in serving_rows:
        serving.add_row(
            row.configuration, row.goodput_rps, row.p50_s, row.p95_s,
            row.makespan_s, row.replica_actions,
        )
    serving.add_note(
        "autoscale starts single-copy and grows replicas reactively; "
        "load time is charged as switching cost before a new copy serves"
    )
    return solver.render() + "\n\n" + serving.render()
