"""Experiment runners: one module per paper table/figure.

Each runner returns structured rows plus a rendered text table, and is
wrapped by a benchmark in ``benchmarks/`` that regenerates the artifact.
See DESIGN.md's per-experiment index.
"""

from repro.experiments.reporting import ExperimentTable

__all__ = ["ExperimentTable"]
