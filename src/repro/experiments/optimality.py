"""The optimality-rate experiment (Sec. VI-A).

The paper reports that greedy placement achieves the brute-force optimum in
89 of 95 instances (93.7%): 19 (model, benchmark) combinations x 5 trials.
We reproduce the protocol: each trial perturbs per-(module, device) compute
times with lognormal noise — the stand-in for the paper's uncontrolled
home-network and scheduler variability — then compares the greedy
placement's objective against the enumerated optimum.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.optimal import optimal_placement
from repro.core.placement.problem import PlacementProblem
from repro.core.routing.latency import LatencyModel
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names
from repro.utils.seeding import rng_for

#: The paper's 19 (model, benchmark) evaluation combinations.
COMBINATIONS: List[Tuple[str, str]] = [
    ("clip-rn50", "food-101"),
    ("clip-rn101", "food-101"),
    ("clip-rn50x4", "food-101"),
    ("clip-rn50x16", "food-101"),
    ("clip-rn50x64", "food-101"),
    ("clip-vit-b32", "food-101"),
    ("clip-vit-b16", "food-101"),
    ("clip-vit-l14", "food-101"),
    ("clip-vit-l14-336", "food-101"),
    ("clip-vit-b16", "cifar-10"),
    ("clip-vit-b16", "cifar-100"),
    ("clip-vit-b16", "country-211"),
    ("clip-vit-b16", "flowers-102"),
    ("encoder-vqa-small", "coco-retrieval"),
    ("encoder-vqa-large", "coco-retrieval"),
    ("flint-v0.5-1b", "vqa-v2"),
    ("llava-v1.5-7b", "vqa-v2"),
    ("xtuner-phi-3-mini", "vqa-v2"),
    ("imagebind", "audioset-a"),
]

TRIALS_PER_COMBINATION = 5
#: Lognormal sigma of per-(module, device) compute jitter (~6% run-to-run,
#: typical of the paper's uncontrolled home-network testbed).
NOISE_SIGMA = 0.06
#: Greedy counts as optimal when within this relative slack of the optimum.
#: The paper's protocol compares measured wall-clock latencies over noisy
#: trials, so sub-percent objective ties (e.g. the head landing one device
#: over, costing a millisecond of embedding transfer) are indistinguishable
#: from optimal; 2% is well below the run-to-run variance of its testbed.
REL_TOL = 0.02

PAPER_OPTIMAL_RATE = 89 / 95


@dataclass(frozen=True)
class OptimalityTrial:
    model: str
    benchmark: str
    trial: int
    greedy_objective: float
    optimal_objective: float

    @property
    def is_optimal(self) -> bool:
        return self.greedy_objective <= self.optimal_objective * (1 + REL_TOL)


@dataclass
class OptimalityReport:
    trials: List[OptimalityTrial]

    @property
    def optimal_count(self) -> int:
        return sum(trial.is_optimal for trial in self.trials)

    @property
    def rate(self) -> float:
        if not self.trials:
            return 0.0
        return self.optimal_count / len(self.trials)

    def render(self) -> str:
        worst: Dict[str, int] = {}
        for trial in self.trials:
            if not trial.is_optimal:
                worst[trial.model] = worst.get(trial.model, 0) + 1
        lines = [
            "Optimality of greedy placement (Sec. VI-A)",
            f"optimal in {self.optimal_count} / {len(self.trials)} instances "
            f"({100 * self.rate:.1f}%); paper: 89/95 (93.7%)",
        ]
        if worst:
            misses = ", ".join(f"{model} x{count}" for model, count in sorted(worst.items()))
            lines.append(f"suboptimal instances: {misses}")
        return "\n".join(lines)


def run_optimality(
    combinations: Optional[List[Tuple[str, str]]] = None,
    trials: int = TRIALS_PER_COMBINATION,
    noise_sigma: float = NOISE_SIGMA,
) -> OptimalityReport:
    network = Network()
    results = []
    for model_name, benchmark in combinations if combinations is not None else COMBINATIONS:
        base = PlacementProblem.from_models([model_name], edge_device_names())
        for trial in range(trials):
            rng = rng_for("optimality", model_name, benchmark, trial)
            noise = {
                (module.name, device.name): float(rng.lognormal(0.0, noise_sigma))
                for module in base.modules
                for device in base.devices
            }
            # Same modules/devices/models as ``base``; only the noise draw
            # changes per trial, so skip re-running the sharing planner.
            problem = dataclasses.replace(base, compute_noise=noise)
            request = InferenceRequest.for_model(model_name, DEFAULT_REQUESTER)
            latency_model = LatencyModel(problem, network)
            greedy = greedy_placement(problem)
            greedy_objective = latency_model.objective([request], greedy)
            # The solver shares the scorer's cost tensors: one build prices
            # the greedy candidate AND the whole branch-and-bound search.
            _, optimal_objective = optimal_placement(
                problem, [request], network, tensors=latency_model.tensors
            )
            results.append(
                OptimalityTrial(
                    model=model_name,
                    benchmark=benchmark,
                    trial=trial,
                    greedy_objective=greedy_objective,
                    optimal_objective=optimal_objective,
                )
            )
    return OptimalityReport(trials=results)
