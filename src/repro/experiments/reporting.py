"""Text-table rendering for experiment outputs (paper-vs-measured)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def _fmt(value: object) -> str:
    if value is None:
        return "–"  # the paper's marker for "cannot run"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table with aligned text rendering."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[object]:
        """All values of one column, by header name."""
        index = list(self.headers).index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        formatted = [[_fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header), *(len(row[i]) for row in formatted)) if formatted else len(header)
            for i, header in enumerate(self.headers)
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def relative_saving(before: float, after: float) -> float:
    """Percent reduction, e.g. 124M -> 86M is 30.6."""
    if before <= 0:
        return 0.0
    return 100.0 * (1.0 - after / before)


def format_million(params: int) -> str:
    """Parameter count rendered the paper's way."""
    if params >= 1_000_000_000:
        return f"{params / 1e9:.1f}B"
    if params >= 1_000_000:
        return f"{params / 1e6:.0f}M"
    if params >= 1_000:
        return f"{params / 1e3:.0f}K"
    return str(params)
