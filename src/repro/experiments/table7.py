"""Table VII: per-device deployment comparison for CLIP ViT-B/16.

Centralized inference on each testbed device (inference + end-to-end with
model loading) against S2M3 on the edge cluster, with and without parallel
processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.centralized import centralized_inference
from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.experiments.reporting import ExperimentTable, format_million
from repro.experiments.runner import DEFAULT_REQUESTER
from repro.profiles.devices import edge_device_names

MODEL = "clip-vit-b16"

#: Paper-reported (inference, end-to-end) per row.
PAPER_TABLE7: Dict[str, Tuple[float, float]] = {
    "server": (2.44, 13.53),
    "server-cpu": (6.70, 17.78),
    "desktop": (3.46, 4.95),
    "laptop": (3.02, 5.31),
    "jetson-a": (45.19, 60.37),
    "s2m3": (2.48, 4.76),
    "s2m3-no-parallel": (3.03, 5.32),
}


@dataclass(frozen=True)
class Table7Row:
    deployment: str
    params: int
    inference_seconds: float
    end_to_end_seconds: float


def _s2m3_row(parallel: bool) -> Table7Row:
    cluster = build_testbed(edge_device_names(), requester=DEFAULT_REQUESTER)
    engine = S2M3Engine(cluster, [MODEL], parallel=parallel)
    report = engine.deploy()
    result = engine.serve([engine.request(MODEL)])
    latency = result.outcomes[0].latency
    return Table7Row(
        deployment="s2m3" if parallel else "s2m3-no-parallel",
        params=report.max_device_params,
        inference_seconds=latency,
        end_to_end_seconds=latency + report.load_seconds,
    )


def run_table7() -> List[Table7Row]:
    rows = []
    for device in ["server", "server-cpu", "desktop", "laptop", "jetson-a"]:
        result = centralized_inference(MODEL, device, DEFAULT_REQUESTER)
        rows.append(
            Table7Row(
                deployment=device,
                params=result.total_params,
                inference_seconds=result.inference_seconds,
                end_to_end_seconds=result.end_to_end_seconds,
            )
        )
    rows.append(_s2m3_row(parallel=True))
    rows.append(_s2m3_row(parallel=False))
    return rows


def render_table7(rows: Optional[List[Table7Row]] = None) -> ExperimentTable:
    rows = rows if rows is not None else run_table7()
    table = ExperimentTable(
        title="Table VII: CLIP ViT-B/16 deployment cost and latency",
        headers=["deployment", "#param", "inference(s)", "paper", "end-to-end(s)", "paper"],
    )
    for row in rows:
        paper = PAPER_TABLE7.get(row.deployment, (None, None))
        table.add_row(
            row.deployment,
            format_million(row.params),
            row.inference_seconds,
            paper[0],
            row.end_to_end_seconds,
            paper[1],
        )
    return table
