"""Table IX: device-availability ablation for CLIP ViT-B/16.

Varies which devices participate.  The headline: with only edge devices
S2M3 matches the cloud; adding the GPU server to the S2M3 pool *beats* the
cloud, because S2M3 gets both the fast hardware and parallel modalities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.centralized import centralized_inference
from repro.cluster.topology import build_testbed
from repro.core.engine import S2M3Engine
from repro.experiments.reporting import ExperimentTable, format_million
from repro.experiments.runner import DEFAULT_REQUESTER

MODEL = "clip-vit-b16"

#: (label, centralized?, device subset). Requester jetson-a always present.
TABLE9_CONFIGS: List[Tuple[str, bool, Sequence[str]]] = [
    ("centralized server", True, ["server"]),
    ("centralized jetson", True, ["jetson-a"]),
    ("s2m3 two jetsons", False, ["jetson-b", "jetson-a"]),
    ("s2m3 D+L", False, ["desktop", "laptop", "jetson-a"]),
    ("s2m3 D+L+J-B", False, ["desktop", "laptop", "jetson-b", "jetson-a"]),
    ("s2m3 +server", False, ["server", "desktop", "laptop", "jetson-b", "jetson-a"]),
]

PAPER_TABLE9: Dict[str, float] = {
    "centralized server": 2.44,
    "centralized jetson": 45.19,
    "s2m3 two jetsons": 42.70,
    "s2m3 D+L": 2.49,
    "s2m3 D+L+J-B": 2.48,
    "s2m3 +server": 1.74,
}


@dataclass(frozen=True)
class Table9Row:
    label: str
    latency_seconds: Optional[float]
    max_device_params: int
    paper_seconds: Optional[float]


def run_table9() -> List[Table9Row]:
    rows = []
    for label, is_centralized, devices in TABLE9_CONFIGS:
        if is_centralized:
            result = centralized_inference(MODEL, devices[0], DEFAULT_REQUESTER)
            rows.append(
                Table9Row(
                    label=label,
                    latency_seconds=result.inference_seconds,
                    max_device_params=result.total_params,
                    paper_seconds=PAPER_TABLE9.get(label),
                )
            )
            continue
        cluster = build_testbed(list(devices), requester=DEFAULT_REQUESTER)
        engine = S2M3Engine(cluster, [MODEL])
        report = engine.deploy()
        result = engine.serve([engine.request(MODEL)])
        rows.append(
            Table9Row(
                label=label,
                latency_seconds=result.outcomes[0].latency,
                max_device_params=report.max_device_params,
                paper_seconds=PAPER_TABLE9.get(label),
            )
        )
    return rows


def render_table9(rows: Optional[List[Table9Row]] = None) -> ExperimentTable:
    rows = rows if rows is not None else run_table9()
    table = ExperimentTable(
        title="Table IX: device availability (CLIP ViT-B/16, requester Jetson A)",
        headers=["configuration", "latency(s)", "paper", "max #param/device"],
    )
    for row in rows:
        table.add_row(
            row.label, row.latency_seconds, row.paper_seconds, format_million(row.max_device_params)
        )
    return table
