"""Tiny language-model task head for decoder-only VQA and captioning.

The LM receives the vision embedding as a projected *prefix token* plus the
question's tokens, runs a causal transformer, and reads out a refined latent
(calibrated like the encoders).  Answering is candidate ranking — standard
for VQA evaluation — against the benchmark's answer-vocabulary latents, and
the chosen answer is *emitted* as its token sequence (deterministic greedy
decoding through the shared codebook).

LM capacity (width/depth, scaled from the checkpoint's parameter count)
controls how faithfully the latent survives the pass — which is why
Vicuna-7B outscores TinyLlama on the synthetic VQA benchmarks just as in
Table VIII.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.latent import LATENT_DIM, VOCAB_SIZE
from repro.models.layers import Linear, TransformerBlock, sinusoidal_positions
from repro.models.weights import CALIBRATION_SAMPLES, ridge_apply, ridge_apply_rows, ridge_fit
from repro.utils.seeding import rng_for


class TinyAnswerLM:
    """Prefix-conditioned causal transformer with a calibrated latent readout."""

    def __init__(self, name: str, dim: int, depth: int, heads: int = 4) -> None:
        self.name = name
        self.dim = dim
        rng = rng_for("lm-backbone", name)
        self.prefix_proj = Linear.init(rng, LATENT_DIM, dim)
        self.token_table = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(VOCAB_SIZE, dim))
        self.blocks: List[TransformerBlock] = [
            TransformerBlock.init(rng, dim, heads) for _ in range(depth)
        ]
        self.readout: Optional[np.ndarray] = None  # fitted by calibrate()

    # ------------------------------------------------------------------
    # Forward pass
    # ------------------------------------------------------------------
    def hidden(self, vision_latent: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """Final hidden state (last position) of the causal pass."""
        prefix = self.prefix_proj(vision_latent)[None, :]
        tokens = self.token_table[np.asarray(question_tokens, dtype=int)]
        sequence = np.vstack([prefix, tokens])
        sequence = sequence + sinusoidal_positions(sequence.shape[0], self.dim)
        for block in self.blocks:
            sequence = block(sequence, causal=True)
        return sequence[-1]

    def hidden_batch(self, vision_latents: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """Final hidden states for (batch, latent) x (batch, Q) inputs.

        One causal transformer forward over the whole batch; row ``i`` is
        bit-identical to ``hidden(vision_latents[i], question_tokens[i])``.
        """
        prefix = self.prefix_proj.rows(vision_latents)  # (batch, dim), row-exact
        tokens = self.token_table[np.asarray(question_tokens, dtype=int)]
        sequence = np.concatenate([prefix[:, None, :], tokens], axis=1)
        sequence = sequence + sinusoidal_positions(sequence.shape[1], self.dim)
        for block in self.blocks:
            sequence = block(sequence, causal=True)
        return sequence[:, -1]

    def refined_latent(self, vision_latent: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """The LM's belief about the image concept after reading the question."""
        if self.readout is None:
            raise RuntimeError(f"LM {self.name!r} is not calibrated")
        return ridge_apply(self.readout, self.hidden(vision_latent, question_tokens))

    def refined_latent_batch(
        self, vision_latents: np.ndarray, question_tokens: np.ndarray
    ) -> np.ndarray:
        """Batched :meth:`refined_latent`; row-exact."""
        if self.readout is None:
            raise RuntimeError(f"LM {self.name!r} is not calibrated")
        return ridge_apply_rows(self.readout, self.hidden_batch(vision_latents, question_tokens))

    def answer(
        self,
        vision_latent: np.ndarray,
        question_tokens: np.ndarray,
        answer_latents: np.ndarray,
    ) -> int:
        """Rank the answer vocabulary; returns the winning answer index."""
        refined = self.refined_latent(vision_latent, question_tokens)
        norms = np.linalg.norm(answer_latents, axis=1) * (np.linalg.norm(refined) + 1e-12)
        scores = answer_latents @ refined / (norms + 1e-12)
        return int(np.argmax(scores))

    def answer_batch(
        self,
        vision_latents: np.ndarray,
        question_tokens: np.ndarray,
        answer_latents: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`answer`: (batch,) winning answer indices.

        The candidate scoring keeps each query its own matvec-shaped GEMM
        slice, so every index matches the sequential ranking exactly.
        """
        refined = self.refined_latent_batch(vision_latents, question_tokens)  # (batch, L)
        cand_norms = np.linalg.norm(answer_latents, axis=1)
        # Per-row 1-D norms, matching the sequential call bit-for-bit (the
        # axis= reduction differs in the last ulp from BLAS nrm2).
        query_norms = np.array([np.linalg.norm(row) for row in refined])
        norms = cand_norms[None, :] * (query_norms[:, None] + 1e-12)
        dots = np.matmul(answer_latents, refined[:, :, None])[:, :, 0]
        scores = dots / (norms + 1e-12)
        return np.argmax(scores, axis=1)

    def generate(
        self,
        vision_latent: np.ndarray,
        question_tokens: np.ndarray,
        answer_latents: np.ndarray,
        verbalize,
    ) -> np.ndarray:
        """Emit the chosen answer's token sequence (greedy decoding)."""
        choice = self.answer(vision_latent, question_tokens, answer_latents)
        return verbalize(answer_latents[choice])

    def generate_batch(
        self,
        vision_latents: np.ndarray,
        question_tokens: np.ndarray,
        answer_latents: np.ndarray,
        verbalize,
    ) -> List[np.ndarray]:
        """Batched :meth:`generate`: one emitted token sequence per sample."""
        choices = self.answer_batch(vision_latents, question_tokens, answer_latents)
        return [verbalize(answer_latents[int(choice)]) for choice in choices]

    # ------------------------------------------------------------------
    # Calibration (pseudo-pretraining)
    # ------------------------------------------------------------------
    def calibrate(self, samples: int = CALIBRATION_SAMPLES // 2) -> None:
        """Fit the readout so the hidden state recovers the prefix latent.

        Training pairs are (noisy latent prefix + random question) -> clean
        latent, drawn deterministically from the LM's name — benchmark
        classes are never seen.
        """
        rng = rng_for("lm-calibration", self.name)
        latents = rng.normal(0.0, 1.0, size=(samples, LATENT_DIM))
        latents /= np.linalg.norm(latents, axis=1, keepdims=True)
        noisy_rows = []
        questions = []
        for latent in latents:
            # Light prefix jitter regularizes the readout without flattening
            # the fitted map (heavier jitter measurably hurts recovery).
            # RNG draws stay in the original per-sample order.
            noisy_rows.append(latent + rng.normal(0.0, 0.05, size=LATENT_DIM))
            questions.append(rng.integers(0, VOCAB_SIZE, size=8))
        # One batched causal forward; bit-identical to the sequential loop.
        hidden = self.hidden_batch(np.stack(noisy_rows), np.stack(questions))
        self.readout = ridge_fit(hidden, latents)
