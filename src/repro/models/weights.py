"""Deterministic pseudo-pretraining for the tiny numpy modules.

Backbones are randomly initialized from the module's *name* (stable across
processes).  The output projection of every encoder is then *calibrated*:
we draw random latents, render them through the shared generative model of
:mod:`repro.datasets.latent`, push the renders through the backbone, and
solve a ridge regression from backbone features to the true latents.

This mirrors what contrastive pretraining gives real CLIP towers — a map
from raw observations into the shared embedding space — without requiring
gradient training.  Crucially it is *benchmark-agnostic*: calibration never
sees class prototypes, so evaluation is genuinely zero-shot.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.utils.seeding import rng_for

#: Number of random latents used for calibration.
CALIBRATION_SAMPLES = 640
#: Ridge regularization strength.
RIDGE_LAMBDA = 1e-3


def ridge_fit(features: np.ndarray, targets: np.ndarray, reg: float = RIDGE_LAMBDA) -> np.ndarray:
    """Solve ``argmin_W ||F W - Z||^2 + reg ||W||^2``; returns (F_dim+1, Z_dim).

    A bias column is appended to ``features`` internally, so apply the
    result with :func:`ridge_apply`.
    """
    if features.ndim != 2 or targets.ndim != 2:
        raise ValueError("features and targets must be 2-D")
    if features.shape[0] != targets.shape[0]:
        raise ValueError("features and targets disagree on sample count")
    augmented = np.hstack([features, np.ones((features.shape[0], 1))])
    gram = augmented.T @ augmented
    gram += reg * np.eye(gram.shape[0])
    return np.linalg.solve(gram, augmented.T @ targets)


def ridge_apply(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Apply a :func:`ridge_fit` solution to features (1-D or 2-D)."""
    single = features.ndim == 1
    if single:
        features = features[None, :]
    augmented = np.hstack([features, np.ones((features.shape[0], 1))])
    out = augmented @ weights
    return out[0] if single else out


def ridge_apply_rows(weights: np.ndarray, features: np.ndarray) -> np.ndarray:
    """Apply a :func:`ridge_fit` solution to each row of ``(batch, F)``.

    Unlike the plain 2-D :func:`ridge_apply` (one big GEMM), this keeps each
    row its own ``(1, F+1)`` GEMM slice of a stacked 3-D matmul, so row ``i``
    of the result is **bit-identical** to ``ridge_apply(weights, features[i])``
    regardless of the batch size.  The batched inference paths rely on this
    for the exact batched == sequential guarantee.
    """
    if features.ndim != 2:
        raise ValueError("features must be 2-D (batch, F)")
    augmented = np.concatenate([features, np.ones((features.shape[0], 1))], axis=1)
    return np.matmul(augmented[:, None, :], weights)[:, 0, :]


def calibrate_projection(
    backbone_features: Callable[[np.ndarray], np.ndarray],
    render: Callable[[np.ndarray], np.ndarray],
    latent_dim: int,
    seed_name: str,
    samples: int = CALIBRATION_SAMPLES,
    observation_noise: float = 0.0,
    backbone_features_batch: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Fit an encoder's output projection: features(render(z)) -> z.

    ``seed_name`` makes the calibration set deterministic per module, so a
    shared module has *identical* weights everywhere it is reused — the
    bit-equality the sharing architecture relies on.

    ``backbone_features_batch`` optionally pushes all rendered observations
    through the backbone as ONE batched forward.  Renders and noise draws
    keep the exact per-sample RNG order, and the batched forwards are
    bit-identical to the sequential ones, so the fitted projection has the
    same bits either way — batching is purely a speedup.
    """
    rng = rng_for("calibration", seed_name)
    latents = rng.normal(0.0, 1.0, size=(samples, latent_dim))
    latents /= np.linalg.norm(latents, axis=1, keepdims=True)
    observations = []
    for latent in latents:
        observation = render(latent)
        if observation_noise > 0:
            observation = observation + rng.normal(0.0, observation_noise, size=observation.shape)
        observations.append(observation)
    if backbone_features_batch is not None:
        features = backbone_features_batch(np.stack(observations))
    else:
        features = np.stack([backbone_features(observation) for observation in observations])
    return ridge_fit(features, latents)
