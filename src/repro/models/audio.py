"""Tiny audio encoder: clip vector -> token grid -> transformer -> pool."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.latent import AUDIO_DIM
from repro.models.layers import Linear, TransformerBlock, sinusoidal_positions
from repro.models.weights import ridge_apply, ridge_apply_rows
from repro.utils.seeding import rng_for

#: The clip vector is reshaped into this many "spectrogram frame" tokens.
AUDIO_TOKENS = 16


class TinyAudioEncoder:
    """Encodes an :data:`AUDIO_DIM`-vector clip into the shared latent space."""

    def __init__(self, name: str, dim: int, depth: int, heads: int = 4) -> None:
        if AUDIO_DIM % AUDIO_TOKENS != 0:
            raise ValueError("AUDIO_DIM must be divisible by AUDIO_TOKENS")
        self.name = name
        self.dim = dim
        rng = rng_for("audio-backbone", name)
        frame = AUDIO_DIM // AUDIO_TOKENS
        self.embed = Linear.init(rng, frame, dim)
        self.positions = sinusoidal_positions(AUDIO_TOKENS, dim)
        self.blocks: List[TransformerBlock] = [
            TransformerBlock.init(rng, dim, heads) for _ in range(depth)
        ]
        self.projection: Optional[np.ndarray] = None

    def features(self, clip: np.ndarray) -> np.ndarray:
        frames = clip.reshape(AUDIO_TOKENS, -1)
        tokens = self.embed(frames) + self.positions
        for block in self.blocks:
            tokens = block(tokens)
        return tokens.mean(axis=0)

    def features_batch(self, clips: np.ndarray) -> np.ndarray:
        """Backbone features for a (batch, AUDIO_DIM) stack -> (batch, dim)."""
        batch = clips.shape[0]
        frames = clips.reshape(batch, AUDIO_TOKENS, -1)
        tokens = self.embed(frames) + self.positions
        for block in self.blocks:
            tokens = block(tokens)
        return tokens.mean(axis=1)

    def __call__(self, clip: np.ndarray) -> np.ndarray:
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply(self.projection, self.features(clip))

    def embed_batch(self, clips: np.ndarray) -> np.ndarray:
        """Embed a (batch, AUDIO_DIM) stack -> (batch, latent), row-exact."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply_rows(self.projection, self.features_batch(clips))
