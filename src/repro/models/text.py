"""Tiny text encoder: token embeddings + transformer + per-position readout.

Two design points mirror real language towers:

- the token-embedding table is *pretrained*: each token's first two channels
  carry the codebook values it denotes (real embeddings likewise encode
  token semantics), with the remaining channels random;
- features concatenate all positions rather than mean-pooling, because the
  synthetic codebook (like natural language) is position-sensitive — token
  ``i`` describes latent dimensions ``2i, 2i+1``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.latent import TOKENS_PER_PROMPT, VOCAB_SIZE, _TEXT_BINS
from repro.models.layers import TransformerBlock, sinusoidal_positions
from repro.models.weights import ridge_apply, ridge_apply_rows
from repro.utils.seeding import rng_for


def _pretrained_token_table(rng: np.random.Generator, dim: int) -> np.ndarray:
    """Embedding table whose first two channels carry codebook values."""
    table = rng.normal(0.0, 1.0 / np.sqrt(dim), size=(VOCAB_SIZE, dim))
    bins = _TEXT_BINS
    tokens = np.arange(VOCAB_SIZE)
    centers_a = ((tokens // bins) + 0.5) / bins * 2.0 - 1.0
    centers_b = ((tokens % bins) + 0.5) / bins * 2.0 - 1.0
    table[:, 0] = centers_a
    table[:, 1] = centers_b
    return table


def pad_token_rows(tokens: np.ndarray) -> np.ndarray:
    """Pad/truncate token sequences to :data:`TOKENS_PER_PROMPT`.

    THE canonical rule every text path shares — the encoder forwards and
    the serving-side batch aggregation must normalize identically, or a
    mixed-length batch would diverge from per-sample encoding.  Accepts a
    single 1-D sequence or a (batch, any_len) stack; pads with token 0.
    """
    ids = np.asarray(tokens, dtype=int)
    single = ids.ndim == 1
    if single:
        ids = ids[None, :]
    batch, length = ids.shape
    if length < TOKENS_PER_PROMPT:
        pad = np.zeros((batch, TOKENS_PER_PROMPT - length), dtype=int)
        ids = np.concatenate([ids, pad], axis=1)
    ids = ids[:, :TOKENS_PER_PROMPT]
    return ids[0] if single else ids


class TinyTextEncoder:
    """Encodes a token-id sequence into the shared latent space."""

    def __init__(self, name: str, dim: int, depth: int, heads: int = 4) -> None:
        self.name = name
        self.dim = dim
        rng = rng_for("text-backbone", name)
        self.token_table = _pretrained_token_table(rng, dim)
        self.blocks: List[TransformerBlock] = [
            TransformerBlock.init(rng, dim, heads) for _ in range(depth)
        ]
        self.projection: Optional[np.ndarray] = None

    def features(self, tokens: np.ndarray) -> np.ndarray:
        """Backbone features for one token sequence -> (positions * dim,).

        Sequences are padded/truncated to :data:`TOKENS_PER_PROMPT` so the
        feature width (and thus the calibrated projection) is fixed.
        """
        ids = pad_token_rows(np.asarray(tokens, dtype=int))
        embedded = self.token_table[ids]
        # Residual skip around the transformer keeps the (informative) raw
        # embeddings visible to the linear readout.
        hidden = embedded + sinusoidal_positions(embedded.shape[0], self.dim)
        for block in self.blocks:
            hidden = block(hidden)
        combined = np.concatenate([embedded, hidden], axis=1)
        return combined.reshape(-1)

    def features_batch(self, prompts: np.ndarray) -> np.ndarray:
        """Backbone features for (batch, tokens) sequences, row-exact.

        Applies the same pad/truncate rule as :meth:`features` per row, then
        runs ONE batched transformer forward over the stack.
        """
        ids = np.asarray(prompts, dtype=int)
        if ids.ndim != 2:
            raise ValueError("prompts must be 2-D (batch, tokens)")
        ids = pad_token_rows(ids)
        embedded = self.token_table[ids]
        hidden = embedded + sinusoidal_positions(embedded.shape[1], self.dim)
        for block in self.blocks:
            hidden = block(hidden)
        combined = np.concatenate([embedded, hidden], axis=-1)
        return combined.reshape(ids.shape[0], -1)

    def __call__(self, tokens: np.ndarray) -> np.ndarray:
        """Embed one prompt into the shared latent space."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply(self.projection, self.features(tokens))

    def embed_batch(self, prompts: np.ndarray) -> np.ndarray:
        """Embed (batch, tokens) prompts -> (batch, latent), row-exact."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply_rows(self.projection, self.features_batch(prompts))

    def encode_prompt_set(self, prompts: np.ndarray) -> np.ndarray:
        """Embed a (num_prompts, tokens) prompt set -> (num_prompts, latent).

        One batched forward; each row is bit-identical to ``self(prompt)``.
        """
        return self.embed_batch(prompts)
