"""Tiny vision encoders: a ViT-style patch transformer and a ResNet-style CNN.

Capacity (width/depth) scales with the catalogued module's parameter count,
so larger paper checkpoints (ViT-L vs. ViT-B) genuinely embed better — the
mechanism behind Table VIII's accuracy ordering.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datasets.latent import IMAGE_SHAPE
from repro.models.layers import (
    Conv2d,
    Linear,
    TransformerBlock,
    gelu,
    global_avg_pool,
    relu,
    sinusoidal_positions,
)
from repro.models.weights import ridge_apply, ridge_apply_rows
from repro.utils.seeding import rng_for


class TinyViTEncoder:
    """Patchify -> linear embed -> transformer blocks -> mean pool.

    Both encoders expose a batched forward (:meth:`features_batch` /
    :meth:`embed_batch`) that is bit-identical to looping the per-sample
    methods — the batch is a pure stacking axis through every layer.
    """

    def __init__(self, name: str, dim: int, depth: int, heads: int = 4, patch: int = 8) -> None:
        channels, height, width = IMAGE_SHAPE
        if height % patch != 0 or width % patch != 0:
            raise ValueError(f"patch {patch} does not tile image {IMAGE_SHAPE}")
        self.name = name
        self.dim = dim
        self.patch = patch
        rng = rng_for("vit-backbone", name)
        patch_dim = channels * patch * patch
        self.embed = Linear.init(rng, patch_dim, dim)
        tokens = (height // patch) * (width // patch)
        self.positions = sinusoidal_positions(tokens, dim)
        self.blocks: List[TransformerBlock] = [
            TransformerBlock.init(rng, dim, heads) for _ in range(depth)
        ]
        self.projection: Optional[np.ndarray] = None  # set by calibration

    def features(self, image: np.ndarray) -> np.ndarray:
        """Backbone features for one (C, H, W) image -> (dim,)."""
        channels, height, width = image.shape
        p = self.patch
        patches = []
        for i in range(0, height, p):
            for j in range(0, width, p):
                patches.append(image[:, i:i + p, j:j + p].ravel())
        tokens = self.embed(np.stack(patches)) + self.positions
        for block in self.blocks:
            tokens = block(tokens)
        return tokens.mean(axis=0)

    def features_batch(self, images: np.ndarray) -> np.ndarray:
        """Backbone features for a (batch, C, H, W) stack -> (batch, dim)."""
        batch, channels, height, width = images.shape
        p = self.patch
        patches = []
        for i in range(0, height, p):
            for j in range(0, width, p):
                patches.append(images[:, :, i:i + p, j:j + p].reshape(batch, -1))
        tokens = self.embed(np.stack(patches, axis=1)) + self.positions
        for block in self.blocks:
            tokens = block(tokens)
        return tokens.mean(axis=1)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        """Embed one image into the shared latent space."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply(self.projection, self.features(image))

    def embed_batch(self, images: np.ndarray) -> np.ndarray:
        """Embed a (batch, C, H, W) stack -> (batch, latent), row-exact."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply_rows(self.projection, self.features_batch(images))


class TinyResNetEncoder:
    """A small conv stack with residual-style accumulation + global pooling."""

    def __init__(self, name: str, channels: int, depth: int = 2) -> None:
        self.name = name
        rng = rng_for("resnet-backbone", name)
        in_c = IMAGE_SHAPE[0]
        self.convs: List[Conv2d] = []
        current = in_c
        for level in range(depth):
            out_c = channels * (level + 1)
            self.convs.append(Conv2d.init(rng, current, out_c, kernel=3, stride=2))
            current = out_c
        self.head = Linear.init(rng, current, channels * depth * 2)
        self.dim = channels * depth * 2
        self.projection: Optional[np.ndarray] = None

    def features(self, image: np.ndarray) -> np.ndarray:
        x = image
        for conv in self.convs:
            x = relu(conv(x))
        pooled = global_avg_pool(x)
        return gelu(self.head(pooled))

    def features_batch(self, images: np.ndarray) -> np.ndarray:
        """Backbone features for a (batch, C, H, W) stack -> (batch, dim)."""
        x = images
        for conv in self.convs:
            x = relu(conv(x))
        pooled = global_avg_pool(x)
        # Row-wise head keeps each sample's GEMM shape (bit-exactness).
        return gelu(self.head.rows(pooled))

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply(self.projection, self.features(image))

    def embed_batch(self, images: np.ndarray) -> np.ndarray:
        """Embed a (batch, C, H, W) stack -> (batch, latent), row-exact."""
        if self.projection is None:
            raise RuntimeError(f"encoder {self.name!r} is not calibrated")
        return ridge_apply_rows(self.projection, self.features_batch(images))
