"""Task heads: cosine similarity, InfoNCE matching, linear classifiers.

The analytic heads (cosine, InfoNCE) are parameter-free, matching the
paper's Table V.  Classifier heads are benchmark-trained linear probes —
faithful to the paper, whose encoder-VQA classifier and Food-101 classifier
are likewise task-specific trained heads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.weights import ridge_apply, ridge_apply_rows, ridge_fit


def cosine_scores(query: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Cosine similarity of one query against rows of ``candidates``."""
    q_norm = np.linalg.norm(query) + 1e-12
    c_norms = np.linalg.norm(candidates, axis=1) + 1e-12
    return candidates @ query / (c_norms * q_norm)


def cosine_scores_batch(queries: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """(batch, N) cosine scores; row ``i`` bit-matches ``cosine_scores(queries[i], ...)``.

    Two exactness details: each query keeps its own matvec-shaped GEMM slice
    (stacked 3-D matmul) instead of one ``candidates @ queries.T`` GEMM, and
    per-query norms use the same 1-D ``np.linalg.norm`` call as the
    sequential path (the ``axis=``-reduction variant differs in the last
    ulp from BLAS ``nrm2``).
    """
    q_norms = np.array([np.linalg.norm(query) for query in queries]) + 1e-12
    c_norms = np.linalg.norm(candidates, axis=1) + 1e-12
    dots = np.matmul(candidates, queries[:, :, None])[:, :, 0]  # (batch, N)
    return dots / (c_norms[None, :] * q_norms[:, None])


class CosineSimilarityHead:
    """Zero-shot retrieval head: rank candidate text embeddings for an image."""

    name = "cosine-similarity"

    def rank(self, image_embedding: np.ndarray, text_embeddings: np.ndarray) -> int:
        """Index of the best-matching candidate."""
        return int(np.argmax(cosine_scores(image_embedding, text_embeddings)))

    def rank_batch(self, image_embeddings: np.ndarray, text_embeddings: np.ndarray) -> np.ndarray:
        """(batch,) best-candidate indices; bit-exact vs per-sample :meth:`rank`."""
        return np.argmax(cosine_scores_batch(image_embeddings, text_embeddings), axis=1)

    def scores(self, image_embedding: np.ndarray, text_embeddings: np.ndarray) -> np.ndarray:
        return cosine_scores(image_embedding, text_embeddings)

    def scores_batch(self, image_embeddings: np.ndarray, text_embeddings: np.ndarray) -> np.ndarray:
        return cosine_scores_batch(image_embeddings, text_embeddings)


class InfoNCEHead:
    """Cross-modal alignment head: symmetric InfoNCE over an embedding batch."""

    name = "infonce"

    def __init__(self, temperature: float = 0.07) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.temperature = temperature

    def similarity_matrix(self, side_a: np.ndarray, side_b: np.ndarray) -> np.ndarray:
        """(N, N) cosine similarities between two embedding batches."""
        a = side_a / (np.linalg.norm(side_a, axis=1, keepdims=True) + 1e-12)
        b = side_b / (np.linalg.norm(side_b, axis=1, keepdims=True) + 1e-12)
        return a @ b.T

    def match_accuracy(self, side_a: np.ndarray, side_b: np.ndarray) -> float:
        """Fraction of rows whose diagonal entry wins — alignment accuracy."""
        sims = self.similarity_matrix(side_a, side_b)
        return float(np.mean(np.argmax(sims, axis=1) == np.arange(sims.shape[0])))

    def loss(self, side_a: np.ndarray, side_b: np.ndarray) -> float:
        """Symmetric InfoNCE loss (for completeness; lower = better aligned)."""
        sims = self.similarity_matrix(side_a, side_b) / self.temperature
        n = sims.shape[0]
        log_probs_ab = sims - _logsumexp(sims, axis=1)
        log_probs_ba = sims - _logsumexp(sims, axis=0)
        diag = np.arange(n)
        return float(-(log_probs_ab[diag, diag].mean() + log_probs_ba[diag, diag].mean()) / 2)


def _logsumexp(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return np.max(x, axis=axis, keepdims=True) + np.log(
        np.sum(np.exp(shifted), axis=axis, keepdims=True)
    )


class LinearClassifierHead:
    """A trained linear probe over (concatenated) embeddings."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.weights: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray, labels: np.ndarray, num_classes: int) -> None:
        """Ridge-fit to one-hot labels (the linear-probe training)."""
        one_hot = np.eye(num_classes)[np.asarray(labels, dtype=int)]
        self.weights = ridge_fit(features, one_hot)

    def predict(self, features: np.ndarray) -> int:
        """Predicted class for one feature vector."""
        if self.weights is None:
            raise RuntimeError(f"classifier {self.name!r} is not fitted")
        return int(np.argmax(ridge_apply(self.weights, features)))

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """(batch,) predicted classes; bit-exact vs per-row :meth:`predict`."""
        return np.argmax(self.logits_batch(features), axis=1)

    def logits(self, features: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError(f"classifier {self.name!r} is not fitted")
        return ridge_apply(self.weights, features)

    def logits_batch(self, features: np.ndarray) -> np.ndarray:
        """(batch, classes) logits with row-exact GEMM slicing."""
        if self.weights is None:
            raise RuntimeError(f"classifier {self.name!r} is not fitted")
        return ridge_apply_rows(self.weights, features)
