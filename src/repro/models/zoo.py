"""The model zoo: executable numpy modules built from catalog specs.

Capacity (width/depth) scales with the catalogued checkpoint's parameter
count, and executable modules are **cached by module name** — so two models
sharing ``clip-vit-b16-vision`` get the *same object*, making the sharing
architecture real at the numeric level: identical weights, identical
outputs, zero marginal build cost (the paper's Insight 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.catalog import get_model, get_module
from repro.core.models import ModelSpec
from repro.core.modules import FAMILY_CNN, ModuleKind, ModuleSpec
from repro.datasets.latent import LATENT_DIM, LatentConceptSpace
from repro.models.audio import TinyAudioEncoder
from repro.models.heads import CosineSimilarityHead, InfoNCEHead, LinearClassifierHead
from repro.models.lm import TinyAnswerLM
from repro.models.text import TinyTextEncoder
from repro.models.vision import TinyResNetEncoder, TinyViTEncoder
from repro.models.weights import calibrate_projection
from repro.utils.errors import ConfigurationError

#: Canonical space used only for its modality renders (render matrices and
#: the text codebook are independent of the class count).
_CANONICAL = LatentConceptSpace(num_classes=2)

#: Observation noise injected during encoder calibration.  Pretraining with
#: noise makes the encoders robust (like real training-set augmentation);
#: without it the readout overfits the clean render and collapses under the
#: benchmarks' sensor noise.
_CALIBRATION_OBS_NOISE = 0.3


def _capacity(params: int) -> Tuple[int, int]:
    """(dim, depth) for an encoder, scaled from checkpoint parameters."""
    millions = params / 1e6
    if millions < 60:
        return 32, 2
    if millions < 100:
        return 48, 2
    if millions < 200:
        return 64, 2
    if millions < 350:
        return 96, 2
    return 128, 3


def _cnn_channels(params: int) -> int:
    millions = params / 1e6
    if millions < 60:
        return 12
    if millions < 100:
        return 16
    if millions < 200:
        return 24
    return 32


def _lm_capacity(params: int) -> Tuple[int, int]:
    """(dim, depth) for LLM heads: bigger checkpoints refine latents better."""
    millions = params / 1e6
    if millions < 500:  # GPT-2 class
        return 32, 2
    if millions < 2_000:  # TinyLlama class
        return 48, 2
    if millions < 5_000:  # Phi-3-Mini class
        return 64, 2
    if millions < 10_000:  # 7B class
        return 96, 2
    return 128, 3  # 13B class


class ModelZoo:
    """Builds (and caches) executable modules and bundles them into models."""

    def __init__(self) -> None:
        self._cache: Dict[str, object] = {}

    def module(self, module: "ModuleSpec | str"):
        """The executable for a catalog module; cached by name (= shared)."""
        spec = get_module(module) if isinstance(module, str) else module
        if spec.name in self._cache:
            return self._cache[spec.name]
        built = self._build(spec)
        self._cache[spec.name] = built
        return built

    def _build(self, spec: ModuleSpec):
        kind = spec.kind
        if kind is ModuleKind.VISION_ENCODER:
            if spec.family == FAMILY_CNN:
                encoder = TinyResNetEncoder(spec.name, channels=_cnn_channels(spec.params))
            else:
                dim, depth = _capacity(spec.params)
                encoder = TinyViTEncoder(spec.name, dim=dim, depth=depth)
            encoder.projection = calibrate_projection(
                encoder.features,
                _CANONICAL.render_image,
                LATENT_DIM,
                seed_name=spec.name,
                observation_noise=_CALIBRATION_OBS_NOISE,
                backbone_features_batch=encoder.features_batch,
            )
            return encoder
        if kind is ModuleKind.TEXT_ENCODER:
            dim, depth = _capacity(spec.params)
            encoder = TinyTextEncoder(spec.name, dim=dim, depth=depth)
            encoder.projection = calibrate_projection(
                encoder.features,
                _CANONICAL.tokens_from_latent,
                LATENT_DIM,
                seed_name=spec.name,
                backbone_features_batch=encoder.features_batch,
            )
            return encoder
        if kind is ModuleKind.AUDIO_ENCODER:
            dim, depth = _capacity(spec.params)
            encoder = TinyAudioEncoder(spec.name, dim=dim, depth=depth)
            encoder.projection = calibrate_projection(
                encoder.features,
                _CANONICAL.render_audio,
                LATENT_DIM,
                seed_name=spec.name,
                observation_noise=_CALIBRATION_OBS_NOISE,
                backbone_features_batch=encoder.features_batch,
            )
            return encoder
        if kind is ModuleKind.LANGUAGE_MODEL:
            dim, depth = _lm_capacity(spec.params)
            lm = TinyAnswerLM(spec.name, dim=dim, depth=depth)
            lm.calibrate()
            return lm
        if kind is ModuleKind.DISTANCE:
            return InfoNCEHead() if spec.name == "infonce" else CosineSimilarityHead()
        if kind is ModuleKind.CLASSIFIER:
            return LinearClassifierHead(spec.name)
        raise ConfigurationError(f"no executable builder for module kind {kind!r}")

    def model(self, model: "ModelSpec | str") -> "ExecutableModel":
        """Bundle a catalog model's modules into an executable model."""
        spec = get_model(model) if isinstance(model, str) else model
        modules = {name: self.module(name) for name in spec.module_names}
        return ExecutableModel(spec=spec, modules=modules, zoo=self)


@dataclass
class ExecutableModel:
    """A model spec plus its live executable modules."""

    spec: ModelSpec
    modules: Dict[str, object]
    zoo: ModelZoo

    @property
    def encoders(self) -> Dict[str, object]:
        return {name: self.modules[name] for name in self.spec.encoders}

    @property
    def head(self):
        return self.modules[self.spec.head]

    def encoder_of_kind(self, kind: ModuleKind):
        """The (single) encoder of a given kind, e.g. the vision tower."""
        for name in self.spec.encoders:
            if get_module(name).kind is kind:
                return self.modules[name]
        raise ConfigurationError(f"model {self.spec.name!r} has no {kind.value}")

#: A process-wide default zoo (building encoders is cheap but not free).
DEFAULT_ZOO = ModelZoo()
