"""Executable model substrate: tiny numpy networks standing in for the
paper's PyTorch checkpoints.

The S2M3 algorithms only need module identities, sizes and compute costs —
but the paper's accuracy claim (Table VIII: split inference does not change
accuracy) is a property of an actual forward pass.  This package provides
real, deterministic forward passes:

- :mod:`repro.models.layers` — numpy layers (linear, layer-norm, attention,
  transformer blocks, convolutions).
- :mod:`repro.models.vision` / :mod:`text` / :mod:`audio` — tiny modality
  encoders whose capacity scales with the catalogued module's size.
- :mod:`repro.models.lm` — a tiny answer-generating language-model head.
- :mod:`repro.models.heads` — cosine-similarity, InfoNCE and classifier heads.
- :mod:`repro.models.weights` — deterministic pseudo-pretraining: backbones
  are seeded from the module name; output projections are *calibrated* by
  ridge regression against the shared latent-concept space, which is what
  makes the tiny models genuinely accurate on the synthetic benchmarks.
- :mod:`repro.models.zoo` — builds executable modules/models from catalog
  specs (cached per module identity, so sharing is real at this level too).
- :mod:`repro.models.pipeline` — centralized vs. split execution paths that
  must produce bit-identical outputs.
"""

from repro.models.pipeline import CentralizedPipeline, SplitPipeline
from repro.models.zoo import ExecutableModel, ModelZoo

__all__ = [
    "CentralizedPipeline",
    "SplitPipeline",
    "ExecutableModel",
    "ModelZoo",
]
