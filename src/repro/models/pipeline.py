"""Centralized vs. split execution paths for the executable models.

Both pipelines run the *same module objects* in the same order of data
dependencies.  The split pipeline additionally round-trips every inter-
module embedding through a byte serialization (``tobytes``/``frombuffer``)
— the emulated network hop.  Because IEEE-754 serialization is exact, the
two paths are **bit-identical**, which is the mechanism behind the paper's
Table VIII claim that S2M3 does not change accuracy (any residual deltas in
the paper are runtime variability, not architecture).

Batching design
---------------

Every task API comes in a per-sample form (``retrieve``, ``classify``, ...)
and a batched form (``retrieve_batch``, ``classify_batch``, ...).  The
batched forms drive ONE forward pass through the executable-model stack
with a leading batch axis and are **bit-identical** to looping the
per-sample forms — the encoders and heads keep each sample's GEMM shapes
intact (see :mod:`repro.models.layers`), so batching is purely a speedup
and cannot move an accuracy number.  This is the same amortization lever
the serving side uses: the paper's Sec. VI-C micro-batcher groups requests
that share a module and runs them as one batch (see
:mod:`repro.core.routing.batched`).

Batched embeddings ship as one ``(batch, latent)`` matrix: a single
serialization round-trip instead of ``batch`` of them, exactly how a real
split deployment would send a batched activation tensor.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.modules import ModuleKind
from repro.core.tasks import Task
from repro.models.heads import CosineSimilarityHead, InfoNCEHead, LinearClassifierHead
from repro.models.zoo import ExecutableModel
from repro.utils.errors import ConfigurationError


class _BasePipeline:
    """Shared task logic; subclasses define how embeddings travel."""

    def __init__(self, model: ExecutableModel) -> None:
        self.model = model

    # -- transport hook -------------------------------------------------
    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- encoding -------------------------------------------------------
    def embed_image(self, image: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.VISION_ENCODER)
        return self._ship(encoder(image))

    def embed_images(self, images: np.ndarray) -> np.ndarray:
        """Embed a (batch, C, H, W) stack in ONE batched forward."""
        encoder = self.model.encoder_of_kind(ModuleKind.VISION_ENCODER)
        return self._ship(encoder.embed_batch(images))

    def embed_text(self, tokens: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.TEXT_ENCODER)
        return self._ship(encoder(tokens))

    def embed_texts(self, tokens_batch: np.ndarray) -> np.ndarray:
        """Embed (batch, tokens) sequences in ONE batched forward."""
        encoder = self.model.encoder_of_kind(ModuleKind.TEXT_ENCODER)
        return self._ship(encoder.embed_batch(tokens_batch))

    def embed_prompt_set(self, prompts: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.TEXT_ENCODER)
        return self._ship(encoder.encode_prompt_set(prompts))

    def embed_audio(self, clip: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.AUDIO_ENCODER)
        return self._ship(encoder(clip))

    def embed_audios(self, clips: np.ndarray) -> np.ndarray:
        """Embed a (batch, AUDIO_DIM) stack in ONE batched forward."""
        encoder = self.model.encoder_of_kind(ModuleKind.AUDIO_ENCODER)
        return self._ship(encoder.embed_batch(clips))

    # -- task heads -----------------------------------------------------
    def retrieve(self, image: np.ndarray, prompts: np.ndarray) -> int:
        """Zero-shot image->text retrieval: winning prompt index."""
        head = self._retrieval_head()
        return head.rank(self.embed_image(image), self.embed_prompt_set(prompts))

    def retrieve_batch(
        self,
        images: np.ndarray,
        prompts: Optional[np.ndarray] = None,
        prompt_embeddings: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched retrieval: (batch,) winning prompt indices.

        Pass exactly ONE of ``prompts`` (raw token sequences, embedded once
        for the whole batch — the dominant saving: per-sample retrieval
        re-encodes every prompt) or ``prompt_embeddings`` (from
        :meth:`embed_prompt_set`, letting callers amortize the prompt
        forward across many batches).  Images run in one batched forward
        and ranking is per-row bit-exact.
        """
        head = self._retrieval_head()
        if (prompts is None) == (prompt_embeddings is None):
            raise ValueError("pass exactly one of prompts or prompt_embeddings")
        if prompt_embeddings is None:
            prompt_embeddings = self.embed_prompt_set(prompts)
        return head.rank_batch(self.embed_images(images), prompt_embeddings)

    def _retrieval_head(self) -> CosineSimilarityHead:
        head = self.model.head
        if not isinstance(head, CosineSimilarityHead):
            raise ConfigurationError(f"{self.model.spec.name!r} is not a retrieval model")
        return head

    def answer_vqa_decoder(
        self, image: np.ndarray, question_tokens: np.ndarray, answer_latents: np.ndarray
    ) -> int:
        """Decoder-only VQA: LM ranks the answer vocabulary."""
        if self.model.spec.task is not Task.DECODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a decoder-VQA model")
        return self.model.head.answer(self.embed_image(image), question_tokens, answer_latents)

    def answer_vqa_decoder_batch(
        self, images: np.ndarray, question_tokens: np.ndarray, answer_latents: np.ndarray
    ) -> np.ndarray:
        """Batched decoder VQA: (batch,) answer indices, bit-exact per row."""
        if self.model.spec.task is not Task.DECODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a decoder-VQA model")
        return self.model.head.answer_batch(
            self.embed_images(images), question_tokens, answer_latents
        )

    def answer_vqa_encoder(self, image: np.ndarray, question_tokens: np.ndarray) -> int:
        """Encoder-only VQA: classifier over concatenated embeddings."""
        if self.model.spec.task is not Task.ENCODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not an encoder-VQA model")
        head = self.model.head
        features = np.concatenate([self.embed_image(image), self.embed_text(question_tokens)])
        return head.predict(features)

    def answer_vqa_encoder_batch(
        self, images: np.ndarray, question_tokens: np.ndarray
    ) -> np.ndarray:
        """Batched encoder VQA: (batch,) predicted answers."""
        if self.model.spec.task is not Task.ENCODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not an encoder-VQA model")
        return self.model.head.predict_batch(self.vqa_features_batch(images, question_tokens))

    def vqa_features(self, image: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """Feature vector the encoder-VQA classifier consumes (for fitting)."""
        return np.concatenate([self.embed_image(image), self.embed_text(question_tokens)])

    def vqa_features_batch(self, images: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """(batch, 2*latent) features; row-exact vs :meth:`vqa_features`."""
        return np.concatenate(
            [self.embed_images(images), self.embed_texts(question_tokens)], axis=1
        )

    def classify(self, image: np.ndarray) -> int:
        """Image classification through the linear-probe head."""
        head = self._classifier_head()
        return head.predict(self.embed_image(image))

    def classify_batch(self, images: np.ndarray) -> np.ndarray:
        """Batched classification: (batch,) predicted classes."""
        head = self._classifier_head()
        return head.predict_batch(self.embed_images(images))

    def _classifier_head(self) -> LinearClassifierHead:
        if self.model.spec.task is not Task.IMAGE_CLASSIFICATION:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a classification model")
        head = self.model.head
        if not isinstance(head, LinearClassifierHead):
            raise ConfigurationError("classification head must be a linear classifier")
        return head

    def alignment_accuracy(self, images: np.ndarray, audios: np.ndarray) -> float:
        """Cross-modal alignment: image<->audio matching over a batch."""
        head = self.alignment_head()
        image_embs = self.embed_images(images)
        audio_embs = self.embed_audios(audios)
        return head.match_accuracy(image_embs, audio_embs)

    def alignment_head(self) -> InfoNCEHead:
        head = self.model.head
        if not isinstance(head, InfoNCEHead):
            raise ConfigurationError(f"{self.model.spec.name!r} is not an alignment model")
        return head

    def caption(self, image: np.ndarray, answer_latents: np.ndarray, verbalize) -> np.ndarray:
        """Image captioning: LM emits the concept's token sequence."""
        if self.model.spec.task is not Task.IMAGE_CAPTIONING:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a captioning model")
        empty_question = np.zeros(1, dtype=int)
        return self.model.head.generate(
            self.embed_image(image), empty_question, answer_latents, verbalize
        )

    def caption_batch(
        self, images: np.ndarray, answer_latents: np.ndarray, verbalize
    ) -> List[np.ndarray]:
        """Batched captioning: one emitted token sequence per image."""
        if self.model.spec.task is not Task.IMAGE_CAPTIONING:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a captioning model")
        empty_questions = np.zeros((images.shape[0], 1), dtype=int)
        return self.model.head.generate_batch(
            self.embed_images(images), empty_questions, answer_latents, verbalize
        )


class CentralizedPipeline(_BasePipeline):
    """All modules on one host: embeddings stay in memory."""

    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        return embedding


class SplitPipeline(_BasePipeline):
    """Modules on different hosts: embeddings serialize over 'the network'.

    Serialization round-trips through raw bytes, exactly as the paper's
    socket transport does.  fp64 -> bytes -> fp64 is lossless, hence
    bit-identical results.  A batched embedding ships as one contiguous
    ``(batch, latent)`` tensor — one hop for the whole micro-batch.
    """

    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        payload = embedding.tobytes()
        restored = np.frombuffer(payload, dtype=embedding.dtype).reshape(embedding.shape)
        return restored.copy()
