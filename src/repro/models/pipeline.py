"""Centralized vs. split execution paths for the executable models.

Both pipelines run the *same module objects* in the same order of data
dependencies.  The split pipeline additionally round-trips every inter-
module embedding through a byte serialization (``tobytes``/``frombuffer``)
— the emulated network hop.  Because IEEE-754 serialization is exact, the
two paths are **bit-identical**, which is the mechanism behind the paper's
Table VIII claim that S2M3 does not change accuracy (any residual deltas in
the paper are runtime variability, not architecture).
"""

from __future__ import annotations

import numpy as np

from repro.core.modules import ModuleKind
from repro.core.tasks import Task
from repro.models.heads import CosineSimilarityHead, InfoNCEHead, LinearClassifierHead
from repro.models.zoo import ExecutableModel
from repro.utils.errors import ConfigurationError


class _BasePipeline:
    """Shared task logic; subclasses define how embeddings travel."""

    def __init__(self, model: ExecutableModel) -> None:
        self.model = model

    # -- transport hook -------------------------------------------------
    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # -- encoding -------------------------------------------------------
    def embed_image(self, image: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.VISION_ENCODER)
        return self._ship(encoder(image))

    def embed_text(self, tokens: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.TEXT_ENCODER)
        return self._ship(encoder(tokens))

    def embed_prompt_set(self, prompts: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.TEXT_ENCODER)
        return self._ship(encoder.encode_prompt_set(prompts))

    def embed_audio(self, clip: np.ndarray) -> np.ndarray:
        encoder = self.model.encoder_of_kind(ModuleKind.AUDIO_ENCODER)
        return self._ship(encoder(clip))

    # -- task heads -----------------------------------------------------
    def retrieve(self, image: np.ndarray, prompts: np.ndarray) -> int:
        """Zero-shot image->text retrieval: winning prompt index."""
        head = self.model.head
        if not isinstance(head, CosineSimilarityHead):
            raise ConfigurationError(f"{self.model.spec.name!r} is not a retrieval model")
        return head.rank(self.embed_image(image), self.embed_prompt_set(prompts))

    def answer_vqa_decoder(
        self, image: np.ndarray, question_tokens: np.ndarray, answer_latents: np.ndarray
    ) -> int:
        """Decoder-only VQA: LM ranks the answer vocabulary."""
        if self.model.spec.task is not Task.DECODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a decoder-VQA model")
        return self.model.head.answer(self.embed_image(image), question_tokens, answer_latents)

    def answer_vqa_encoder(self, image: np.ndarray, question_tokens: np.ndarray) -> int:
        """Encoder-only VQA: classifier over concatenated embeddings."""
        if self.model.spec.task is not Task.ENCODER_VQA:
            raise ConfigurationError(f"{self.model.spec.name!r} is not an encoder-VQA model")
        head = self.model.head
        features = np.concatenate([self.embed_image(image), self.embed_text(question_tokens)])
        return head.predict(features)

    def vqa_features(self, image: np.ndarray, question_tokens: np.ndarray) -> np.ndarray:
        """Feature vector the encoder-VQA classifier consumes (for fitting)."""
        return np.concatenate([self.embed_image(image), self.embed_text(question_tokens)])

    def classify(self, image: np.ndarray) -> int:
        """Image classification through the linear-probe head."""
        if self.model.spec.task is not Task.IMAGE_CLASSIFICATION:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a classification model")
        head = self.model.head
        if not isinstance(head, LinearClassifierHead):
            raise ConfigurationError("classification head must be a linear classifier")
        return head.predict(self.embed_image(image))

    def alignment_accuracy(self, images: np.ndarray, audios: np.ndarray) -> float:
        """Cross-modal alignment: image<->audio matching over a batch."""
        head = self.model.head
        if not isinstance(head, InfoNCEHead):
            raise ConfigurationError(f"{self.model.spec.name!r} is not an alignment model")
        image_embs = np.stack([self.embed_image(image) for image in images])
        audio_embs = np.stack([self.embed_audio(clip) for clip in audios])
        return head.match_accuracy(image_embs, audio_embs)

    def caption(self, image: np.ndarray, answer_latents: np.ndarray, verbalize) -> np.ndarray:
        """Image captioning: LM emits the concept's token sequence."""
        if self.model.spec.task is not Task.IMAGE_CAPTIONING:
            raise ConfigurationError(f"{self.model.spec.name!r} is not a captioning model")
        empty_question = np.zeros(1, dtype=int)
        return self.model.head.generate(
            self.embed_image(image), empty_question, answer_latents, verbalize
        )


class CentralizedPipeline(_BasePipeline):
    """All modules on one host: embeddings stay in memory."""

    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        return embedding


class SplitPipeline(_BasePipeline):
    """Modules on different hosts: embeddings serialize over 'the network'.

    Serialization round-trips through raw bytes, exactly as the paper's
    socket transport does.  fp64 -> bytes -> fp64 is lossless, hence
    bit-identical results.
    """

    def _ship(self, embedding: np.ndarray) -> np.ndarray:
        payload = embedding.tobytes()
        restored = np.frombuffer(payload, dtype=embedding.dtype).reshape(embedding.shape)
        return restored.copy()
