"""Minimal numpy neural-network layers (forward pass only).

These are deliberately small — the substrate's job is to provide *real*
deterministic computation whose outputs are identical whether modules run
monolithically or split across (emulated) devices, not to be fast or
trainable.  All layers take/return ``float64`` arrays.

Every layer accepts inputs with arbitrary *leading* batch axes in addition
to its per-sample shape: the token-level layers take ``(..., tokens, dim)``
and :class:`Conv2d` takes ``(..., C, H, W)``.  Batching is implemented as a
pure stacking axis — every matmul keeps its per-sample 2-D GEMM shape and
numpy loops the slices in C — so a batched forward is **bit-identical**
(float64-exact) to running the samples one at a time.  Folding the batch
into the GEMM row dimension would be faster still but is *not* bit-stable
across BLAS kernel choices, which would break the split == centralized
accuracy guarantee the reproduction rests on.

One residual assumption is BLAS-implementation-specific: the sequential
paths compute some products as matrix-vector ops (``x @ W`` with 1-D
``x``), which the batched paths replay as ``(1, F)`` GEMM slices.  Their
bit-equality holds on the supported numpy/OpenBLAS builds and is pinned by
the exact-equality equivalence suite (``tests/test_models_batched.py``) —
on a platform where a BLAS accumulates gemv and n=1 gemm differently,
those tests fail loudly rather than letting accuracies drift silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian Error Linear Unit (tanh approximation)."""
    return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def layer_norm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Layer normalization over the last axis."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return gamma * (x - mean) / np.sqrt(var + eps) + beta


@dataclass
class Linear:
    """Affine map ``x @ W + b`` with ``W`` of shape (in, out)."""

    weight: np.ndarray
    bias: np.ndarray

    @staticmethod
    def init(rng: np.random.Generator, d_in: int, d_out: int, scale: Optional[float] = None) -> "Linear":
        std = scale if scale is not None else (1.0 / np.sqrt(d_in))
        return Linear(
            weight=rng.normal(0.0, std, size=(d_in, d_out)),
            bias=np.zeros(d_out),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return x @ self.weight + self.bias

    def rows(self, x: np.ndarray) -> np.ndarray:
        """Row-wise forward for a ``(batch, d_in)`` matrix, bit-exact per row.

        ``x @ W`` on a 2-D input is a single GEMM whose result can differ in
        the last bits from the per-row vector products the sequential path
        performs.  Keeping each row its own ``(1, d_in) @ (d_in, d_out)``
        slice of a stacked 3-D matmul reproduces the sequential bits.
        """
        return np.matmul(x[:, None, :], self.weight)[:, 0, :] + self.bias

    @property
    def param_count(self) -> int:
        return self.weight.size + self.bias.size


@dataclass
class LayerNorm:
    """Learnable layer norm parameters."""

    gamma: np.ndarray
    beta: np.ndarray

    @staticmethod
    def init(dim: int) -> "LayerNorm":
        return LayerNorm(gamma=np.ones(dim), beta=np.zeros(dim))

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return layer_norm(x, self.gamma, self.beta)

    @property
    def param_count(self) -> int:
        return self.gamma.size + self.beta.size


@dataclass
class MultiHeadAttention:
    """Multi-head self-attention over ``(..., tokens, dim)`` inputs."""

    qkv: Linear
    out: Linear
    heads: int

    @staticmethod
    def init(rng: np.random.Generator, dim: int, heads: int) -> "MultiHeadAttention":
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        return MultiHeadAttention(
            qkv=Linear.init(rng, dim, 3 * dim),
            out=Linear.init(rng, dim, dim),
            heads=heads,
        )

    def __call__(self, x: np.ndarray, causal: bool = False) -> np.ndarray:
        *lead, tokens, dim = x.shape
        head_dim = dim // self.heads
        qkv = self.qkv(x).reshape(*lead, tokens, 3, self.heads, head_dim)
        # (..., tokens, heads, head_dim) per projection
        q, k, v = qkv[..., 0, :, :], qkv[..., 1, :, :], qkv[..., 2, :, :]
        # -> (..., heads, tokens, head_dim)
        q, k, v = (np.swapaxes(t, -3, -2) for t in (q, k, v))
        scores = q @ np.swapaxes(k, -2, -1) / np.sqrt(head_dim)  # (..., heads, T, T)
        if causal:
            mask = np.triu(np.full((tokens, tokens), -1e9), k=1)
            scores = scores + mask
        attn = softmax(scores, axis=-1)
        mixed = attn @ v  # (..., heads, T, head_dim)
        merged = np.swapaxes(mixed, -3, -2).reshape(*lead, tokens, dim)
        return self.out(merged)

    @property
    def param_count(self) -> int:
        return self.qkv.param_count + self.out.param_count


@dataclass
class TransformerBlock:
    """Pre-norm transformer block: attention + MLP, residual connections."""

    norm1: LayerNorm
    attn: MultiHeadAttention
    norm2: LayerNorm
    mlp_in: Linear
    mlp_out: Linear

    @staticmethod
    def init(rng: np.random.Generator, dim: int, heads: int, mlp_ratio: int = 2) -> "TransformerBlock":
        return TransformerBlock(
            norm1=LayerNorm.init(dim),
            attn=MultiHeadAttention.init(rng, dim, heads),
            norm2=LayerNorm.init(dim),
            mlp_in=Linear.init(rng, dim, mlp_ratio * dim),
            mlp_out=Linear.init(rng, mlp_ratio * dim, dim),
        )

    def __call__(self, x: np.ndarray, causal: bool = False) -> np.ndarray:
        x = x + self.attn(self.norm1(x), causal=causal)
        x = x + self.mlp_out(gelu(self.mlp_in(self.norm2(x))))
        return x

    @property
    def param_count(self) -> int:
        return (
            self.norm1.param_count
            + self.attn.param_count
            + self.norm2.param_count
            + self.mlp_in.param_count
            + self.mlp_out.param_count
        )


@dataclass
class Conv2d:
    """2-D convolution (stride only, no padding) over ``(..., C, H, W)``."""

    weight: np.ndarray  # (out_c, in_c, k, k)
    bias: np.ndarray
    stride: int

    @staticmethod
    def init(rng: np.random.Generator, in_c: int, out_c: int, kernel: int, stride: int) -> "Conv2d":
        std = 1.0 / np.sqrt(in_c * kernel * kernel)
        return Conv2d(
            weight=rng.normal(0.0, std, size=(out_c, in_c, kernel, kernel)),
            bias=np.zeros(out_c),
            stride=stride,
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        *lead, in_c, height, width = x.shape
        out_c, _, k, _ = self.weight.shape
        out_h = (height - k) // self.stride + 1
        out_w = (width - k) // self.stride + 1
        # im2col across the whole batch at once
        cols = np.empty((*lead, out_h * out_w, in_c * k * k))
        idx = 0
        for i in range(out_h):
            for j in range(out_w):
                patch = x[..., i * self.stride: i * self.stride + k, j * self.stride: j * self.stride + k]
                cols[..., idx, :] = patch.reshape(*lead, -1)
                idx += 1
        flat_w = self.weight.reshape(out_c, -1)
        out = cols @ flat_w.T + self.bias  # (..., out_h*out_w, out_c)
        return np.swapaxes(out, -2, -1).reshape(*lead, out_c, out_h, out_w)

    @property
    def param_count(self) -> int:
        return self.weight.size + self.bias.size


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """(..., C, H, W) -> (..., C) mean pooling."""
    return x.mean(axis=(-2, -1))


def sinusoidal_positions(tokens: int, dim: int) -> np.ndarray:
    """Fixed sinusoidal position encodings (tokens, dim)."""
    position = np.arange(tokens)[:, None]
    div = np.exp(np.arange(0, dim, 2) * (-np.log(10000.0) / dim))
    encoding = np.zeros((tokens, dim))
    encoding[:, 0::2] = np.sin(position * div)
    encoding[:, 1::2] = np.cos(position * div[: encoding[:, 1::2].shape[1]])
    return encoding


def stack_param_count(blocks: List) -> int:
    """Total parameters across a list of layers with ``param_count``."""
    return sum(block.param_count for block in blocks)
