"""Accuracy evaluation of executable models on the synthetic benchmarks.

This is the machinery behind the Table VIII reproduction: run a model on a
benchmark through either the centralized or the split pipeline and report
zero-shot accuracy.  The headline check is that both pipelines agree
*exactly* (bit-identical embeddings), so splitting costs no accuracy.

The evaluator drives whole benchmark datasets through the pipelines'
**batched** forwards (one stacked forward per modality instead of a
per-sample Python loop).  Batching is bit-exact — see
:mod:`repro.models.layers` — so accuracies are identical to the sequential
evaluation, just an order of magnitude faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Type

import numpy as np

from repro.core.tasks import Task
from repro.datasets.benchmarks import BenchmarkSpec, generate_benchmark, get_benchmark
from repro.datasets.latent import LatentConceptSpace
from repro.models.heads import LinearClassifierHead
from repro.models.pipeline import CentralizedPipeline, SplitPipeline, _BasePipeline
from repro.models.zoo import DEFAULT_ZOO, ModelZoo
from repro.utils.errors import ConfigurationError
from repro.utils.seeding import rng_for

#: Training examples per class for benchmark-fitted classifier heads.
_PROBE_SAMPLES_PER_CLASS = 4

#: Samples per batched forward.  Chunking bounds peak memory; because the
#: batch axis is pure stacking, chunk boundaries cannot change any bits.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one (model, benchmark, pipeline) evaluation."""

    model_name: str
    benchmark_name: str
    pipeline: str
    accuracy: float
    samples: int


def _batches(count: int, batch_size: int):
    """Yield (lo, hi) chunk bounds covering ``range(count)``."""
    for lo in range(0, count, batch_size):
        yield lo, min(lo + batch_size, count)


def _fit_classifier_head(
    pipeline: _BasePipeline, spec: BenchmarkSpec, space: LatentConceptSpace
) -> None:
    """Fit the linear-probe head on a held-out training split.

    Faithful to the paper: its classifier heads are task-trained, while
    encoders stay frozen.  The training split is disjoint from the test
    split by seeding.  Probe inputs are generated in the original
    per-sample RNG order, then featurized in ONE batched forward.
    """
    head = pipeline.model.head
    if not isinstance(head, LinearClassifierHead):
        return
    rng = rng_for("probe-training", spec.name, pipeline.model.spec.name)
    images: List[np.ndarray] = []
    questions: List[np.ndarray] = []
    labels: List[int] = []
    encoder_vqa = pipeline.model.spec.task is Task.ENCODER_VQA
    for class_index in range(spec.num_classes):
        for _ in range(_PROBE_SAMPLES_PER_CLASS):
            images.append(
                space.sample_image(class_index, spec.noise, rng, pixel_noise=spec.pixel_noise)
            )
            if encoder_vqa:
                questions.append(space.question_tokens(int(rng.integers(0, 1000))))
            labels.append(class_index)
    image_stack = np.stack(images)
    if encoder_vqa:
        features = pipeline.vqa_features_batch(image_stack, np.stack(questions))
    else:
        features = pipeline.embed_images(image_stack)
    head.fit(features, np.asarray(labels), spec.num_classes)


def evaluate(
    model_name: str,
    benchmark_name: str,
    samples: int = 0,
    split: bool = False,
    zoo: Optional[ModelZoo] = None,
    seed: int = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> EvaluationResult:
    """Evaluate ``model_name`` on ``benchmark_name``; returns accuracy.

    ``batch_size`` caps how many samples run per batched forward; it can
    only affect speed/memory, never the resulting accuracy.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    spec = get_benchmark(benchmark_name)
    zoo = zoo if zoo is not None else DEFAULT_ZOO
    model = zoo.model(model_name)
    pipeline_cls: Type[_BasePipeline] = SplitPipeline if split else CentralizedPipeline
    pipeline = pipeline_cls(model)
    return _evaluate_pipeline(pipeline, spec, samples, seed, batch_size=batch_size)


def _evaluate_pipeline(
    pipeline: _BasePipeline,
    spec: BenchmarkSpec,
    samples: int,
    seed: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> EvaluationResult:
    space = spec.space()
    data = generate_benchmark(spec.name, samples=samples, seed=seed)
    task = pipeline.model.spec.task
    if task is not spec.task:
        raise ConfigurationError(
            f"model task {task.value!r} does not match benchmark task {spec.task.value!r}"
        )
    _fit_classifier_head(pipeline, spec, space)

    count = len(data)
    if task is Task.IMAGE_TEXT_RETRIEVAL:
        prompts = space.prompt_set()
        # Embed the zero-shot prompt set ONCE for the whole evaluation, not
        # once per chunk — prompt embeddings are batch-independent.
        prompt_embeddings = pipeline.embed_prompt_set(prompts)
        labels = np.asarray([s.label for s in data])
        correct = 0
        for lo, hi in _batches(count, batch_size):
            images = np.stack([s.image for s in data[lo:hi]])
            ranks = pipeline.retrieve_batch(images, prompt_embeddings=prompt_embeddings)
            correct += int(np.sum(ranks == labels[lo:hi]))
        accuracy = correct / count
    elif task is Task.ENCODER_VQA:
        answers_true = np.asarray([s.answer for s in data])
        correct = 0
        for lo, hi in _batches(count, batch_size):
            images = np.stack([s.image for s in data[lo:hi]])
            questions = np.stack([s.question_tokens for s in data[lo:hi]])
            predicted = pipeline.answer_vqa_encoder_batch(images, questions)
            correct += int(np.sum(predicted == answers_true[lo:hi]))
        accuracy = correct / count
    elif task is Task.DECODER_VQA:
        answers = space.class_latents
        answers_true = np.asarray([s.answer for s in data])
        correct = 0
        for lo, hi in _batches(count, batch_size):
            images = np.stack([s.image for s in data[lo:hi]])
            questions = np.stack([s.question_tokens for s in data[lo:hi]])
            predicted = pipeline.answer_vqa_decoder_batch(images, questions, answers)
            correct += int(np.sum(predicted == answers_true[lo:hi]))
        accuracy = correct / count
    elif task is Task.CROSS_MODAL_ALIGNMENT:
        # Chunk the embedding forwards (transformer intermediates scale with
        # the batch); only the final (samples, latent) matrices — which the
        # matching metric inherently needs whole — span the full set.
        image_embeddings = []
        audio_embeddings = []
        for lo, hi in _batches(count, batch_size):
            image_embeddings.append(pipeline.embed_images(np.stack([s.image for s in data[lo:hi]])))
            audio_embeddings.append(pipeline.embed_audios(np.stack([s.audio for s in data[lo:hi]])))
        head = pipeline.alignment_head()
        accuracy = head.match_accuracy(
            np.concatenate(image_embeddings, axis=0), np.concatenate(audio_embeddings, axis=0)
        )
    elif task is Task.IMAGE_CLASSIFICATION:
        labels = np.asarray([s.label for s in data])
        correct = 0
        for lo, hi in _batches(count, batch_size):
            images = np.stack([s.image for s in data[lo:hi]])
            correct += int(np.sum(pipeline.classify_batch(images) == labels[lo:hi]))
        accuracy = correct / count
    elif task is Task.IMAGE_CAPTIONING:
        answers = space.class_latents
        correct = 0
        for lo, hi in _batches(count, batch_size):
            images = np.stack([s.image for s in data[lo:hi]])
            emitted = pipeline.caption_batch(images, answers, space.tokens_from_latent)
            correct += sum(
                bool(np.array_equal(tokens, s.caption_tokens))
                for tokens, s in zip(emitted, data[lo:hi])
            )
        accuracy = correct / count
    else:  # pragma: no cover - tasks are exhaustive
        raise ConfigurationError(f"unsupported task {task!r}")

    return EvaluationResult(
        model_name=pipeline.model.spec.name,
        benchmark_name=spec.name,
        pipeline="split" if isinstance(pipeline, SplitPipeline) else "centralized",
        accuracy=accuracy,
        samples=count,
    )
