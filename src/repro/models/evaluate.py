"""Accuracy evaluation of executable models on the synthetic benchmarks.

This is the machinery behind the Table VIII reproduction: run a model on a
benchmark through either the centralized or the split pipeline and report
zero-shot accuracy.  The headline check is that both pipelines agree
*exactly* (bit-identical embeddings), so splitting costs no accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Type

import numpy as np

from repro.core.tasks import Task
from repro.datasets.benchmarks import BenchmarkSpec, generate_benchmark, get_benchmark
from repro.datasets.latent import LatentConceptSpace
from repro.models.heads import LinearClassifierHead
from repro.models.pipeline import CentralizedPipeline, SplitPipeline, _BasePipeline
from repro.models.zoo import DEFAULT_ZOO, ModelZoo
from repro.utils.errors import ConfigurationError
from repro.utils.seeding import rng_for

#: Training examples per class for benchmark-fitted classifier heads.
_PROBE_SAMPLES_PER_CLASS = 4


@dataclass(frozen=True)
class EvaluationResult:
    """Accuracy of one (model, benchmark, pipeline) evaluation."""

    model_name: str
    benchmark_name: str
    pipeline: str
    accuracy: float
    samples: int


def _fit_classifier_head(
    pipeline: _BasePipeline, spec: BenchmarkSpec, space: LatentConceptSpace
) -> None:
    """Fit the linear-probe head on a held-out training split.

    Faithful to the paper: its classifier heads are task-trained, while
    encoders stay frozen.  The training split is disjoint from the test
    split by seeding.
    """
    head = pipeline.model.head
    if not isinstance(head, LinearClassifierHead):
        return
    rng = rng_for("probe-training", spec.name, pipeline.model.spec.name)
    features: List[np.ndarray] = []
    labels: List[int] = []
    for class_index in range(spec.num_classes):
        for _ in range(_PROBE_SAMPLES_PER_CLASS):
            image = space.sample_image(class_index, spec.noise, rng, pixel_noise=spec.pixel_noise)
            if pipeline.model.spec.task is Task.ENCODER_VQA:
                question = space.question_tokens(int(rng.integers(0, 1000)))
                features.append(pipeline.vqa_features(image, question))
            else:
                features.append(pipeline.embed_image(image))
            labels.append(class_index)
    head.fit(np.stack(features), np.asarray(labels), spec.num_classes)


def evaluate(
    model_name: str,
    benchmark_name: str,
    samples: int = 0,
    split: bool = False,
    zoo: Optional[ModelZoo] = None,
    seed: int = 0,
) -> EvaluationResult:
    """Evaluate ``model_name`` on ``benchmark_name``; returns accuracy."""
    spec = get_benchmark(benchmark_name)
    zoo = zoo if zoo is not None else DEFAULT_ZOO
    model = zoo.model(model_name)
    pipeline_cls: Type[_BasePipeline] = SplitPipeline if split else CentralizedPipeline
    pipeline = pipeline_cls(model)
    return _evaluate_pipeline(pipeline, spec, samples, seed)


def _evaluate_pipeline(
    pipeline: _BasePipeline, spec: BenchmarkSpec, samples: int, seed: int
) -> EvaluationResult:
    space = spec.space()
    data = generate_benchmark(spec.name, samples=samples, seed=seed)
    task = pipeline.model.spec.task
    if task is not spec.task:
        raise ConfigurationError(
            f"model task {task.value!r} does not match benchmark task {spec.task.value!r}"
        )
    _fit_classifier_head(pipeline, spec, space)

    if task is Task.IMAGE_TEXT_RETRIEVAL:
        prompts = space.prompt_set()
        correct = sum(pipeline.retrieve(s.image, prompts) == s.label for s in data)
        accuracy = correct / len(data)
    elif task is Task.ENCODER_VQA:
        correct = sum(pipeline.answer_vqa_encoder(s.image, s.question_tokens) == s.answer for s in data)
        accuracy = correct / len(data)
    elif task is Task.DECODER_VQA:
        answers = space.class_latents
        correct = sum(
            pipeline.answer_vqa_decoder(s.image, s.question_tokens, answers) == s.answer
            for s in data
        )
        accuracy = correct / len(data)
    elif task is Task.CROSS_MODAL_ALIGNMENT:
        images = np.stack([s.image for s in data])
        audios = np.stack([s.audio for s in data])
        accuracy = pipeline.alignment_accuracy(images, audios)
    elif task is Task.IMAGE_CLASSIFICATION:
        correct = sum(pipeline.classify(s.image) == s.label for s in data)
        accuracy = correct / len(data)
    elif task is Task.IMAGE_CAPTIONING:
        answers = space.class_latents
        correct = 0
        for s in data:
            emitted = pipeline.caption(s.image, answers, space.tokens_from_latent)
            correct += bool(np.array_equal(emitted, s.caption_tokens))
        accuracy = correct / len(data)
    else:  # pragma: no cover - tasks are exhaustive
        raise ConfigurationError(f"unsupported task {task!r}")

    return EvaluationResult(
        model_name=pipeline.model.spec.name,
        benchmark_name=spec.name,
        pipeline="split" if isinstance(pipeline, SplitPipeline) else "centralized",
        accuracy=accuracy,
        samples=len(data),
    )
