"""Awaitable events for the simulation kernel.

Processes (see :mod:`repro.sim.process`) ``yield`` these objects to suspend
until the event fires.  Events are one-shot: they move from *pending* to
*triggered* exactly once, delivering an optional value to every waiter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.simulator import Simulator


class Event:
    """A one-shot event that processes can wait on.

    An event is created in the *pending* state.  :meth:`succeed` schedules it
    to fire at the current simulation time; every registered callback then
    runs with the event as its argument.
    """

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once all callbacks have run."""
        return self._processed

    @property
    def value(self) -> Any:
        """The value delivered by :meth:`succeed` (None until then)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event now, delivering ``value`` to all waiters."""
        if self._triggered:
            raise RuntimeError("event has already been triggered")
        self._triggered = True
        self._value = value
        self.sim.schedule_event(self)
        return self

    def _process(self) -> None:
        """Run callbacks; invoked by the simulator event loop."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback``; runs immediately if already processed."""
        if self._processed:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay must be non-negative, got {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim.schedule_event(self, delay=delay)


class Condition(Event):
    """Base for composite events over a list of child events.

    Subclasses define how the empty list behaves via ``_on_empty``:
    "all of nothing" is vacuously true (fires immediately), while "any of
    nothing" can never fire and is rejected up front.
    """

    def __init__(self, sim: "Simulator", events: List[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending = 0
        if not self.events:
            self._on_empty()
            return
        for event in self.events:
            if not event.processed:
                self._pending += 1
            event.add_callback(self._on_child)
        # All children may already be processed.
        if self._pending == 0 and not self._triggered:
            self._check(initial=True)

    def _on_child(self, event: Event) -> None:
        if not self._triggered:
            self._check(initial=False)

    def _on_empty(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, initial: bool) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Fires when *all* child events have fired; value is the list of values.

    Completion is judged by ``processed`` (the event actually fired), not
    ``triggered`` — a :class:`Timeout` is *triggered* the moment it is
    created but only fires when the clock reaches it.  ``AllOf([])`` is
    vacuously satisfied and fires immediately with value ``[]``.
    """

    def _on_empty(self) -> None:
        self.succeed([])

    def _check(self, initial: bool) -> None:
        if all(event.processed for event in self.events):
            self.succeed([event.value for event in self.events])


class AnyOf(Condition):
    """Fires when *any* child event fires; value is the first value seen.

    "Any of nothing" can never fire: a process waiting on it would deadlock
    silently, so an empty event list is rejected with :class:`ValueError`.
    """

    def _on_empty(self) -> None:
        raise ValueError("AnyOf requires at least one event ('any of nothing' never fires)")

    def _check(self, initial: bool) -> None:
        for event in self.events:
            if event.processed:
                self.succeed(event.value)
                return


def as_event(sim: "Simulator", item: Any) -> Optional[Event]:
    """Coerce a yielded item to an :class:`Event` (or None if unsupported)."""
    if isinstance(item, Event):
        return item
    return None
