"""Capacity-limited resources and FIFO stores.

:class:`Resource` models a device's compute slots: a device with
``capacity=1`` serializes module executions (the queueing delay that raises
multi-task latency from 3.73 s to 4.97 s in Table X), while the GPU server is
given two slots so independent modality encoders can overlap.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator


class Resource:
    """A FIFO resource with integer capacity.

    Usage inside a process::

        token = yield resource.acquire()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(token)
    """

    def __init__(self, sim: "Simulator", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a slot is held by the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self, token: Any = None) -> None:
        """Release one slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching acquire()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed(self)
        else:
            self._in_use -= 1


class Store:
    """An unbounded FIFO channel between processes (used by workload feeders)."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def __len__(self) -> int:
        return len(self._items)
