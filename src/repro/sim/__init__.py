"""Discrete-event simulation kernel.

A small, dependency-free process-based DES in the style of SimPy, used to
emulate the paper's physical testbed: device compute slots with FIFO
queueing (the source of the shared-module queueing delay in Table X),
network transfers, and per-request parallel encoder execution (Fig. 3).

Public surface:

- :class:`Simulator` — event loop with a virtual clock.
- :class:`FlatEventLoop` — the slimmed callback kernel behind the flat
  serving engine (no generator frames; same (time, insertion-order) FIFO).
- :class:`Process` — generator-based process handle (also awaitable).
- :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` — awaitable events.
- :class:`Resource` — capacity-limited FIFO resource (device compute slots).
- :class:`Store` — FIFO message channel between processes.
- :class:`TraceRecorder`, :class:`Span` — timeline capture for Fig. 3.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.flat import FlatEventLoop
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.simulator import Simulator, default_max_events
from repro.sim.trace import Span, TraceRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Timeout",
    "FlatEventLoop",
    "Process",
    "Resource",
    "Store",
    "Simulator",
    "default_max_events",
    "Span",
    "TraceRecorder",
]
