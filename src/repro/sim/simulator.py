"""The simulation event loop and virtual clock."""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process, ProcessGenerator

#: Floor for the derived livelock cap: small runs keep the historic guard.
MIN_MAX_EVENTS = 10_000_000
#: Derived-cap budget: how many processed events each initially scheduled
#: event may fan out into before the run is declared a livelock.  Serving
#: runs spend a few dozen events per request, so 200x leaves an order of
#: magnitude of headroom while still catching unbounded self-rescheduling.
EVENTS_PER_SCHEDULED = 200


def default_max_events(pending: int) -> int:
    """Livelock cap for a run that starts with ``pending`` scheduled events.

    Scales with the initially scheduled work instead of a fixed constant, so
    a legitimate million-arrival serving run (tens of millions of events) is
    not spuriously killed while a buggy two-process ping-pong loop still is.
    """
    return max(MIN_MAX_EVENTS, EVENTS_PER_SCHEDULED * pending)


class Simulator:
    """A discrete-event simulator with a floating-point clock in seconds.

    Events are processed in (time, insertion-order) order, so simultaneous
    events run FIFO — deterministic regardless of heap internals.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._counter = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to be processed ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._counter += 1
        heapq.heappush(self._queue, (self._now + delay, self._counter, event))

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator``; returns its join handle."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> AllOf:
        """Join: an event firing when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Select: an event firing when any event in ``events`` fires.

        ``events`` must be non-empty — "any of nothing" can never fire and
        raises :class:`ValueError` (see :class:`repro.sim.events.AnyOf`).
        """
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise RuntimeError("no scheduled events")
        time, _seq, event = heapq.heappop(self._queue)
        self._now = time
        event._process()

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, ``until`` is reached, or a safety cap.

        Returns the final simulated time.  The ``max_events`` cap guards
        against runaway loops in buggy workloads; hitting it raises.  When
        ``None`` (the default) the cap is derived from the work scheduled at
        entry via :func:`default_max_events`, so large-but-legitimate runs
        scale the guard instead of tripping it.
        """
        if max_events is None:
            max_events = default_max_events(len(self._queue))
        processed = 0
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
            processed += 1
            if processed >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events; likely a livelock")
        return self._now

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Convenience: start ``generator`` as a process, run to completion, return its value."""
        handle = self.process(generator, name=name)
        self.run()
        if not handle.processed and not handle.triggered:
            raise RuntimeError(f"process {handle.name!r} never completed (deadlock?)")
        return handle.value
