"""Timeline tracing for simulated runs.

Each simulated activity (model loading, transmission, encoding, head
processing) records a :class:`Span`.  The recorder can render an ASCII Gantt
chart per device — this regenerates the paper's Fig. 3 inference timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Span categories, matching the legend of the paper's Fig. 3.
CATEGORY_LOADING = "model_loading"
CATEGORY_TRANSMISSION = "transmission"
CATEGORY_COMPUTE = "compute"
CATEGORY_HEAD = "task_head"
CATEGORY_QUEUE = "queue_wait"


@dataclass(frozen=True)
class Span:
    """One traced activity on one device (or link)."""

    device: str
    category: str
    label: str
    start: float
    end: float
    request_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Span") -> bool:
        """True if the two spans overlap in time (open interval)."""
        return self.start < other.end and other.start < self.end


@dataclass
class TraceRecorder:
    """Collects spans during a simulated run."""

    spans: List[Span] = field(default_factory=list)
    enabled: bool = True

    def record(
        self,
        device: str,
        category: str,
        label: str,
        start: float,
        end: float,
        request_id: Optional[int] = None,
    ) -> None:
        """Append a span; no-op when disabled."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span ends before it starts: {label} [{start}, {end}]")
        self.spans.append(Span(device, category, label, start, end, request_id))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def by_device(self) -> Dict[str, List[Span]]:
        """Spans grouped by device, each group sorted by start time."""
        grouped: Dict[str, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.device, []).append(span)
        # repro-lint: disable=R004 -- every group is sorted in place; visit order cannot change the result
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start, s.end))
        return grouped

    def by_category(self, category: str) -> List[Span]:
        """All spans with the given category, sorted by start."""
        return sorted(
            (span for span in self.spans if span.category == category),
            key=lambda s: (s.start, s.end),
        )

    def makespan(self) -> float:
        """End time of the last span (0.0 when empty)."""
        return max((span.end for span in self.spans), default=0.0)

    def total_time(self, category: str) -> float:
        """Sum of span durations in a category (may double-count overlaps)."""
        return sum(span.duration for span in self.spans if span.category == category)

    def parallel_compute_spans(self) -> List[tuple]:
        """Pairs of compute spans on *different* devices that overlap in time.

        Non-empty output demonstrates per-request parallel encoding (Fig. 3).
        """
        compute = self.by_category(CATEGORY_COMPUTE)
        pairs = []
        for i, first in enumerate(compute):
            for second in compute[i + 1:]:
                if first.device != second.device and first.overlaps(second):
                    pairs.append((first, second))
        return pairs

    # ------------------------------------------------------------------
    # Rendering (Fig. 3)
    # ------------------------------------------------------------------
    def render_gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart, one row per device, matching Fig. 3's layout."""
        grouped = self.by_device()
        if not grouped:
            return "(empty trace)"
        end = self.makespan()
        if end <= 0:
            return "(zero-length trace)"
        scale = width / end
        symbol = {
            CATEGORY_LOADING: "L",
            CATEGORY_TRANSMISSION: "t",
            CATEGORY_COMPUTE: "#",
            CATEGORY_HEAD: "H",
            CATEGORY_QUEUE: ".",
        }
        lines = [f"timeline 0.0s .. {end:.2f}s  (L=loading t=transmission #=encoding H=head .=queued)"]
        for device in sorted(grouped):
            row = [" "] * width
            for span in grouped[device]:
                lo = min(width - 1, int(span.start * scale))
                hi = min(width, max(lo + 1, int(span.end * scale)))
                mark = symbol.get(span.category, "?")
                for idx in range(lo, hi):
                    row[idx] = mark
            lines.append(f"{device:>12} |{''.join(row)}|")
        return "\n".join(lines)
