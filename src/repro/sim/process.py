"""Generator-based processes for the simulation kernel.

A process wraps a Python generator.  Each ``yield`` hands back an awaitable
:class:`~repro.sim.events.Event` (a :class:`Timeout`, a resource acquisition,
another :class:`Process`, ...); the process resumes when that event fires,
receiving the event's value as the result of the ``yield`` expression.

A :class:`Process` is itself an :class:`Event` that fires when the generator
returns, so processes can wait on each other (fork/join) — this is how the
routing engine joins parallel modality encoders before running the task head
(the ``max`` in the paper's Eq. 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.simulator import Simulator

ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process; fires (as an event) on completion."""

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._started = False
        # Kick off on the next event-loop iteration at the current time so
        # process creation order does not matter within a timestep.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed(None)

    def _resume(self, event: Optional[Event]) -> None:
        """Advance the generator with the fired event's value."""
        value = event.value if event is not None else None
        try:
            target = self.generator.send(value) if self._started else next(self.generator)
            self._started = True
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event objects"
            )
        target.add_callback(self._resume)
