"""A flat (callback-based) event loop for vectorized serving runs.

The generator-process kernel in :mod:`repro.sim.simulator` spends one Python
frame plus several :class:`~repro.sim.events.Event` objects per request per
hop — fine at testbed scale, dominant at a million arrivals.  This module is
the slimmed kernel behind :class:`repro.serving.engine.FlatServingEngine`:
the heap holds plain ``(time, seq, fn, args)`` tuples and "resuming a
process" is a direct function call, so there are no generator frames, no
Event allocation, and no callback lists.

Ordering is identical to :class:`Simulator`: entries pop in
``(time, insertion-order)`` order, so simultaneous entries run FIFO.  The
livelock guard is shared with the process kernel
(:func:`repro.sim.simulator.default_max_events`).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.simulator import default_max_events


class FlatEventLoop:
    """A minimal scheduler: a heap of timed callbacks and a clock.

    Continuations are ordinary callables invoked as ``fn(*args)`` when their
    entry pops; whatever state they need travels in ``args`` (indices into
    the caller's arrays), not in closures, so a million queued entries stay
    cheap.

    Delay-zero entries — the majority in a serving replay — skip the heap
    entirely and go to a FIFO ready queue.  This preserves the global
    ``(time, insertion-order)`` order: a heap entry at the current time was
    necessarily pushed before every ready entry (a same-time push lands in
    the ready queue instead), so draining same-time heap entries before the
    ready queue replays exactly the order a single counter would give,
    while saving an O(log n) heap operation per immediate event.
    """

    __slots__ = ("now", "_heap", "_ready", "_seq")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], Tuple[Any, ...]]] = []
        self._ready: deque = deque()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap) + len(self._ready)

    def push(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay == 0:
            self._ready.append((fn, args))
            return
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def push_at(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``time`` (>= now)."""
        if time == self.now:
            self._ready.append((fn, args))
            return
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, fn, args))

    def run(self, max_events: Optional[int] = None) -> float:
        """Drain the queues; returns the final simulated time.

        ``max_events`` guards against runaway loops exactly like
        :meth:`Simulator.run`; ``None`` derives the cap from the entries
        scheduled at entry.
        """
        if max_events is None:
            max_events = default_max_events(len(self._heap) + len(self._ready))
        heap = self._heap
        ready = self._ready
        pop = heapq.heappop
        popleft = ready.popleft
        now = self.now
        processed = 0
        while True:
            # Same-time heap entries predate every ready entry; run them
            # first to keep global insertion order.
            if ready:
                if heap and heap[0][0] == now:
                    _time, _seq, fn, args = pop(heap)
                else:
                    fn, args = popleft()
            elif heap:
                time, _seq, fn, args = pop(heap)
                self.now = now = time
            else:
                break
            fn(*args)
            processed += 1
            if processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events; likely a livelock"
                )
        return self.now
