"""Optimus baseline estimate (VQA only) — paper footnote 3.

Optimus (Feng et al., 2024) accelerates multi-modal *training* by bubble
exploitation; it is closed source and VQA-specific, so the paper estimates
its inference latency as the ideal parallel reduction: total best-device
compute divided by the device count, plus the unavoidable input transfer.
We reproduce that estimation procedure.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.parallelism import TensorParallelModel
from repro.cluster.network import Network
from repro.core.catalog import get_model
from repro.core.splitter import split_model
from repro.core.tasks import Task
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import get_device_profile
from repro.utils.errors import ConfigurationError


def optimus_latency(
    model: str,
    device_names: Sequence[str],
    source: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> float:
    """Ideal-parallel latency estimate; raises for non-VQA models."""
    spec = get_model(model)
    if spec.task is not Task.DECODER_VQA and spec.task is not Task.ENCODER_VQA:
        raise ConfigurationError("Optimus is designed only for VQA (paper Table XI)")
    devices = [get_device_profile(name) for name in device_names]
    net = network if network is not None else Network()
    tp = TensorParallelModel(devices=devices, network=net, compute_model=compute_model)
    split = split_model(spec)
    total_compute = sum(tp.best_single_seconds(module, model=spec) for module in split.modules)
    target = next((d.name for d in devices if d.name != source), source)
    input_comm = sum(
        net.transfer_seconds(source, target, spec.payload_bytes(enc.modality or "image"))
        for enc in split.encoders
    )
    return input_comm + total_compute / max(1, len(devices))
