"""Baselines the paper compares against (Sec. VI, Tables VI, VII, XI).

- :mod:`repro.baselines.centralized` — whole model on one device
  ("Centralized Cloud" = the GPU server across the MAN, "Centralized
  Local" = the requesting Jetson).
- :mod:`repro.baselines.parallelism` — the tensor-parallel cost model
  shared by the Megatron-LM / Optimus / DistMM estimates (the paper itself
  *estimates* the latter two per its footnote 3, since neither is open
  source).
- :mod:`repro.baselines.megatron` — model parallelism applied to each
  functional module, executed sequentially (no cross-encoder parallelism).
- :mod:`repro.baselines.optimus` — ideal pipeline-parallel estimate (VQA only).
- :mod:`repro.baselines.distmm` — per-modality-tower parallel estimate
  (image-text retrieval only).
- :mod:`repro.baselines.nosharing` — S2M3's split architecture with
  per-task dedicated modules (the Table X "w/o Sharing" arm).
"""

from repro.baselines.centralized import CentralizedResult, centralized_inference
from repro.baselines.distmm import distmm_latency
from repro.baselines.megatron import (
    megatron_latency,
    megatron_multitask_latency,
    megatron_params,
)
from repro.baselines.nosharing import no_sharing_engine
from repro.baselines.optimus import optimus_latency
from repro.baselines.parallelism import TensorParallelModel

__all__ = [
    "CentralizedResult",
    "centralized_inference",
    "distmm_latency",
    "megatron_latency",
    "megatron_multitask_latency",
    "megatron_params",
    "no_sharing_engine",
    "optimus_latency",
    "TensorParallelModel",
]
