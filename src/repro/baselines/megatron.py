"""Megatron-LM baseline: model parallelism per functional module.

The paper applies Megatron-style parallelism to each module of the model
and executes the modules **sequentially** — intra-module partitioning has
no notion of running the text encoder while the vision encoder computes
("it cannot benefit from parallel processing across encoders", Sec. VI-B).
Latency is input transmission + the sum of per-module times under the
tensor-parallel cost model.  Memory is the full model per task: intra-module
approaches have no cross-task sharing story, so multi-task deployments pay
the duplicated sum (the Table XI "Retrieval+Alignment" row).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.parallelism import TensorParallelModel
from repro.cluster.network import Network
from repro.core.catalog import get_model
from repro.core.splitter import split_model
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import DeviceProfile, get_device_profile


def _tp_model(
    device_names: Sequence[str],
    network: Optional[Network],
    compute_model: ComputeModel,
) -> TensorParallelModel:
    devices = [get_device_profile(name) for name in device_names]
    return TensorParallelModel(
        devices=devices,
        network=network if network is not None else Network(),
        compute_model=compute_model,
    )


def megatron_multitask_latency(
    models: Sequence[str],
    device_names: Sequence[str],
    source: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> float:
    """Latency of one simultaneous request per model under Megatron-LM.

    Every Megatron model spans the whole device group (tensor parallelism),
    so concurrent tasks cannot overlap; the burst serializes and the last
    request's latency is the sum of the single-task latencies.
    """
    return sum(
        megatron_latency(model, device_names, source, network, compute_model)
        for model in models
    )


def megatron_latency(
    model: str,
    device_names: Sequence[str],
    source: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> float:
    """Single-request latency under the Megatron-LM baseline."""
    spec = get_model(model)
    split = split_model(spec)
    tp = _tp_model(device_names, network, compute_model)
    net = tp.network
    input_comm = sum(
        net.transfer_seconds(source, _nearest(tp.devices, source), spec.payload_bytes(enc.modality or "image"))
        for enc in split.encoders
    )
    compute = sum(tp.module_seconds(module, model=spec) for module in split.modules)
    return input_comm + compute


def _nearest(devices: Sequence[DeviceProfile], source: str) -> str:
    """Data lands on the first non-source device of the group (or source)."""
    for device in devices:
        if device.name != source:
            return device.name
    return source


def megatron_params(models: Sequence[str]) -> int:
    """Deployed parameters for a (multi-task) Megatron deployment.

    One full copy per model: intra-module partitioning spreads each model's
    weights but deduplicates nothing across tasks.
    """
    return sum(split_model(get_model(name)).total_params for name in models)
