"""DistMM baseline estimate (image-text retrieval only) — paper footnote 3.

DistMM (NSDI'24) parallelizes multi-modal *training* by partitioning each
modality tower across devices; modality towers run concurrently.  Following
the paper's estimation procedure, each tower gets the tensor-parallel cost
model over its share of the device group, towers overlap (max), and the
head follows.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.parallelism import TensorParallelModel
from repro.cluster.network import Network
from repro.core.catalog import get_model
from repro.core.splitter import split_model
from repro.core.tasks import Task
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import get_device_profile
from repro.utils.errors import ConfigurationError


def distmm_latency(
    model: str,
    device_names: Sequence[str],
    source: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> float:
    """Per-modality-parallel latency estimate; retrieval models only."""
    spec = get_model(model)
    if spec.task is not Task.IMAGE_TEXT_RETRIEVAL:
        raise ConfigurationError("DistMM only considers image-text retrieval (paper Table XI)")
    devices = [get_device_profile(name) for name in device_names]
    net = network if network is not None else Network()
    tp = TensorParallelModel(devices=devices, network=net, compute_model=compute_model)
    split = split_model(spec)

    # Each modality tower is partitioned over the device group; towers overlap.
    tower_times = []
    for encoder in split.encoders:
        input_comm = net.transfer_seconds(
            source,
            next((d.name for d in devices if d.name != source), source),
            spec.payload_bytes(encoder.modality or "image"),
        )
        tower_times.append(input_comm + tp.module_seconds(encoder, model=spec))
    head_time = tp.best_single_seconds(split.head, model=spec)
    return max(tower_times) + head_time
