"""No-sharing baseline: split architecture with per-task dedicated modules.

Table X's "w/o Sharing" arm — every task deploys private copies of its
modules, paying duplicated memory but avoiding shared-module queueing.  This
is just the S2M3 engine with ``share=False``; the wrapper exists so
experiments read declaratively.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.topology import EdgeCluster
from repro.core.engine import S2M3Engine


def no_sharing_engine(
    cluster: EdgeCluster,
    models: Sequence[str],
    parallel: bool = True,
) -> S2M3Engine:
    """An engine deploying dedicated module copies per model."""
    return S2M3Engine(cluster, models, share=False, parallel=parallel)
