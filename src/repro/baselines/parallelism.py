"""Tensor-parallel cost model for the intra-module partitioning baselines.

Megatron-LM-style tensor parallelism splits each layer across ``n`` workers
and synchronizes with all-reduces: per transformer layer, two all-reduce
rounds; over a shared PAN medium an ``n``-worker all-reduce serializes into
``2(n-1)`` activation transfers.  The compute side shrinks ``n``-fold, so

    t_tp(module) = t_best / n + layers * 2 * 2(n-1) * t_xfer(act)

A rational implementation never uses tensor parallelism when it loses, so
module time is ``min(t_single_best, t_tp)``.  On the paper's home network
the exchange term dominates for every evaluated module — which is exactly
why Table XI shows Megatron-LM matching the *sequential* single-best time
(3.03 s on retrieval) rather than beating S2M3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cluster.network import Network
from repro.core.models import ModelSpec
from repro.core.modules import ModuleKind, ModuleSpec
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import DeviceProfile

#: Activation bytes exchanged per all-reduce step (a token batch's worth).
ACTIVATION_BYTES = 100_000


def estimated_layers(module: ModuleSpec) -> int:
    """Rough transformer-depth estimate used for exchange accounting."""
    if module.kind is ModuleKind.LANGUAGE_MODEL:
        base, ref = 22, 1_100_000_000  # TinyLlama-scale
    else:
        base, ref = 12, 86_000_000  # ViT-B-scale
    if module.params <= 0:
        return 1
    scaled = base * (module.params / ref) ** (1.0 / 3.0)
    return max(2, int(round(scaled)))


@dataclass
class TensorParallelModel:
    """Prices intra-module tensor parallelism over a device group."""

    devices: Sequence[DeviceProfile]
    network: Network
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL
    activation_bytes: int = ACTIVATION_BYTES

    def best_single_seconds(self, module: ModuleSpec, model: Optional[ModelSpec] = None) -> float:
        """Fastest single-device compute time for the module."""
        return min(
            self.compute_model.seconds(module, device, model=model) for device in self.devices
        )

    def exchange_seconds_per_layer(self) -> float:
        """One all-reduce round over the group's slowest pairwise path."""
        names = [device.name for device in self.devices]
        slowest = max(
            self.network.transfer_seconds(a, b, self.activation_bytes)
            for a in names
            for b in names
            if a != b
        ) if len(names) > 1 else 0.0
        return 2 * (len(names) - 1) * slowest

    def tensor_parallel_seconds(self, module: ModuleSpec, model: Optional[ModelSpec] = None) -> float:
        """Pure tensor-parallel time over the whole group (no fallback)."""
        n = len(self.devices)
        compute = self.best_single_seconds(module, model) / max(1, n)
        if n <= 1:
            return compute
        layers = estimated_layers(module)
        # Two all-reduce rounds per layer (attention + MLP).
        exchange = layers * 2 * self.exchange_seconds_per_layer()
        return compute + exchange

    def module_seconds(self, module: ModuleSpec, model: Optional[ModelSpec] = None) -> float:
        """What a rational deployment pays: min(single-best, tensor-parallel)."""
        return min(
            self.best_single_seconds(module, model),
            self.tensor_parallel_seconds(module, model),
        )
