"""Centralized inference: the whole model on a single device.

This is the paper's "Centralized" baseline family: Cloud (the GPU server,
reached over the MAN), Local (the requesting Jetson), or any single device
(the per-device rows of Table VII).  A monolith executes its modules
sequentially — the paper stresses that a single device "cannot benefit from
parallel processing (unless installing more processors)" — so latency is
input transmission (all modalities) + the sum of module compute times.

A device that cannot hold ``sum(r_m)`` yields ``feasible=False`` — these are
the "–" cells of Table VI for the 4 GB Jetson.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.network import Network
from repro.core.catalog import get_model
from repro.core.models import ModelSpec
from repro.core.splitter import split_model
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import DeviceProfile, get_device_profile


@dataclass(frozen=True)
class CentralizedResult:
    """Latency/memory outcome of hosting the monolith on one device."""

    model: ModelSpec
    device: str
    feasible: bool
    input_comm_seconds: float
    compute_seconds: float
    load_seconds: float
    total_params: int

    @property
    def inference_seconds(self) -> Optional[float]:
        """Inference latency (transmission + sequential compute); None if infeasible."""
        if not self.feasible:
            return None
        return self.input_comm_seconds + self.compute_seconds

    @property
    def end_to_end_seconds(self) -> Optional[float]:
        """Inference plus model loading (the Table VII end-to-end column)."""
        if not self.feasible:
            return None
        return self.inference_seconds + self.load_seconds


def centralized_inference(
    model: "ModelSpec | str",
    device: "DeviceProfile | str",
    source: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> CentralizedResult:
    """Price a single request served entirely on ``device``.

    ``source`` is the requester holding the input data; input payloads for
    every modality are shipped to the device (serially over the requester's
    uplink), and nothing else moves.
    """
    spec = get_model(model) if isinstance(model, str) else model
    profile = get_device_profile(device) if isinstance(device, str) else device
    net = network if network is not None else Network()
    split = split_model(spec)

    total_bytes = sum(module.memory_bytes for module in split.modules)
    feasible = total_bytes <= profile.memory_bytes

    input_comm = sum(
        net.transfer_seconds(source, profile.name, spec.payload_bytes(encoder.modality or "image"))
        for encoder in split.encoders
    )
    compute = sum(
        compute_model.seconds(module, profile, model=spec) for module in split.modules
    )
    load = sum(compute_model.load_seconds(module, profile) for module in split.modules)
    return CentralizedResult(
        model=spec,
        device=profile.name,
        feasible=feasible,
        input_comm_seconds=input_comm,
        compute_seconds=compute,
        load_seconds=load,
        total_params=split.total_params,
    )
