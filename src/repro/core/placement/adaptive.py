"""Adaptive placement under device churn (paper Sec. VI-C, "Dynamic network
conditions").

The paper: short-term network variation barely moves latency, but long-term
changes such as device availability call for *reallocation with some
switching costs*, "further optimized through adaptive placement".  This
module implements that controller:

- on a device-set change, recompute the greedy placement for the new pool;
- price the migration (reloading every module that moves — the paper's
  footnote 1 shows a single load can dwarf an inference);
- migrate only when the per-request latency gain amortizes the switching
  cost over the expected remaining request volume (hysteresis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.latency import LatencyModel
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.utils.errors import PlacementError


@dataclass(frozen=True)
class MigrationDecision:
    """Outcome of one adaptation round.

    ``old_latency``/``new_latency`` are mean per-request latencies in
    **seconds** (``inf`` when the old placement is unservable);
    ``switching_cost_seconds`` is the module re-loading time in **seconds**.
    """

    migrate: bool
    reason: str
    old_latency: float
    new_latency: float
    switching_cost_seconds: float
    new_placement: Optional[Placement] = None

    @property
    def per_request_gain(self) -> float:
        return self.old_latency - self.new_latency


class AdaptivePlacementController:
    """Decides whether to re-place modules when the device pool changes.

    ``expected_requests`` is the volume (a request count) over which a
    migration must pay for itself: migrate iff
    ``gain_seconds_per_request * expected_requests > switching_cost_seconds``.
    All latencies and switching costs the controller computes are in
    **seconds**; the gains in :class:`MigrationDecision` are seconds per
    request.
    """

    def __init__(
        self,
        network: Network,
        compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
        expected_requests: int = 20,
    ) -> None:
        if expected_requests < 1:
            raise ValueError(f"expected_requests must be >= 1, got {expected_requests}")
        self.network = network
        self.compute_model = compute_model
        self.expected_requests = expected_requests
        self._model_cache: Dict[Tuple[str, ...], Tuple[PlacementProblem, LatencyModel]] = {}

    # ------------------------------------------------------------------
    def latency_model_for(self, problem: PlacementProblem) -> LatencyModel:
        """A :class:`LatencyModel` (with its cost tensors) for ``problem``.

        Churn traces oscillate over a handful of device pools; rebuilding
        the model — and re-deriving its per-(module, device) tensors — on
        every assessment made re-placement cost scale with churn rate.  The
        cache is keyed on the device-name tuple and verified against the
        full problem (frozen dataclass equality), so a pool that comes back
        with different modules, models, or noise misses and rebuilds.
        """
        key = tuple(device.name for device in problem.devices)
        hit = self._model_cache.get(key)
        if hit is not None and (hit[0] is problem or hit[0] == problem):
            return hit[1]
        model = LatencyModel(problem, self.network)
        self._model_cache[key] = (problem, model)
        return model

    def switching_cost(
        self, old: Placement, new: Placement, problem: PlacementProblem
    ) -> float:
        """Seconds of model (re)loading the migration incurs.

        A module costs a load on every host that did not already have it;
        loads on different devices overlap, so the cost is the per-device
        maximum — the same accounting as initial deployment.
        """
        modules = {module.name: module for module in problem.modules}
        per_device: Dict[str, float] = {}
        for module_name, new_hosts in new.as_dict().items():
            old_hosts = set(old.as_dict().get(module_name, ()))
            for host in new_hosts:
                if host in old_hosts:
                    continue
                device = problem.device(host)
                per_device[host] = per_device.get(host, 0.0) + self.compute_model.load_seconds(
                    modules[module_name], device
                )
        return max(per_device.values(), default=0.0)

    def evaluate(
        self,
        problem_now: PlacementProblem,
        current: Placement,
        requests: Sequence[InferenceRequest],
    ) -> MigrationDecision:
        """Assess migrating from ``current`` to a fresh greedy placement.

        ``problem_now`` reflects the CURRENT device pool.  If the current
        placement references departed devices, migration is forced (the
        modules must be re-hosted regardless of cost).
        """
        if not requests:
            raise ValueError("need at least one request to price the placements")
        model = self.latency_model_for(problem_now)
        candidate = greedy_placement(problem_now)
        new_latency = model.objective(requests, candidate) / len(requests)

        live = {device.name for device in problem_now.devices}
        stranded = [
            name
            for name, hosts in current.as_dict().items()
            if any(host not in live for host in hosts)
        ]
        cost = self.switching_cost(current, candidate, problem_now)
        if stranded:
            return MigrationDecision(
                migrate=True,
                reason=f"forced: modules stranded on departed devices ({', '.join(sorted(stranded))})",
                old_latency=float("inf"),
                new_latency=new_latency,
                switching_cost_seconds=cost,
                new_placement=candidate,
            )

        old_latency = model.objective(requests, current) / len(requests)
        gain = old_latency - new_latency
        if gain * self.expected_requests > cost:
            return MigrationDecision(
                migrate=True,
                reason=(
                    f"gain {gain:.2f}s/request over {self.expected_requests} requests "
                    f"amortizes the {cost:.2f}s switching cost"
                ),
                old_latency=old_latency,
                new_latency=new_latency,
                switching_cost_seconds=cost,
                new_placement=candidate,
            )
        return MigrationDecision(
            migrate=False,
            reason=(
                f"gain {max(gain, 0):.2f}s/request does not cover the "
                f"{cost:.2f}s switching cost"
            ),
            old_latency=old_latency,
            new_latency=new_latency,
            switching_cost_seconds=cost,
        )


@dataclass(frozen=True)
class ChurnEvent:
    """One availability change: the device pool becomes ``device_names``.

    ``time`` is in **seconds** on the experiment's clock (informational —
    the batch churn replay is epoch-based, not discrete-event driven).
    """

    time: float
    device_names: Tuple[str, ...]
    description: str = ""


def simulate_churn(
    models: Sequence[str],
    events: Sequence[ChurnEvent],
    requests_per_epoch: int,
    controller: Optional[AdaptivePlacementController] = None,
) -> List[Tuple[ChurnEvent, MigrationDecision]]:
    """Replay a churn trace, letting the controller adapt after each event.

    Returns the per-event decisions; the placement carries over between
    epochs unless the controller migrates.
    """
    if not events:
        raise ValueError("need at least one churn event")
    network = Network()
    controller = controller if controller is not None else AdaptivePlacementController(network)

    first = PlacementProblem.from_models(models, list(events[0].device_names))
    placement = greedy_placement(first)
    requests = [
        InferenceRequest.for_model(model, "jetson-a")
        for model in models
        for _ in range(max(1, requests_per_epoch // max(1, len(models))))
    ]
    outcomes: List[Tuple[ChurnEvent, MigrationDecision]] = []
    for event in events[1:]:
        problem = PlacementProblem.from_models(models, list(event.device_names))
        try:
            decision = controller.evaluate(problem, placement, requests)
        except PlacementError:
            raise
        if decision.migrate and decision.new_placement is not None:
            placement = decision.new_placement
        outcomes.append((event, decision))
    return outcomes
