"""Exact branch-and-bound placement — brute force's result beyond its scale.

The paper's "Upper" baseline enumerates all ``N^M`` single-copy assignments
(fine at 4 modules x 5 devices = 625, hopeless at 10 x 32 ≈ 10^15).  This
solver searches the same space with an admissible lower bound and residual
memory pruning, and returns **the identical placement and objective** as
:func:`~repro.core.placement.optimal.optimal_placement`'s brute force —
including its deterministic tie-break toward the lexicographically smallest
assignment.

Bound (per request class, fanned out in request order):

- an *assigned* encoder path costs exactly ``in + compute + out`` (its true
  cost minus the non-negative same-device queue wait);
- an *unassigned* encoder path is lower-bounded by the cheapest such cost
  over every device whose total memory fits the module (and the cheapest
  head host when the head is also unassigned);
- the head costs its compute time, minimized over fitting devices while
  unassigned; the parallel encoder stage takes the max over path bounds.

Every term is a min/max/sum over the *same precomputed floats*
(:mod:`repro.core.placement.tensors`) the exact objective uses, and
IEEE-754 addition/min/max are monotonic, so the bound never exceeds the
true objective of any completion.

The search runs in two phases because Eq. 2's max-over-paths creates large
equal-objective plateaus (moving a non-bottleneck encoder changes nothing):

1. **Value phase** — heads-first, best-bound-first DFS seeded with the
   greedy incumbent, pruning ``bound >= best``: a subtree whose bound ties
   the incumbent cannot *strictly* improve it, so plateaus die instantly.
   Yields the optimal objective ``V``.
2. **Tie-break phase** — DFS in the brute-force tie-key order (modules by
   sorted name, devices by sorted name), pruning ``bound > V``, stopping at
   the **first** leaf whose objective equals ``V`` — by construction the
   lexicographically-smallest optimal assignment, i.e. brute force's pick.

The module also hosts :func:`energy_branch_and_bound` — the **energy**
counterpart (paper Sec. VII): minimum total joules subject to the latency
objective staying within a budget.  Energy is additive (no max-plateaus),
so it runs a single phase: a budget-constrained energy-descent incumbent,
strict ``bound > best`` pruning with the lexicographic tie-key compared at
leaves, and the latency budget enforced through the same admissible
latency bounds — again bit-identical to brute-force enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.tensors import (
    CongestionModel,
    CostTensors,
    EnergyRequestGroup,
    EnergyTensors,
    IncrementalEnergy,
    IncrementalObjective,
    RequestGroup,
    WaitTensors,
    _lpt_waits,
)
from repro.utils.errors import PlacementError


class _GroupBound:
    """Admissible per-(model, source) latency bounds under partial assignment."""

    def __init__(self, tensors: CostTensors, group: RequestGroup) -> None:
        self.group = group
        self.tensors = tensors
        self.parallel = tensors.parallel
        self.encoder_idx = group.encoder_idx
        self.head_idx = group.head_idx
        self.members = tuple(set(group.encoder_idx) | {group.head_idx})
        head_fit = tensors.fits[group.head_idx]
        if not head_fit.any():
            raise PlacementError(
                f"module {group.head_name!r} fits on no device; "
                "apply compression or intra-module partitioning first (paper Sec. V-B)"
            )
        self.head_comp = group.head_comp
        self.head_min = float(np.min(group.head_comp[head_fit]))
        # Per encoder path e (arrays over the device axis):
        #   A[e][ne]          in_comm + compute with the encoder on ne
        #   enc_assigned[e]   A + (cheapest out over fitting head hosts)
        #   head_assigned[e]  cheapest (A + out[:, nh]) over fitting encoder hosts
        #   free[e]           cheapest over both endpoints
        self.A: List[np.ndarray] = []
        self.enc_assigned: List[np.ndarray] = []
        self.head_assigned: List[np.ndarray] = []
        self.free: List[float] = []
        self.out_min: List[np.ndarray] = []
        for e, idx in enumerate(group.encoder_idx):
            fit = tensors.fits[idx]
            if not fit.any():
                raise PlacementError(
                    f"module {group.encoder_names[e]!r} fits on no device; "
                    "apply compression or intra-module partitioning first (paper Sec. V-B)"
                )
            A = group.in_comm[e] + group.enc_comp[e]
            out = group.out[e]
            out_min = np.min(out[:, head_fit], axis=1)
            masked = np.where(fit[:, None], A[:, None] + out, np.inf)
            self.A.append(A)
            self.out_min.append(out_min)
            self.enc_assigned.append(A + out_min)
            self.head_assigned.append(np.min(masked, axis=0))
            self.free.append(float(np.min(self.enc_assigned[e][fit])))

    # ------------------------------------------------------------------
    # Contention: Eq. 2's max is blind to ``parallel_slots`` until queue
    # waits appear, so co-locating encoders on the fastest device looks
    # free to the per-path bound.  For any device ``n`` hosting assigned
    # encoder set S_n, the LPT makespan of the final set S*_n ⊇ S_n is at
    # least ``sum(compute(S_n)) / slots_n``, and the last-finishing path
    # also pays its input and output transfers — at least the minimum over
    # S_n plus every still-unassigned encoder (any of which may join n).
    # The slack factor absorbs float-rounding differences (the true stage
    # is accumulated in a different operation order); it is ~1e5 times any
    # accumulated ulp error yet far below meaningful latency differences.
    # ------------------------------------------------------------------
    _CONTENTION_SLACK = 1.0 - 1e-9

    def _contention_state(self, assign: np.ndarray):
        """Assigned per-device loads/members and the unassigned path list."""
        loads: Dict[int, float] = {}
        members: Dict[int, List[int]] = {}
        unassigned: List[int] = []
        for e, idx in enumerate(self.encoder_idx):
            ne = int(assign[idx])
            if ne >= 0:
                loads[ne] = loads.get(ne, 0.0) + float(self.group.enc_comp[e][ne])
                members.setdefault(ne, []).append(e)
            else:
                unassigned.append(e)
        return loads, members, unassigned

    def _contention_term(self, n: int, pool: List[int], load: float, nh: int) -> float:
        """Admissible stage bound from slot pressure on device ``n``."""
        in_min = min(float(self.group.in_comm[e][n]) for e in pool)
        if nh >= 0:
            out_floor = min(float(self.group.out[e][n, nh]) for e in pool)
        else:
            out_floor = min(float(self.out_min[e][n]) for e in pool)
        return (in_min + load / self.tensors.slots[n] + out_floor) * self._CONTENTION_SLACK

    def _contention(self, assign: np.ndarray, nh: int) -> float:
        """Max contention term over devices whose slots are oversubscribed."""
        if not self.parallel:
            return 0.0
        loads, members, unassigned = self._contention_state(assign)
        best = 0.0
        for n, here in members.items():
            if len(here) <= self.tensors.slots[n]:
                continue
            term = self._contention_term(n, here + unassigned, loads[n], nh)
            if term > best:
                best = term
        return best

    # ------------------------------------------------------------------
    def lower_bound(self, assign: np.ndarray) -> float:
        """Scalar bound for the current partial assignment.

        **Exact** (queue waits included) once every member module is
        assigned — at that point the bound equals the group's true latency,
        so the value phase's ``>=`` prune filters deep nodes exactly.
        """
        if all(assign[i] >= 0 for i in self.members):
            return float(self.group.total_for_assignment(self.tensors, assign))
        nh = int(assign[self.head_idx])
        terms = []
        for e, idx in enumerate(self.encoder_idx):
            ne = int(assign[idx])
            if ne >= 0:
                if nh >= 0:
                    terms.append(self.A[e][ne] + self.group.out[e][ne, nh])
                else:
                    terms.append(self.enc_assigned[e][ne])
            elif nh >= 0:
                terms.append(self.head_assigned[e][nh])
            else:
                terms.append(self.free[e])
        if not terms:
            encoder = 0.0
        elif self.parallel:
            encoder = max(terms)
            contention = self._contention(assign, nh)
            if contention > encoder:
                encoder = contention
        else:
            encoder = 0.0
            for term in terms:
                encoder = encoder + term
        head = self.head_comp[nh] if nh >= 0 else self.head_min
        return float(encoder + head)

    def bound_vector(self, assign: np.ndarray, module_index: int) -> np.ndarray:
        """Bound per candidate device if ``module_index`` were placed there.

        ``module_index`` must be used by this group (as an encoder, the
        head, or both roles at once).  When placing it *completes* the
        group, the vector holds exact (wait-inclusive) latencies.
        """
        if all(assign[i] >= 0 for i in self.members if i != module_index):
            return self._exact_vector(assign, module_index)
        nh = int(assign[self.head_idx])
        head_here = module_index == self.head_idx
        terms: List[object] = []  # scalars and [N] vectors, in path order
        for e, idx in enumerate(self.encoder_idx):
            ne = int(assign[idx])
            if idx == module_index:
                # This path's encoder is the module being placed.
                if head_here:
                    # Module doubles as the head: both endpoints co-locate.
                    terms.append(self.A[e] + np.diagonal(self.group.out[e]))
                elif nh >= 0:
                    terms.append(self.A[e] + self.group.out[e][:, nh])
                else:
                    terms.append(self.enc_assigned[e])
            elif head_here:
                # The head is being placed; encoder e is fixed or free.
                if ne >= 0:
                    terms.append(self.A[e][ne] + self.group.out[e][ne, :])
                else:
                    terms.append(self.head_assigned[e])
            else:
                # Path untouched by this move: same scalar as lower_bound.
                if ne >= 0:
                    if nh >= 0:
                        terms.append(self.A[e][ne] + self.group.out[e][ne, nh])
                    else:
                        terms.append(self.enc_assigned[e][ne])
                elif nh >= 0:
                    terms.append(self.head_assigned[e][nh])
                else:
                    terms.append(self.free[e])
        if not terms:
            encoder = 0.0
        elif self.parallel:
            encoder = terms[0]
            for term in terms[1:]:
                encoder = np.maximum(encoder, term)
        else:
            encoder = 0.0
            for term in terms:
                encoder = encoder + term
        if terms and self.parallel:
            # Base contention (moving module still unassigned) is admissible
            # for every candidate; candidates that oversubscribe a device's
            # slots with the newcomer get the tightened per-device term.
            base = self._contention(assign, -1 if head_here else nh)
            if base > 0.0:
                encoder = np.maximum(encoder, base)
            if not head_here:
                encoder = np.asarray(encoder, dtype=np.float64) + np.zeros(len(self.head_comp))
                loads, members, unassigned = self._contention_state(assign)
                e0 = next(
                    e for e in range(len(self.encoder_idx))
                    if self.encoder_idx[e] == module_index
                )
                joiners = [e for e in unassigned if e != e0]
                for n in range(len(self.head_comp)):
                    here = members.get(n, ())
                    if len(here) + 1 <= self.tensors.slots[n]:
                        continue
                    load = loads.get(n, 0.0) + float(self.group.enc_comp[e0][n])
                    term = self._contention_term(n, list(here) + [e0] + joiners, load, nh)
                    if term > encoder[n]:
                        encoder[n] = term
        head = self.head_comp if head_here else (self.head_comp[nh] if nh >= 0 else self.head_min)
        return np.broadcast_to(
            np.asarray(encoder + head, dtype=np.float64), self.head_comp.shape
        ).copy()

    def _exact_vector(self, assign: np.ndarray, module_index: int) -> np.ndarray:
        """True group latency per candidate device for the last free member.

        Queue waits are per-device: placing the last module on ``n`` can
        only change waits *on* ``n``, so the LPT recomputation is confined
        to candidates that would actually exceed their slots; every other
        entry is pure array math over the precomputed tensors (and uses the
        same float-operation order, so entries stay bit-exact).
        """
        group, tensors = self.group, self.tensors
        n_devices = len(self.head_comp)
        n_encoders = len(self.encoder_idx)
        moving = [e for e in range(n_encoders) if self.encoder_idx[e] == module_index]
        head_moving = self.head_idx == module_index

        if head_moving and moving:  # dual-role module: rare, go scalar
            fixed_enc = [int(assign[i]) for i in self.encoder_idx]
            values = np.empty(n_devices, dtype=np.float64)
            for n in range(n_devices):
                hosts = [n if e in moving else fixed_enc[e] for e in range(n_encoders)]
                values[n] = group.total(tensors, hosts, n)
            return values

        if head_moving:
            # Encoder hosts (hence waits) are fixed; only out_comm varies.
            hosts = [int(assign[i]) for i in self.encoder_idx]
            comps = [group.enc_comp[e][hosts[e]] for e in range(n_encoders)]
            if self.parallel:
                waits = _lpt_waits(hosts, comps, tensors.slots)
            else:
                waits = [0.0] * n_encoders
            stage: object = 0.0
            path_vectors = [
                (group.in_comm[e][hosts[e]] + waits[e] + comps[e])
                + group.out[e][hosts[e], :]
                for e in range(n_encoders)
            ]
            if self.parallel:
                stage = path_vectors[0]
                for vector in path_vectors[1:]:
                    stage = np.maximum(stage, vector)
            else:
                for vector in path_vectors:
                    stage = stage + vector
            return stage + self.head_comp

        # One encoder is moving; the head and all other encoders are fixed.
        e0 = moving[0]
        nh = int(assign[self.head_idx])
        hosts = [int(assign[self.encoder_idx[e]]) if e != e0 else -1 for e in range(n_encoders)]
        others = [e for e in range(n_encoders) if e != e0]
        if self.parallel:
            counts: Dict[int, int] = {}
            for e in others:
                counts[hosts[e]] = counts.get(hosts[e], 0) + 1
            base_waits = _lpt_waits(
                [hosts[e] for e in others],
                [group.enc_comp[e][hosts[e]] for e in others],
                self.tensors.slots,
            )
            waits = [0.0] * n_encoders
            for pos, e in enumerate(others):
                waits[e] = base_waits[pos]
        else:
            counts = {}
            waits = [0.0] * n_encoders
        fixed_totals = [
            group.in_comm[e][hosts[e]] + waits[e] + group.enc_comp[e][hosts[e]]
            + group.out[e][hosts[e], nh]
            for e in others
        ]
        moving_vector = (group.in_comm[e0] + group.enc_comp[e0]) + group.out[e0][:, nh]
        if self.parallel:
            stage = moving_vector
            for value in fixed_totals:
                stage = np.maximum(stage, value)
        else:
            stage = 0.0
            for e in range(n_encoders):
                stage = stage + (moving_vector if e == e0 else fixed_totals[others.index(e)])
        values = np.asarray(stage + self.head_comp[nh], dtype=np.float64).copy()
        if self.parallel:
            # Candidates where the newcomer overflows the device's slots
            # need the true LPT schedule (waits change on that device only).
            for n in range(n_devices):
                if counts.get(n, 0) + 1 > self.tensors.slots[n]:
                    full_hosts = [n if e == e0 else hosts[e] for e in range(n_encoders)]
                    values[n] = group.total(self.tensors, full_hosts, nh)
        return values


@dataclass
class BnBStats:
    """Search accounting (exposed for the scaling benchmarks)."""

    nodes: int = 0
    leaves: int = 0
    pruned: int = 0




class _WaitState:
    """Incremental queue-wait bookkeeping for the congestion-aware search.

    Maintains canonical partial load sums over *assigned* members —
    utilization ``u[n]`` and residual ``r[n]`` per device — plus
    ``vis[n]``: how many per-request member waits are already charged to
    device ``n``.  Per-module candidate deltas are precomputed:
    ``du[m, n]`` / ``dr[m, n]`` are the single-copy load every model using
    module ``m`` would add to device ``n``.

    The wait surcharge bound for "module ``m`` → device ``n``" re-prices
    only device ``n`` at its increased load and charges the module's
    request visits there; all other devices keep their current (partial)
    waits.  In real arithmetic that never exceeds the final objective's
    total wait surcharge — waits are monotone in load, and unassigned
    members only add load and visits.  Floating-point evaluation reorders
    the canonical sums, so the whole term is scaled by ``_SLACK``
    (mirroring ``_GroupBound._CONTENTION_SLACK``): the ~1e-16-relative
    reordering error is far below the 1e-9 margin.  Leaves are always
    re-priced exactly through ``WaitTensors.assignment_objective``.
    """

    _SLACK = 1.0 - 1e-9

    def __init__(
        self,
        wait: WaitTensors,
        requests: Sequence[InferenceRequest],
        groups: Sequence[RequestGroup],
        group_of_request: Sequence[int],
    ) -> None:
        tensors = wait.tensors
        self.wait = wait
        n_modules = tensors.n_modules
        n_devices = tensors.n_devices
        self.du = np.zeros((n_modules, n_devices), dtype=np.float64)
        self.dr = np.zeros((n_modules, n_devices), dtype=np.float64)
        for model, lam, members, comp in wait.entries(requests):
            if lam == 0.0:
                continue
            for m in members:
                row = comp[m]
                load = lam * row
                self.du[m] += load
                self.dr[m] += load * row
        self.wreq = np.zeros(n_modules, dtype=np.float64)
        for g in group_of_request:
            for idx in groups[g].member_idx:
                self.wreq[idx] += 1.0
        self.u = np.zeros(n_devices, dtype=np.float64)
        self.r = np.zeros(n_devices, dtype=np.float64)
        self.vis = np.zeros(n_devices, dtype=np.float64)
        self.slots = np.array(tensors.slots, dtype=np.float64)
        self.rho_max = wait.congestion.rho_max

    def _waits(self, u: np.ndarray, r: np.ndarray) -> np.ndarray:
        rho = np.minimum(u / self.slots, self.rho_max)
        return (r / self.slots) / (2.0 * (1.0 - rho))

    def bound_vector(self, m: int) -> np.ndarray:
        """Admissible wait-surcharge bound per candidate device for ``m``."""
        waits = self._waits(self.u, self.r)
        charged = self.vis * waits
        base = float(charged.sum())
        new_waits = self._waits(self.u + self.du[m], self.r + self.dr[m])
        vec = base - charged + (self.vis + self.wreq[m]) * new_waits
        return vec * self._SLACK

    def descend(self, m: int, n: int) -> None:
        self.u[n] += self.du[m, n]
        self.r[n] += self.dr[m, n]
        self.vis[n] += self.wreq[m]

    def ascend(self, m: int, n: int) -> None:
        self.vis[n] -= self.wreq[m]
        self.r[n] -= self.dr[m, n]
        self.u[n] -= self.du[m, n]


class _Search:
    """Shared state for both phases of the branch-and-bound."""

    def __init__(
        self,
        tensors: CostTensors,
        requests: Sequence[InferenceRequest],
        stats: BnBStats,
        congestion: Optional[CongestionModel] = None,
    ) -> None:
        self.tensors = tensors
        self.stats = stats
        self.requests = list(requests)
        self.n_modules = tensors.n_modules
        self.n_devices = tensors.n_devices
        self.memory = [int(b) for b in tensors.memory]
        self.residual = [int(b) for b in tensors.capacity]
        self.assign = np.full(self.n_modules, -1, dtype=np.int64)

        # Request-class bookkeeping: price each (model, source) class once.
        self.groups: List[RequestGroup] = []
        self.bounds: List[_GroupBound] = []
        self.group_of_request: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self.groups)
                group = tensors.group(request.model, request.source)
                self.groups.append(group)
                self.bounds.append(_GroupBound(tensors, group))
            self.group_of_request.append(index_of[key])
        self.groups_using: List[List[int]] = [[] for _ in range(self.n_modules)]
        for g, group in enumerate(self.groups):
            for idx in set(group.encoder_idx) | {group.head_idx}:
                self.groups_using[idx].append(g)
        self.group_lb = [bound.lower_bound(self.assign) for bound in self.bounds]
        if congestion is not None:
            self.wait_tensors: Optional[WaitTensors] = WaitTensors(tensors, congestion)
            self.wait: Optional[_WaitState] = _WaitState(
                self.wait_tensors, self.requests, self.groups, self.group_of_request
            )
        else:
            self.wait_tensors = None
            self.wait = None

    # ------------------------------------------------------------------
    def leaf_objective(self) -> float:
        """Exact objective of the full assignment (request-order summation,
        bit-identical to ``CostTensors.objective`` — or, queue-aware, to
        ``WaitTensors.assignment_objective`` — on the same placement)."""
        if self.wait_tensors is not None:
            return self.wait_tensors.assignment_objective(self.requests, self.assign)
        total = 0.0
        cache: List[Optional[float]] = [None] * len(self.groups)
        for g in self.group_of_request:
            value = cache[g]
            if value is None:
                value = self.groups[g].total_for_assignment(self.tensors, self.assign)
                cache[g] = value
            total = total + value
        return float(total)

    def node_bounds(self, m: int) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Per-device total bound if module ``m`` went to each device."""
        affected = self.groups_using[m]
        per_group: Dict[int, np.ndarray] = {
            g: self.bounds[g].bound_vector(self.assign, m) for g in affected
        }
        total = np.zeros(self.n_devices, dtype=np.float64)
        for g in self.group_of_request:
            total = total + (per_group[g] if g in per_group else self.group_lb[g])
        if self.wait is not None:
            total = total + self.wait.bound_vector(m)
        return total, per_group

    def descend(self, m: int, n: int, per_group: Dict[int, np.ndarray]) -> List[Tuple[int, float]]:
        self.assign[m] = n
        self.residual[n] -= self.memory[m]
        saved = [(g, self.group_lb[g]) for g in per_group]
        for g, vector in per_group.items():
            self.group_lb[g] = float(vector[n])
        if self.wait is not None:
            self.wait.descend(m, n)
        return saved

    def ascend(self, m: int, n: int, saved: List[Tuple[int, float]]) -> None:
        if self.wait is not None:
            self.wait.ascend(m, n)
        for g, value in saved:
            self.group_lb[g] = value
        self.residual[n] += self.memory[m]
        self.assign[m] = -1


def branch_and_bound_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    parallel: bool = True,
    tensors: Optional[CostTensors] = None,
    stats: Optional[BnBStats] = None,
    congestion: Optional[CongestionModel] = None,
) -> Tuple[Placement, float]:
    """The latency-optimal single-copy placement and its objective.

    Identical to brute force (same argmin, same tie-break toward the
    lexicographically smallest assignment, same float objective) — verified
    property-style in ``tests/test_placement_tensors.py``.

    With ``congestion`` set, the objective becomes queue-aware — base
    latency plus each class's expected waits (see
    :class:`~repro.core.placement.tensors.WaitTensors`) — and the bounds
    gain an admissible wait term; the brute-vs-bnb identity then holds
    against ``LatencyModel.congestion_objective`` (property-tested in
    ``tests/test_placement_wait.py``).  ``congestion=None`` leaves the
    historical solver bit-identical.
    """
    if not requests:
        raise PlacementError("optimal placement needs at least one request to score")
    net = network if network is not None else Network()
    if net.has_jitter:
        # Cost tensors cache transfer prices, which would freeze one random
        # jitter draw into the whole search — silently diverging from the
        # scalar path.  The brute-force solver prices through the scalar
        # fallback and stays correct under (deterministic) jitter hooks.
        raise PlacementError(
            "branch-and-bound prices through cached cost tensors, which "
            "would freeze the network's jitter hook; clear the jitter or "
            "use optimal_placement(..., solver='brute')"
        )
    if tensors is None:
        tensors = CostTensors(problem, net, parallel=parallel)
    else:
        tensors.check_compatible(problem, net, parallel)
    stats = stats if stats is not None else BnBStats()
    search = _Search(tensors, requests, stats, congestion=congestion)

    # ------------------------------------------------------------------
    # Phase 1 — optimal value.  Branch heads first (they pin every path's
    # output-transfer endpoint, tightening all bounds at once), then
    # encoders by descending best-case path cost: Eq. 2's max means the
    # most expensive path decides the stage, so fixing critical encoders
    # early moves the bound the most; modules no request uses go last.
    # Pruning is ``bound >= best``: such subtrees cannot strictly improve.
    # ------------------------------------------------------------------
    head_modules = {g.head_idx for g in search.groups}
    criticality = [0.0] * search.n_modules
    for bound in search.bounds:
        for e, idx in enumerate(bound.encoder_idx):
            criticality[idx] = max(criticality[idx], bound.free[e])

    def value_order_key(m: int) -> Tuple[int, int, float, int, str]:
        unused = 0 if search.groups_using[m] else 1
        is_head = 0 if m in head_modules else 1
        return (unused, is_head, -criticality[m], -search.memory[m], tensors.module_names[m])

    value_order = sorted(range(search.n_modules), key=value_order_key)

    best_value = float("inf")
    # Seed the incumbent with greedy Algorithm 1 (a member of the search
    # space) so deep subtrees prune early; exactness does not depend on it.
    try:
        from repro.core.placement.greedy import greedy_placement

        seed = greedy_placement(problem)
        for name, hosts in seed.as_dict().items():
            search.assign[tensors.module_idx(name)] = tensors.device_idx(hosts[0])
        best_value = search.leaf_objective()
    except PlacementError:
        pass
    finally:
        search.assign[:] = -1

    def value_dfs(depth: int) -> None:
        nonlocal best_value
        stats.nodes += 1
        m = value_order[depth]
        node_bound, per_group = search.node_bounds(m)
        candidates = [
            n for n in range(search.n_devices)
            if search.residual[n] >= search.memory[m]
        ]
        candidates.sort(key=lambda n: node_bound[n])
        for n in candidates:
            # ``best_value`` is always *attained* (greedy seed or a visited
            # leaf), so a subtree whose bound ties it cannot strictly
            # improve — prune on >=, which collapses Eq. 2's max-plateaus.
            if node_bound[n] >= best_value:
                stats.pruned += 1
                continue
            saved = search.descend(m, n, per_group)
            if depth + 1 == search.n_modules:
                stats.leaves += 1
                objective = search.leaf_objective()
                if objective < best_value:
                    best_value = objective
            else:
                value_dfs(depth + 1)
            search.ascend(m, n, saved)

    value_dfs(0)
    if best_value == float("inf"):
        raise PlacementError("no memory-feasible placement exists for this instance")

    # ------------------------------------------------------------------
    # Phase 2 — brute force's argmin.  Enumerate in tie-key order (modules
    # by sorted name, devices by sorted name) pruning ``bound > V``; the
    # first leaf that attains V is the lexicographically-smallest optimum.
    # ------------------------------------------------------------------
    tie_module_order = sorted(range(search.n_modules), key=lambda m: tensors.module_names[m])
    tie_device_order = sorted(range(search.n_devices), key=lambda n: tensors.device_names[n])

    def tie_dfs(depth: int) -> Optional[np.ndarray]:
        stats.nodes += 1
        m = tie_module_order[depth]
        node_bound, per_group = search.node_bounds(m)
        for n in tie_device_order:
            if search.residual[n] < search.memory[m]:
                continue
            if node_bound[n] > best_value:
                stats.pruned += 1
                continue
            saved = search.descend(m, n, per_group)
            if depth + 1 == search.n_modules:
                stats.leaves += 1
                if search.leaf_objective() == best_value:
                    winner = search.assign.copy()
                    search.ascend(m, n, saved)
                    return winner
            else:
                winner = tie_dfs(depth + 1)
                if winner is not None:
                    search.ascend(m, n, saved)
                    return winner
            search.ascend(m, n, saved)
        return None

    best_assign = tie_dfs(0)
    if best_assign is None:  # pragma: no cover - phase 1 proved V is attained
        raise PlacementError("no memory-feasible placement exists for this instance")
    placement = Placement(
        {
            tensors.module_names[m]: (tensors.device_names[int(best_assign[m])],)
            for m in range(search.n_modules)
        }
    )
    return placement, best_value


# ======================================================================
# Energy-under-latency-budget branch-and-bound (paper Sec. VII made real)
# ======================================================================

class _EnergyGroupBound:
    """Admissible per-(model, source) *energy* bounds under partial assignment.

    Energy is additive — per encoder path ``(compute + input radio) +
    embedding radio``, plus the head's joules — so the bound is the latency
    bound's structure without Eq. 2's max, LPT waits, or contention terms.
    Every term is a min over the same precomputed floats the exact total
    uses, accumulated in the exact total's operation order; IEEE-754
    addition and min are monotonic, so the bound never exceeds the true
    joules of any completion, and it **equals** them once every member
    module is assigned.
    """

    def __init__(self, energy: EnergyTensors, group: EnergyRequestGroup) -> None:
        tensors = energy.tensors
        self.group = group
        self.encoder_idx = group.encoder_idx
        self.head_idx = group.head_idx
        self.members = tuple(set(group.encoder_idx) | {group.head_idx})
        head_fit = tensors.fits[group.head_idx]
        if not head_fit.any():
            raise PlacementError(
                f"module {group.head_name!r} fits on no device; "
                "apply compression or intra-module partitioning first (paper Sec. V-B)"
            )
        self.head_joules = group.head_joules
        self.head_min = float(np.min(group.head_joules[head_fit]))
        # Per encoder path e (arrays over the device axis), mirroring the
        # latency _GroupBound with A[e] = compute + input radio:
        self.enc_assigned: List[np.ndarray] = []
        self.head_assigned: List[np.ndarray] = []
        self.free: List[float] = []
        for e, idx in enumerate(group.encoder_idx):
            fit = tensors.fits[idx]
            if not fit.any():
                raise PlacementError(
                    f"module {group.encoder_names[e]!r} fits on no device; "
                    "apply compression or intra-module partitioning first (paper Sec. V-B)"
                )
            A = group.A[e]
            out = group.out[e]
            out_min = np.min(out[:, head_fit], axis=1)
            masked = np.where(fit[:, None], A[:, None] + out, np.inf)
            self.enc_assigned.append(A + out_min)
            self.head_assigned.append(np.min(masked, axis=0))
            self.free.append(float(np.min(self.enc_assigned[e][fit])))

    def lower_bound(self, assign: np.ndarray) -> float:
        """Scalar joule bound for the current partial assignment (exact —
        equal to the group's true joules — once every member is assigned)."""
        if all(assign[i] >= 0 for i in self.members):
            return float(self.group.total_for_assignment(assign))
        group = self.group
        nh = int(assign[self.head_idx])
        total = 0.0
        for e, idx in enumerate(self.encoder_idx):
            ne = int(assign[idx])
            if ne >= 0:
                if nh >= 0:
                    term = group.A[e][ne] + group.out[e][ne, nh]
                else:
                    term = self.enc_assigned[e][ne]
            elif nh >= 0:
                term = self.head_assigned[e][nh]
            else:
                term = self.free[e]
            total = total + term
        total = total + (self.head_joules[nh] if nh >= 0 else self.head_min)
        return float(total)

    def bound_vector(self, assign: np.ndarray, module_index: int) -> np.ndarray:
        """Joule bound per candidate device if ``module_index`` were placed
        there; exact (true group joules) when placing it completes the group."""
        group = self.group
        nh = int(assign[self.head_idx])
        head_here = module_index == self.head_idx
        total: object = 0.0
        for e, idx in enumerate(self.encoder_idx):
            ne = int(assign[idx])
            if idx == module_index:
                if head_here:
                    # Module doubles as the head: both endpoints co-locate.
                    term: object = group.A[e] + np.diagonal(group.out[e])
                elif nh >= 0:
                    term = group.A[e] + group.out[e][:, nh]
                else:
                    term = self.enc_assigned[e]
            elif head_here:
                if ne >= 0:
                    term = group.A[e][ne] + group.out[e][ne, :]
                else:
                    term = self.head_assigned[e]
            else:
                if ne >= 0:
                    if nh >= 0:
                        term = group.A[e][ne] + group.out[e][ne, nh]
                    else:
                        term = self.enc_assigned[e][ne]
                elif nh >= 0:
                    term = self.head_assigned[e][nh]
                else:
                    term = self.free[e]
            total = total + term
        head = self.head_joules if head_here else (
            self.head_joules[nh] if nh >= 0 else self.head_min
        )
        return np.broadcast_to(
            np.asarray(total + head, dtype=np.float64), self.head_joules.shape
        ).copy()


class _EnergySearch:
    """Shared state for both phases of the energy branch-and-bound.

    Tracks **two** admissible bound families per request class — joules
    (the objective being minimized) and latency (the Eq. 4a budget
    constraint, via the latency :class:`_GroupBound`) — both fanned out in
    request order so leaf values are bit-identical to the scalar oracles.
    """

    def __init__(
        self,
        tensors: CostTensors,
        energy: EnergyTensors,
        requests: Sequence[InferenceRequest],
        stats: BnBStats,
    ) -> None:
        self.tensors = tensors
        self.energy = energy
        self.stats = stats
        self.n_modules = tensors.n_modules
        self.n_devices = tensors.n_devices
        self.memory = [int(b) for b in tensors.memory]
        self.residual = [int(b) for b in tensors.capacity]
        self.assign = np.full(self.n_modules, -1, dtype=np.int64)

        self.lat_groups: List[RequestGroup] = []
        self.en_groups: List[EnergyRequestGroup] = []
        self.lat_bounds: List[_GroupBound] = []
        self.en_bounds: List[_EnergyGroupBound] = []
        self.group_of_request: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self.lat_groups)
                lat_group = tensors.group(request.model, request.source)
                en_group = energy.group(request.model, request.source)
                self.lat_groups.append(lat_group)
                self.en_groups.append(en_group)
                self.lat_bounds.append(_GroupBound(tensors, lat_group))
                self.en_bounds.append(_EnergyGroupBound(energy, en_group))
            self.group_of_request.append(index_of[key])
        self.groups_using: List[List[int]] = [[] for _ in range(self.n_modules)]
        for g, group in enumerate(self.en_groups):
            for idx in set(group.encoder_idx) | {group.head_idx}:
                self.groups_using[idx].append(g)
        self.lat_lb = [bound.lower_bound(self.assign) for bound in self.lat_bounds]
        self.en_lb = [bound.lower_bound(self.assign) for bound in self.en_bounds]

    # ------------------------------------------------------------------
    def leaf_energy(self) -> float:
        """Exact joules of the full assignment (request-order summation,
        bit-identical to ``EnergyTensors.objective`` on the same placement)."""
        total = 0.0
        cache: List[Optional[float]] = [None] * len(self.en_groups)
        for g in self.group_of_request:
            value = cache[g]
            if value is None:
                value = self.en_groups[g].total_for_assignment(self.assign)
                cache[g] = value
            total = total + value
        return float(total)

    def node_energy_bounds(self, m: int) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Per-device total *energy* bound if module ``m`` went to each device.

        Latency is deliberately not vectorized here: its bound (with the
        per-candidate contention tightening) costs an order of magnitude
        more than the additive energy bound, and the energy prune discards
        most candidates first — the survivors get a scalar latency check in
        :meth:`latency_after` instead.
        """
        affected = self.groups_using[m]
        en_per_group: Dict[int, np.ndarray] = {
            g: self.en_bounds[g].bound_vector(self.assign, m) for g in affected
        }
        en_total = np.zeros(self.n_devices, dtype=np.float64)
        for g in self.group_of_request:
            en_total = en_total + (en_per_group[g] if g in en_per_group else self.en_lb[g])
        return en_total, en_per_group

    def descend(
        self, m: int, n: int, en_per_group: Dict[int, np.ndarray]
    ) -> List[Tuple[int, float]]:
        self.assign[m] = n
        self.residual[n] -= self.memory[m]
        saved = [(g, self.en_lb[g]) for g in en_per_group]
        for g, vector in en_per_group.items():
            self.en_lb[g] = float(vector[n])
        return saved

    def latency_after(self, m: int) -> Tuple[List[Tuple[int, float]], float]:
        """Refresh the latency bounds of the groups using ``m`` (which
        :meth:`descend` just placed) and return (undo list, fanned total).

        ``_GroupBound.lower_bound`` on the updated assignment is admissible
        at interior nodes and **exact** once a group is complete, so at a
        leaf the fanned total is the true latency objective, bit-identical
        to ``CostTensors.objective``.
        """
        saved = []
        for g in self.groups_using[m]:
            saved.append((g, self.lat_lb[g]))
            self.lat_lb[g] = self.lat_bounds[g].lower_bound(self.assign)
        total = 0.0
        for g in self.group_of_request:
            total = total + self.lat_lb[g]
        return saved, float(total)

    def restore_latency(self, saved: List[Tuple[int, float]]) -> None:
        for g, value in saved:
            self.lat_lb[g] = value

    def ascend(self, m: int, n: int, saved: List[Tuple[int, float]]) -> None:
        for g, en_value in saved:
            self.en_lb[g] = en_value
        self.residual[n] += self.memory[m]
        self.assign[m] = -1


def _any_memory_feasible(search: "_EnergySearch") -> bool:
    """Whether any assignment satisfies the memory constraints alone.

    First-fit backtracking over modules by descending memory — only called
    when the bounded search found no leaf, to decide between the
    ``(None, inf)`` over-budget result and the memory-infeasibility error.
    """
    order = sorted(range(search.n_modules), key=lambda m: -search.memory[m])
    residual = list(search.residual)

    def fit(depth: int) -> bool:
        if depth == len(order):
            return True
        need = search.memory[order[depth]]
        for n in range(search.n_devices):
            if residual[n] >= need:
                residual[n] -= need
                if fit(depth + 1):
                    return True
                residual[n] += need
        return False

    return fit(0)


def _energy_incumbent(
    tensors: CostTensors,
    energy: EnergyTensors,
    requests: Sequence[InferenceRequest],
    latency_budget: float,
) -> Optional[np.ndarray]:
    """A strong attained incumbent: greedy Algorithm 1, then a steepest
    energy descent over single-module moves that keep the latency objective
    within budget (both trackers are the bit-identical incremental APIs, so
    the incumbent's joules are directly comparable to leaf values).

    Returns ``None`` when greedy itself is infeasible or over budget — the
    search then runs incumbent-less and discovers feasibility on its own.
    """
    try:
        from repro.core.placement.greedy import greedy_placement

        seed = greedy_placement(tensors.problem)
    except PlacementError:
        return None
    latency = IncrementalObjective(tensors, requests, seed)
    if latency.objective > latency_budget:
        return None
    joules = IncrementalEnergy(energy, requests, seed)
    residual = [int(b) for b in tensors.capacity]
    for m in range(tensors.n_modules):
        residual[int(joules.assign[m])] -= int(tensors.memory[m])
    names = tensors.device_names
    for _ in range(32):  # steepest descent; passes bounded for safety
        improved = False
        for m in range(tensors.n_modules):
            module_name = tensors.module_names[m]
            current = int(joules.assign[m])
            best_n, best_joules = current, joules.joules
            for n in range(tensors.n_devices):
                if n == current or residual[n] < int(tensors.memory[m]):
                    continue
                moved = joules.move(module_name, names[n])
                if moved < best_joules and (
                    latency.move(module_name, names[n]) <= latency_budget
                ):
                    best_n, best_joules = n, moved
            joules.move(module_name, names[best_n])
            latency.move(module_name, names[best_n])
            if best_n != current:
                residual[current] += int(tensors.memory[m])
                residual[best_n] -= int(tensors.memory[m])
                improved = True
        if not improved:
            break
    return joules.assign.copy()


def energy_branch_and_bound(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    latency_budget: float = float("inf"),
    parallel: bool = True,
    tensors: Optional[CostTensors] = None,
    energy: Optional[EnergyTensors] = None,
    stats: Optional[BnBStats] = None,
) -> Tuple[Optional[Placement], float]:
    """The minimum-energy single-copy placement within a latency budget.

    Minimizes total joules (:mod:`repro.profiles.energy` semantics) subject
    to the latency objective (Problem 4a) not exceeding ``latency_budget``
    — identical result (same argmin, same joules, same tie-break toward the
    lexicographically smallest assignment) as brute-force enumeration with
    a budget filter, verified property-style in ``tests/test_energy.py``.

    Returns ``(None, inf)`` when memory-feasible placements exist but none
    meets the budget (the budget is inclusive: ``latency == budget`` is
    feasible); raises :class:`PlacementError` when no memory-feasible
    placement exists at all — the same contract as the brute oracle.
    """
    if not requests:
        raise PlacementError("energy-optimal placement needs at least one request to score")
    net = network if network is not None else Network()
    if net.has_jitter:
        raise PlacementError(
            "energy branch-and-bound prices through cached cost tensors, "
            "which would freeze the network's jitter hook; clear the jitter "
            "or use energy_optimal_placement(..., solver='brute')"
        )
    if tensors is None:
        tensors = CostTensors(problem, net, parallel=parallel)
    else:
        tensors.check_compatible(problem, net, parallel)
    if energy is None:
        energy = EnergyTensors(tensors)
    elif energy.tensors is not tensors:
        raise PlacementError(
            "shared energy tensors were built on a different cost-tensor "
            "cache; pass the matching tensors= they were built with"
        )
    stats = stats if stats is not None else BnBStats()
    search = _EnergySearch(tensors, energy, requests, stats)

    # ------------------------------------------------------------------
    # Branching order: heads first (they pin every path's embedding
    # endpoint, tightening all bounds at once), then encoders by descending
    # best-case path joules; modules no request uses go last.
    # ------------------------------------------------------------------
    head_modules = {g.head_idx for g in search.en_groups}
    criticality = [0.0] * search.n_modules
    for bound in search.en_bounds:
        for e, idx in enumerate(bound.encoder_idx):
            criticality[idx] = max(criticality[idx], bound.free[e])

    def value_order_key(m: int) -> Tuple[int, int, float, int, str]:
        unused = 0 if search.groups_using[m] else 1
        is_head = 0 if m in head_modules else 1
        return (unused, is_head, -criticality[m], -search.memory[m], tensors.module_names[m])

    value_order = sorted(range(search.n_modules), key=value_order_key)

    def tie_key(assign: np.ndarray) -> Tuple[Tuple[str, Tuple[str, ...]], ...]:
        """Brute force's deterministic tie-break key for a full assignment."""
        return tuple(
            sorted(
                (tensors.module_names[m], (tensors.device_names[int(assign[m])],))
                for m in range(search.n_modules)
            )
        )

    # Incumbent: greedy Algorithm 1 (budget-feasible whenever the budget is
    # a >= 1 multiple of greedy's own latency, as energy_aware_placement
    # builds it), improved by a budget-constrained energy descent.  A tight
    # attained incumbent is what keeps the frontier small: the search only
    # has to certify optimality, not discover it.
    best_energy = float("inf")
    best_key: Optional[Tuple] = None
    best_assign: Optional[np.ndarray] = None
    seed_assign = _energy_incumbent(tensors, energy, requests, latency_budget)
    if seed_assign is not None:
        search.assign[:] = seed_assign
        best_energy = search.leaf_energy()
        best_key = tie_key(search.assign)
        best_assign = search.assign.copy()
        search.assign[:] = -1

    # ------------------------------------------------------------------
    # Single-phase DFS.  Pruning is ``energy bound > best`` (strictly:
    # equal-bound subtrees may still hold an equal-joule leaf with a
    # smaller tie-key) and ``latency bound > budget``; at a leaf both
    # bounds are exact, so the incumbent update compares the true
    # (joules, tie-key) pair exactly as brute force's argmin does.
    # Energy is additive, so exact-tie plateaus are rare and the strict
    # prune stays sharp (unlike Eq. 2's max-plateaus in the latency search).
    # ------------------------------------------------------------------
    def dfs(depth: int) -> None:
        nonlocal best_energy, best_key, best_assign
        stats.nodes += 1
        m = value_order[depth]
        en_bound, en_pg = search.node_energy_bounds(m)
        candidates = [
            n for n in range(search.n_devices)
            if search.residual[n] >= search.memory[m]
        ]
        candidates.sort(key=lambda n: en_bound[n])
        for n in candidates:
            if en_bound[n] > best_energy:
                stats.pruned += 1
                continue
            saved = search.descend(m, n, en_pg)
            lat_saved, lat_total = search.latency_after(m)
            if lat_total > latency_budget:
                stats.pruned += 1
            elif depth + 1 == search.n_modules:
                stats.leaves += 1
                # Bounds are exact at leaves: en_bound[n] is the true total
                # joules, lat_total the true latency (already <= budget).
                leaf = float(en_bound[n])
                if leaf < best_energy:
                    best_energy = leaf
                    best_key = tie_key(search.assign)
                    best_assign = search.assign.copy()
                elif leaf == best_energy:
                    key = tie_key(search.assign)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_assign = search.assign.copy()
            else:
                dfs(depth + 1)
            search.restore_latency(lat_saved)
            search.ascend(m, n, saved)

    dfs(0)
    if best_assign is None:
        # Distinguish "over budget" from "memory-infeasible outright" so
        # both solvers keep the same contract: the brute oracle raises when
        # enumeration yields nothing at all.
        if not _any_memory_feasible(search):
            raise PlacementError("no memory-feasible placement exists for this instance")
        return None, float("inf")
    placement = Placement(
        {
            tensors.module_names[m]: (tensors.device_names[int(best_assign[m])],)
            for m in range(search.n_modules)
        }
    )
    return placement, best_energy
