"""Ablation variants of the greedy placement (DESIGN.md Sec. 5).

These isolate the two design choices in Algorithm 1:

- visiting modules in **descending memory order** (vs. ascending/random);
- scoring encoder candidates with **accumulated completion time** (Eq. 5)
  vs. pure compute time (Eq. 6 applied to everything).
"""

from __future__ import annotations

from typing import List

from repro.core.modules import ModuleSpec
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import PlacementError
from repro.utils.seeding import rng_for


def ascending_memory_placement(problem: PlacementProblem) -> Placement:
    """Greedy but visiting the *smallest* modules first (order ablation)."""

    def order(p: PlacementProblem) -> List[ModuleSpec]:
        return sorted(p.modules, key=lambda m: (m.memory_bytes, m.name))

    return greedy_placement(problem, order=order)


def no_accumulation_placement(problem: PlacementProblem) -> Placement:
    """Greedy but scoring encoders with pure compute time (Eq. 6 for all).

    Without accumulation, every heavy module piles onto the single fastest
    device, destroying per-request parallelism.
    """
    return greedy_placement(problem, accumulate_encoders=False)


def random_placement(problem: PlacementProblem, seed: int = 0, attempts: int = 200) -> Placement:
    """A uniformly random memory-feasible placement (weak baseline)."""
    rng = rng_for("random-placement", seed)
    device_names = [device.name for device in problem.devices]
    for _ in range(attempts):
        residual = {device.name: device.memory_bytes for device in problem.devices}
        assignment = {}
        ok = True
        for module in problem.modules:
            choices = [name for name in device_names if residual[name] >= module.memory_bytes]
            if not choices:
                ok = False
                break
            host = choices[int(rng.integers(len(choices)))]
            assignment[module.name] = (host,)
            residual[host] -= module.memory_bytes
        if ok:
            return Placement(assignment)
    raise PlacementError(f"no feasible random placement found in {attempts} attempts")
