"""The placement problem instance and decision objects.

A :class:`PlacementProblem` carries the distinct module set ``M`` (after
sharing), the candidate devices with their memory budgets, and the compute
model used for the completion-time scores of Eqs. 5-7.  A :class:`Placement`
is the binary decision matrix ``x_{m,n}`` in sparse form: module name ->
tuple of host device names (multiple hosts = replication).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.core.sharing import build_sharing_plan
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import DeviceProfile, get_device_profile
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class PlacementProblem:
    """One placement instance: modules, devices, and timing oracles."""

    modules: Tuple[ModuleSpec, ...]
    devices: Tuple[DeviceProfile, ...]
    models: Tuple[ModelSpec, ...]
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL
    #: Optional multiplicative noise on compute times, keyed by
    #: (module, device) — used by the randomized optimality trials to model
    #: the paper's run-to-run variability.
    compute_noise: Mapping[Tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.modules:
            raise ConfigurationError("placement problem has no modules")
        if not self.devices:
            raise ConfigurationError("placement problem has no devices")
        names = [module.name for module in self.modules]
        if len(set(names)) != len(names):
            raise ConfigurationError("placement problem has duplicate modules")
        object.__setattr__(self, "compute_noise", MappingProxyType(dict(self.compute_noise)))
        # Memoization caches (not dataclass fields: they do not participate
        # in __eq__, and everything they derive from is frozen).  Candidate
        # ranking in the greedy solver and enumeration scoring hit the same
        # (module, device) pairs over and over; computing each once is the
        # satellite companion of the cost-tensor layer.
        object.__setattr__(self, "_device_by_name", {d.name: d for d in self.devices})
        object.__setattr__(self, "_planning_scale_cache", {})
        object.__setattr__(self, "_compute_seconds_cache", {})

    # ------------------------------------------------------------------
    # Timing oracles
    # ------------------------------------------------------------------
    def planning_scale(self, module: ModuleSpec) -> float:
        """Work scale used for planning: the most demanding use of the module.

        A shared text encoder serves retrieval's full prompt set and VQA's
        single question; placement must budget for the heavier use.
        Memoized per module name (the model set is frozen).
        """
        cache: Dict[str, float] = self._planning_scale_cache  # type: ignore[attr-defined]
        try:
            return cache[module.name]
        except KeyError:
            scales = [model.scale_for(module.name) for model in self.models
                      if module.name in model.module_names]
            cache[module.name] = scale = max(scales, default=1.0)
            return scale

    def compute_seconds(self, module: ModuleSpec, device: DeviceProfile) -> float:
        """Planning ``t^comp_{m,n}`` in seconds with the planning work
        scale and noise.

        Memoized per (module, device) name pair so candidate rankings in
        :func:`~repro.core.placement.greedy.greedy_placement` and
        enumeration scoring stop re-deriving identical values.
        """
        cache: Dict[Tuple[str, str], float] = self._compute_seconds_cache  # type: ignore[attr-defined]
        key = (module.name, device.name)
        try:
            return cache[key]
        except KeyError:
            base = device.compute_seconds(module, work_scale=self.planning_scale(module))
            cache[key] = value = base * self.compute_noise.get(key, 1.0)
            return value

    def device(self, name: str) -> DeviceProfile:
        try:
            return self._device_by_name[name]  # type: ignore[attr-defined]
        except KeyError:
            raise ConfigurationError(f"unknown device {name!r} in problem") from None

    @staticmethod
    def from_models(
        models: Sequence["ModelSpec | str"],
        device_names: Sequence[str],
        compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
        compute_noise: Optional[Mapping[Tuple[str, str], float]] = None,
    ) -> "PlacementProblem":
        """Build a problem from a model set (sharing applied) and device names."""
        plan = build_sharing_plan(models)
        return PlacementProblem(
            modules=tuple(plan.distinct_modules),
            devices=tuple(get_device_profile(name) for name in device_names),
            models=tuple(plan.models),
            compute_model=compute_model,
            compute_noise=dict(compute_noise or {}),
        )


@dataclass(frozen=True)
class Placement:
    """A placement decision: module name -> host device names (``x_{m,n}``)."""

    assignments: Mapping[str, Tuple[str, ...]]

    def __post_init__(self) -> None:
        object.__setattr__(self, "assignments", MappingProxyType(dict(self.assignments)))

    def hosts(self, module_name: str) -> Tuple[str, ...]:
        """Devices hosting ``module_name`` (the paper's ``N_m``)."""
        try:
            return self.assignments[module_name]
        except KeyError:
            raise ConfigurationError(f"module {module_name!r} is unplaced") from None

    def primary_host(self, module_name: str) -> str:
        """First host (used when a module has a single copy)."""
        return self.hosts(module_name)[0]

    @property
    def module_names(self) -> List[str]:
        return list(self.assignments)

    def modules_on(self, device_name: str) -> List[str]:
        """Module names hosted by ``device_name``."""
        return [name for name, hosts in self.assignments.items() if device_name in hosts]

    def used_bytes(self, device_name: str, modules: Mapping[str, ModuleSpec]) -> int:
        """Total weight bytes this placement puts on ``device_name``."""
        return sum(modules[name].memory_bytes for name in self.modules_on(device_name))

    def as_dict(self) -> Dict[str, Tuple[str, ...]]:
        return dict(self.assignments)

    def with_extra(self, module_name: str, device_name: str) -> "Placement":
        """A new placement with an extra replica of ``module_name``."""
        updated = dict(self.assignments)
        hosts = updated.get(module_name, ())
        if device_name in hosts:
            return self
        updated[module_name] = hosts + (device_name,)
        return Placement(updated)
