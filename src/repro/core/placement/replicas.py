"""Replica-set placement: replication as a first-class decision variable.

The paper treats replication as an afterthought (Sec. V-B's last paragraph:
spend leftover memory on extra copies, implemented by
:func:`~repro.core.placement.greedy.replicate_with_leftover`).  This module
promotes it to a solved-for dimension: each module gets a **host set**
``N_m`` of 1..``max_copies`` devices, requests route to their **cheapest
replica** (the joint Eq. 1-3 minimum over host combinations — see
``LatencyModel.replica_route``), and the solvers minimize the resulting
total latency under the same per-device memory budget (Eq. 4d).

Why cheapest-replica routing and not Eq. 7: Eq. 7 picks the fastest
*compute* host per module, which is the same device for every request, so
under it an extra replica can never change the analytic objective.  The
replica rule prices input transfer + compute + embedding shipping, so
requests from different source devices genuinely spread across copies.

Three solvers, same contract as the single-copy stack:

- :func:`replica_aware_greedy` — seed with greedy Algorithm 1, then add
  the single replica with the best strict objective improvement until no
  addition helps (the objective-driven generalization of
  ``replicate_with_leftover``).
- :func:`replica_brute_force` — enumerate every memory-feasible host-set
  assignment (capped at :data:`MAX_REPLICA_ASSIGNMENTS`).
- :func:`replica_branch_and_bound` — the exact search: admissible
  per-request-class bounds pruned over subset candidates, two phases
  (value, then a tie-break walk in brute-force key order), returning the
  **identical placement, objective, and tie-break** as brute force —
  property-tested in ``tests/test_replicas.py``.

All durations are **seconds**; module sizes are **bytes**.  Host tuples in
returned placements are in sorted device-name order (the canonical form the
tie-break compares), and ties break toward the lexicographically smallest
``sorted((module, hosts))`` assignment — the same convention as
:func:`~repro.core.placement.optimal.optimal_placement`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.tensors import (
    CongestionModel,
    CostTensors,
    RequestGroup,
    WaitTensors,
)
from repro.utils.errors import PlacementError

#: Multiplicative slack on the wait lower-bound term: the bound is
#: admissible in real arithmetic (waits are monotone in offered load), and
#: the slack absorbs float-reordering noise so bnb == brute stays bit-exact.
_WAIT_SLACK = 1.0 - 1e-9

#: Safety cap on the host-set enumeration size for brute force.
MAX_REPLICA_ASSIGNMENTS = 2_000_000

#: Accepted ``solver`` values for :func:`replica_optimal_placement`.
REPLICA_SOLVERS = ("auto", "bnb", "brute")


def host_subsets(device_names: Sequence[str], max_copies: int) -> List[Tuple[str, ...]]:
    """Every candidate host set: 1..``max_copies`` devices, as sorted-name
    tuples, in lexicographic tuple order (the brute-force tie-key order)."""
    if max_copies < 1:
        raise ValueError(f"max_copies must be >= 1, got {max_copies}")
    ordered = sorted(device_names)
    subsets: List[Tuple[str, ...]] = []
    for size in range(1, min(max_copies, len(ordered)) + 1):
        subsets.extend(itertools.combinations(ordered, size))
    subsets.sort()
    return subsets


def enumerate_replica_placements(
    problem: PlacementProblem, max_copies: int = 2
) -> Iterator[Placement]:
    """Yield every memory-feasible host-set placement, in tie-key order.

    Modules are walked in sorted-name order and host sets in lexicographic
    tuple order, so placements stream out exactly in increasing
    ``sorted((module, hosts))`` key order — the first optimum found by a
    linear scan is brute force's deterministic tie-break winner.  A subset
    charges the module's full weight bytes on **each** member device
    (replicas are real copies), and an infeasible prefix prunes its whole
    subtree.
    """
    modules = sorted(problem.modules, key=lambda m: m.name)
    subsets = host_subsets([d.name for d in problem.devices], max_copies)
    total = len(subsets) ** len(modules)
    if total > MAX_REPLICA_ASSIGNMENTS:
        raise PlacementError(
            f"brute force would enumerate {total} host-set assignments "
            f"(> {MAX_REPLICA_ASSIGNMENTS}); use replica_branch_and_bound "
            "(exact, memory/bound-pruned) or replica_aware_greedy for "
            "instances of this size"
        )
    residual: Dict[str, int] = {d.name: d.memory_bytes for d in problem.devices}
    choice: List[Tuple[str, ...]] = [()] * len(modules)

    def walk(index: int) -> Iterator[Placement]:
        if index == len(modules):
            yield Placement(
                {module.name: choice[i] for i, module in enumerate(modules)}
            )
            return
        need = modules[index].memory_bytes
        for subset in subsets:
            if any(residual[name] < need for name in subset):
                continue
            for name in subset:
                residual[name] -= need
            choice[index] = subset
            yield from walk(index + 1)
            for name in subset:
                residual[name] += need

    yield from walk(0)


def replica_brute_force(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    max_copies: int = 2,
    parallel: bool = True,
    tensors: Optional[CostTensors] = None,
    congestion: Optional[CongestionModel] = None,
) -> Tuple[Placement, float]:
    """The replica-optimal placement by exhaustive host-set enumeration.

    Scores every feasible assignment with the cheapest-replica objective
    (``LatencyModel.replica_objective``, seconds) and returns the argmin;
    ties break toward the lexicographically smallest assignment (the
    enumeration order guarantees it).  The oracle the branch-and-bound is
    verified against.  ``congestion`` switches scoring to the queue-aware
    ``congestion_replica_objective`` (base latency plus expected waits).
    """
    if not requests:
        raise PlacementError("replica placement needs at least one request to score")
    from repro.core.routing.latency import LatencyModel

    net = network if network is not None else Network()
    model = LatencyModel(problem, net, parallel=parallel, tensors=tensors)
    best: Optional[Tuple[float, Placement]] = None
    for placement in enumerate_replica_placements(problem, max_copies):
        if congestion is not None:
            objective = model.congestion_replica_objective(requests, placement, congestion)
        else:
            objective = model.replica_objective(requests, placement)
        if best is None or objective < best[0]:
            best = (objective, placement)
    if best is None:
        raise PlacementError("no memory-feasible placement exists for this instance")
    return best[1], best[0]


def replica_aware_greedy(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    max_copies: int = 2,
    parallel: bool = True,
    tensors: Optional[CostTensors] = None,
    base: Optional[Placement] = None,
    congestion: Optional[CongestionModel] = None,
) -> Tuple[Placement, float]:
    """Objective-driven replication: best-improvement replica additions.

    The replica-aware generalization of
    :func:`~repro.core.placement.greedy.replicate_with_leftover`: instead
    of copying modules onto "the fastest device with room" regardless of
    benefit, each round prices **every** candidate replica (module not at
    ``max_copies``, device with enough residual memory) under the
    cheapest-replica objective and applies the one with the largest strict
    improvement; rounds repeat until no addition helps.  Ties between
    equally-improving candidates break toward the smallest
    ``(objective, module name, device name)`` triple.

    ``base`` seeds the search (defaults to greedy Algorithm 1's single-copy
    placement, so the result is always at least as good as greedy).
    Returns ``(placement, objective_seconds)`` with host tuples in sorted
    device-name order.  ``congestion`` prices candidates with the
    queue-aware ``congestion_replica_objective`` instead.
    """
    if not requests:
        raise PlacementError("replica placement needs at least one request to score")
    if max_copies < 1:
        raise ValueError(f"max_copies must be >= 1, got {max_copies}")
    from repro.core.routing.latency import LatencyModel

    net = network if network is not None else Network()
    model = LatencyModel(problem, net, parallel=parallel, tensors=tensors)
    if congestion is not None:
        def score(placement: Placement) -> float:
            return model.congestion_replica_objective(requests, placement, congestion)
    else:
        def score(placement: Placement) -> float:
            return model.replica_objective(requests, placement)
    current = base if base is not None else greedy_placement(problem)
    modules = {m.name: m for m in problem.modules}
    residual: Dict[str, int] = {d.name: d.memory_bytes for d in problem.devices}
    for name, hosts in current.as_dict().items():
        for host in hosts:
            residual[host] -= modules[name].memory_bytes
    best_objective = score(current)

    while True:
        best_move: Optional[Tuple[float, str, str]] = None
        for module_name in sorted(modules):
            hosts = current.hosts(module_name)
            if len(hosts) >= max_copies:
                continue
            need = modules[module_name].memory_bytes
            for device in problem.devices:
                if device.name in hosts or residual[device.name] < need:
                    continue
                candidate = current.with_extra(module_name, device.name)
                objective = score(candidate)
                if objective >= best_objective:
                    continue
                move = (objective, module_name, device.name)
                if best_move is None or move < best_move:
                    best_move = move
        if best_move is None:
            break
        best_objective, module_name, device_name = best_move
        current = current.with_extra(module_name, device_name)
        residual[device_name] -= modules[module_name].memory_bytes

    canonical = Placement(
        {name: tuple(sorted(hosts)) for name, hosts in current.as_dict().items()}
    )
    return canonical, best_objective


class _ReplicaGroupBound:
    """Admissible per-(model, source) latency bounds under partial host sets.

    For a partial assignment (some modules pinned to host sets, others
    free), each encoder path is lower-bounded by the cheapest
    ``in + compute + out`` over its allowed (encoder host, head host)
    pairs — the assigned sets where pinned, every memory-fitting device
    where free — and the head by its cheapest compute over allowed hosts.
    True replica-routed latency picks ONE combination and adds
    non-negative queue waits, so it can only be larger; min/max/sum over
    the same precomputed floats keep the bound monotone (IEEE-754), hence
    admissible.  The bound is *not* exact at completion (paths are bounded
    independently, routing is joint), so leaves are priced exactly with
    :meth:`RequestGroup.best_hosts`.
    """

    def __init__(self, tensors: CostTensors, group: RequestGroup) -> None:
        self.tensors = tensors
        self.group = group
        self.parallel = tensors.parallel
        self.members = group.member_idx
        self.head_idx = group.head_idx
        head_fit = tensors.fits[group.head_idx]
        if not head_fit.any():
            raise PlacementError(
                f"module {group.head_name!r} fits on no device; "
                "apply compression or intra-module partitioning first (paper Sec. V-B)"
            )
        self._head_fit_idx = np.flatnonzero(head_fit)
        self._enc_fit_idx: List[np.ndarray] = []
        for e, idx in enumerate(group.encoder_idx):
            fit = tensors.fits[idx]
            if not fit.any():
                raise PlacementError(
                    f"module {group.encoder_names[e]!r} fits on no device; "
                    "apply compression or intra-module partitioning first (paper Sec. V-B)"
                )
            self._enc_fit_idx.append(np.flatnonzero(fit))

    def lower_bound(self, sets: List[Optional[Tuple[int, ...]]]) -> float:
        """Scalar bound (seconds) for the current partial assignment.

        Exploits the structure of cheapest-replica routing: *given* the
        head host, encoder paths choose their replicas independently, so
        ``min over nh of [stage(nh) + head(nh)]`` with ``stage(nh)`` the
        per-head-host max (or sum) of each path's cheapest replica is the
        exact waits-free relaxation — far tighter than bounding every path
        over all (encoder, head) pairs at once.  Queue waits are
        non-negative, so the relaxation never exceeds the true value.
        """
        group = self.group
        head_allowed = sets[self.head_idx]
        nh = (
            np.asarray(head_allowed, dtype=np.int64)
            if head_allowed is not None
            else self._head_fit_idx
        )
        stage: Optional[np.ndarray] = None
        for e, idx in enumerate(group.encoder_idx):
            enc_allowed = sets[idx]
            ne = (
                np.asarray(enc_allowed, dtype=np.int64)
                if enc_allowed is not None
                else self._enc_fit_idx[e]
            )
            A = group.in_comm[e][ne] + group.enc_comp[e][ne]
            best_per_head = np.min(A[:, None] + group.out[e][np.ix_(ne, nh)], axis=0)
            if stage is None:
                stage = best_per_head
            elif self.parallel:
                stage = np.maximum(stage, best_per_head)
            else:
                stage = stage + best_per_head
        totals = group.head_comp[nh] if stage is None else stage + group.head_comp[nh]
        return float(np.min(totals))

    def exact(self, sets: List[Optional[Tuple[int, ...]]]) -> float:
        """True class latency (seconds) once every member set is assigned."""
        candidates = [list(sets[idx]) for idx in self.members]  # type: ignore[arg-type]
        return self.group.best_hosts(self.tensors, candidates)[0]


class _ReplicaSearch:
    """Shared state for both phases of the replica branch-and-bound."""

    def __init__(
        self,
        tensors: CostTensors,
        requests: Sequence[InferenceRequest],
        max_copies: int,
        congestion: Optional[CongestionModel] = None,
    ) -> None:
        self.tensors = tensors
        self.requests = list(requests)
        self.max_copies = max_copies
        self.n_modules = tensors.n_modules
        self.n_devices = tensors.n_devices
        self.memory = [int(b) for b in tensors.memory]
        self.residual = [int(b) for b in tensors.capacity]
        #: Per-module assigned host set (device indices, name-sorted) or None.
        self.sets: List[Optional[Tuple[int, ...]]] = [None] * self.n_modules

        # Candidate subsets per module: device-index tuples in the brute
        # enumeration's lexicographic *name* order (host_subsets is the
        # single source of that order — the bnb==brute tie-break contract
        # depends on both walking candidates identically), filtered to
        # devices the module fits on outright (residual pruning per node).
        index_of_device = {name: n for n, name in enumerate(tensors.device_names)}
        self.subsets_of: List[List[Tuple[int, ...]]] = []
        for m in range(self.n_modules):
            fitting = [
                tensors.device_names[n]
                for n in range(self.n_devices)
                if tensors.fits[m, n]
            ]
            self.subsets_of.append(
                [
                    tuple(index_of_device[name] for name in subset)
                    for subset in host_subsets(fitting, max_copies)
                ]
                if fitting
                else []
            )

        self.groups: List[RequestGroup] = []
        self.bounds: List[_ReplicaGroupBound] = []
        self.group_of_request: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self.groups)
                group = tensors.group(request.model, request.source)
                self.groups.append(group)
                self.bounds.append(_ReplicaGroupBound(tensors, group))
            self.group_of_request.append(index_of[key])
        self.groups_using: List[List[int]] = [[] for _ in range(self.n_modules)]
        for g, group in enumerate(self.groups):
            for idx in group.member_idx:
                self.groups_using[idx].append(g)
        self.group_lb = [bound.lower_bound(self.sets) for bound in self.bounds]

        # Queue-wait bound state: per-device utilization/residual load sums
        # maintained incrementally across descend/ascend (the *bound* only
        # needs admissibility — float drift from add/undo is absorbed by
        # ``_WAIT_SLACK``; leaves are re-priced canonically for bit-identity).
        self.wait = WaitTensors(tensors, congestion) if congestion is not None else None
        if self.wait is not None:
            #: Per-module offered-load contributions: (rate, compute row).
            self._wait_contrib: List[List[Tuple[float, np.ndarray]]] = [
                [] for _ in range(self.n_modules)
            ]
            for _model, lam, members, comp in self.wait.entries(self.requests):
                if lam == 0.0:
                    continue  # zero-rate models add no load (and no 0*inf NaNs)
                for m in members:
                    self._wait_contrib[m].append((lam, comp[m]))
            self._wu = np.zeros(self.n_devices)
            self._wr = np.zeros(self.n_devices)
            #: Count of infinite (missing-throughput) loads per device —
            #: tracked separately so ascend can undo them exactly
            #: (inf - inf would poison the running sums with NaN).
            self._winf = np.zeros(self.n_devices, dtype=np.int64)
            self._wslots = np.asarray(tensors.slots, dtype=float)

    # ------------------------------------------------------------------
    def feasible_subsets(self, m: int) -> List[Tuple[int, ...]]:
        """Candidate host sets for module ``m`` under the current residuals."""
        need = self.memory[m]
        return [
            subset
            for subset in self.subsets_of[m]
            if all(self.residual[n] >= need for n in subset)
        ]

    def descend(self, m: int, subset: Tuple[int, ...]) -> List[Tuple[int, float]]:
        self.sets[m] = subset
        for n in subset:
            self.residual[n] -= self.memory[m]
        if self.wait is not None and self._wait_contrib[m]:
            size = float(len(subset))
            for lam, row in self._wait_contrib[m]:
                share = lam / size
                for n in subset:
                    s = float(row[n])
                    if s == float("inf"):
                        self._winf[n] += 1
                        continue
                    load = share * s
                    self._wu[n] += load
                    self._wr[n] += load * s
        saved = [(g, self.group_lb[g]) for g in self.groups_using[m]]
        for g in self.groups_using[m]:
            bound = self.bounds[g]
            if all(self.sets[idx] is not None for idx in bound.members):
                self.group_lb[g] = bound.exact(self.sets)
            else:
                self.group_lb[g] = bound.lower_bound(self.sets)
        return saved

    def ascend(self, m: int, subset: Tuple[int, ...], saved: List[Tuple[int, float]]) -> None:
        for g, value in saved:
            self.group_lb[g] = value
        if self.wait is not None and self._wait_contrib[m]:
            size = float(len(subset))
            for lam, row in self._wait_contrib[m]:
                share = lam / size
                for n in subset:
                    s = float(row[n])
                    if s == float("inf"):
                        self._winf[n] -= 1
                        continue
                    load = share * s
                    self._wu[n] -= load
                    self._wr[n] -= load * s
        for n in subset:
            self.residual[n] += self.memory[m]
        self.sets[m] = None

    def total_bound(self) -> float:
        """Fanned per-request bound (exact at leaves, request-order sum).

        With ``congestion`` set, leaves return the **exact** queue-aware
        value (bit-identical to ``WaitTensors.replica_objective`` on the
        equivalent placement — the tie phase compares ``== best_value``),
        and partial assignments add an admissible global wait term: waits
        ``W_p`` computed from the load of *assigned* members only are a
        lower bound on the final waits (monotone in offered load), and each
        class must pay at least ``min over its set`` of ``W_p`` per
        assigned member no matter which replica routing picks.
        """
        if self.wait is not None and all(s is not None for s in self.sets):
            return self._leaf_value()
        total = 0.0
        for g in self.group_of_request:
            total = total + self.group_lb[g]
        if self.wait is None:
            return float(total)
        sets = self.sets
        rho = np.minimum(self._wu / self._wslots, self.wait.congestion.rho_max)
        waits = (self._wr / self._wslots) / (2.0 * (1.0 - rho))
        if self._winf.any():
            waits = np.where(self._winf > 0, float("inf"), waits)
        group_extra = []
        for group in self.groups:
            extra = 0.0
            for idx in group.member_idx:
                assigned = sets[idx]
                if assigned is None:
                    continue
                extra = extra + min(waits[n] for n in assigned)
            group_extra.append(extra)
        extra = 0.0
        for g in self.group_of_request:
            extra = extra + group_extra[g]
        return float(total + extra * _WAIT_SLACK)

    def _leaf_value(self) -> float:
        """Exact queue-aware objective for a fully-assigned host-set state.

        Mirrors ``WaitTensors.replica_objective`` float-for-float: ``sets``
        tuples are already in sorted-device-name order (``host_subsets``'
        contract), the same order ``waits_for_placement`` and
        ``_replica_value`` derive from a canonical :class:`Placement`.
        """
        sets = self.sets
        assert self.wait is not None
        waits = self.wait.device_waits(self.requests, lambda m: sets[m])
        values: List[Optional[float]] = [None] * len(self.groups)
        total = 0.0
        for g in self.group_of_request:
            value = values[g]
            if value is None:
                group = self.groups[g]
                candidates = [list(sets[idx]) for idx in group.member_idx]  # type: ignore[arg-type]
                value, _ = group.best_hosts(self.tensors, candidates, device_waits=waits)
                values[g] = value
            total = total + value
        return float(total)

    def placement(self) -> Placement:
        names = self.tensors.device_names
        return Placement(
            {
                self.tensors.module_names[m]: tuple(
                    sorted(names[n] for n in self.sets[m])  # type: ignore[union-attr]
                )
                for m in range(self.n_modules)
            }
        )


def replica_branch_and_bound(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    max_copies: int = 2,
    parallel: bool = True,
    tensors: Optional[CostTensors] = None,
    congestion: Optional[CongestionModel] = None,
) -> Tuple[Placement, float]:
    """The replica-optimal placement and objective, beyond brute's cap.

    Searches host-set space (1..``max_copies`` devices per module under
    Eq. 4d memory) with admissible per-class bounds and returns **the
    identical placement, objective (seconds), and tie-break** as
    :func:`replica_brute_force` — two phases, like the single-copy
    branch-and-bound: a value search pruning ``bound >= best`` (the
    incumbent is always attained, so ties cannot strictly improve), then a
    tie-break walk in brute's enumeration order pruning ``bound > V`` that
    stops at the first leaf attaining V.  ``congestion`` switches the
    objective to the queue-aware one (wait-inclusive bounds, exact leaves);
    ``None`` keeps the historical objective bit-identical.
    """
    if not requests:
        raise PlacementError("replica placement needs at least one request to score")
    if max_copies < 1:
        raise ValueError(f"max_copies must be >= 1, got {max_copies}")
    net = network if network is not None else Network()
    if net.has_jitter:
        raise PlacementError(
            "replica branch-and-bound prices through cached cost tensors, "
            "which would freeze the network's jitter hook; clear the jitter "
            "or use replica_optimal_placement(..., solver='brute')"
        )
    if tensors is None:
        tensors = CostTensors(problem, net, parallel=parallel)
    else:
        tensors.check_compatible(problem, net, parallel)
    search = _ReplicaSearch(tensors, requests, max_copies, congestion=congestion)

    # Branching order: heads first (they pin every path's output endpoint),
    # then by descending memory (big modules constrain residuals most).
    head_modules = {g.head_idx for g in search.groups}

    def value_order_key(m: int) -> Tuple[int, int, int, str]:
        unused = 0 if search.groups_using[m] else 1
        is_head = 0 if m in head_modules else 1
        return (unused, is_head, -search.memory[m], tensors.module_names[m])

    value_order = sorted(range(search.n_modules), key=value_order_key)

    # Attained incumbent: the replica-aware greedy (always a member of the
    # search space: <= max_copies sorted host tuples, memory-feasible).
    best_value = float("inf")
    try:
        _, best_value = replica_aware_greedy(
            problem, requests, network=net, max_copies=max_copies,
            parallel=parallel, tensors=tensors, congestion=congestion,
        )
    except PlacementError:
        pass

    def value_dfs(depth: int) -> None:
        nonlocal best_value
        m = value_order[depth]
        scored = []
        for subset in search.feasible_subsets(m):
            saved = search.descend(m, subset)
            bound = search.total_bound()
            search.ascend(m, subset, saved)
            if bound < best_value:
                scored.append((bound, subset))
        scored.sort(key=lambda item: item[0])
        for bound, subset in scored:
            if bound >= best_value:
                continue  # the incumbent moved since scoring
            saved = search.descend(m, subset)
            if depth + 1 == search.n_modules:
                objective = search.total_bound()  # exact: all groups complete
                if objective < best_value:
                    best_value = objective
            else:
                value_dfs(depth + 1)
            search.ascend(m, subset, saved)

    value_dfs(0)
    if best_value == float("inf"):
        raise PlacementError("no memory-feasible placement exists for this instance")

    tie_order = sorted(range(search.n_modules), key=lambda m: tensors.module_names[m])

    def tie_dfs(depth: int) -> Optional[Placement]:
        m = tie_order[depth]
        for subset in search.feasible_subsets(m):
            saved = search.descend(m, subset)
            if search.total_bound() > best_value:
                search.ascend(m, subset, saved)
                continue
            if depth + 1 == search.n_modules:
                if search.total_bound() == best_value:
                    winner = search.placement()
                    search.ascend(m, subset, saved)
                    return winner
            else:
                winner = tie_dfs(depth + 1)
                if winner is not None:
                    search.ascend(m, subset, saved)
                    return winner
            search.ascend(m, subset, saved)
        return None

    winner = tie_dfs(0)
    if winner is None:  # pragma: no cover - phase 1 proved V is attained
        raise PlacementError("no memory-feasible placement exists for this instance")
    return winner, best_value


def replica_optimal_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    max_copies: int = 2,
    parallel: bool = True,
    solver: str = "auto",
    tensors: Optional[CostTensors] = None,
    congestion: Optional[CongestionModel] = None,
) -> Tuple[Placement, float]:
    """The replica-optimal placement and its objective (seconds).

    The replica-set counterpart of
    :func:`~repro.core.placement.optimal.optimal_placement`: jointly
    chooses a host set of 1..``max_copies`` devices per module, minimizing
    total cheapest-replica latency under per-device memory.  Identical
    results under every ``solver`` (``"auto"``/``"bnb"`` run the
    branch-and-bound, ``"brute"`` exhaustive enumeration capped at
    :data:`MAX_REPLICA_ASSIGNMENTS`); ties break toward the
    lexicographically smallest assignment.  ``solver="auto"`` dispatches
    jittered networks to brute force, whose scalar pricing honors the
    jitter hook.
    """
    if solver not in REPLICA_SOLVERS:
        raise ValueError(f"solver must be one of {REPLICA_SOLVERS}, got {solver!r}")
    if solver == "auto" and network is not None and network.has_jitter:
        solver = "brute"
    if solver in ("auto", "bnb"):
        return replica_branch_and_bound(
            problem, requests, network=network, max_copies=max_copies,
            parallel=parallel, tensors=tensors, congestion=congestion,
        )
    return replica_brute_force(
        problem, requests, network=network, max_copies=max_copies,
        parallel=parallel, tensors=tensors, congestion=congestion,
    )
