"""Feasibility checks for placements (constraints 4b-4e of Problem 4)."""

from __future__ import annotations

from typing import Dict

from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import PlacementError


def check_placement(problem: PlacementProblem, placement: Placement) -> None:
    """Raise :class:`PlacementError` if ``placement`` violates the problem.

    Checks: every module placed at least once (needed for 4c to be
    satisfiable), hosts are known devices, no duplicate host per module,
    and per-device memory (4d).
    """
    modules = {module.name: module for module in problem.modules}
    device_names = {device.name for device in problem.devices}

    for module_name in modules:
        if module_name not in placement.assignments:
            raise PlacementError(f"module {module_name!r} is unplaced")

    used: Dict[str, int] = {name: 0 for name in device_names}
    for module_name, hosts in placement.assignments.items():
        if module_name not in modules:
            raise PlacementError(f"placement mentions unknown module {module_name!r}")
        if not hosts:
            raise PlacementError(f"module {module_name!r} has an empty host list")
        if len(set(hosts)) != len(hosts):
            raise PlacementError(f"module {module_name!r} has duplicate hosts {hosts}")
        for host in hosts:
            if host not in device_names:
                raise PlacementError(f"module {module_name!r} placed on unknown device {host!r}")
            used[host] += modules[module_name].memory_bytes

    for device in problem.devices:
        if used[device.name] > device.memory_bytes:
            raise PlacementError(
                f"device {device.name!r} over capacity: "
                f"{used[device.name]} B used > {device.memory_bytes} B available"
            )


def is_feasible(problem: PlacementProblem, placement: Placement) -> bool:
    """Boolean wrapper around :func:`check_placement`."""
    try:
        check_placement(problem, placement)
    except PlacementError:
        return False
    return True


def per_device_params(problem: PlacementProblem, placement: Placement) -> Dict[str, int]:
    """Resident parameter count per device (the Table VI split metric)."""
    modules = {module.name: module for module in problem.modules}
    totals = {device.name: 0 for device in problem.devices}
    for module_name, hosts in placement.assignments.items():
        for host in hosts:
            totals[host] += modules[module_name].params
    return totals
