"""Greedy module placement — paper Algorithm 1 (lines 2-12).

Modules are visited in descending order of memory requirement (compute-
intensive modules first, the paper's "prioritize the module that requires
larger memory").  For each module, candidate devices are ranked by the
completion-time score:

- encoders use Eq. 5 — the module's compute time *plus* the accumulated
  compute time of modules already placed on that device, which spreads
  heavy encoders across devices and preserves parallelism;
- task heads use Eq. 6 — pure compute time, because heads run after all
  encoders and accumulation on a device does not delay them.

The first ranked device with enough residual memory (Eq. 4d) wins.  If no
device fits a module, we raise :class:`PlacementError` — the paper's remedy
at that point is intra-module compression/partitioning, which is orthogonal
(Sec. V-B).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.modules import ModuleSpec
from repro.core.placement.problem import Placement, PlacementProblem
from repro.profiles.devices import DeviceProfile
from repro.utils.errors import PlacementError

#: Module-ordering hook: maps the problem to the visit order.  The default
#: implements the paper's descending-memory order; variants override it.
ModuleOrder = Callable[[PlacementProblem], List[ModuleSpec]]


def descending_memory_order(problem: PlacementProblem) -> List[ModuleSpec]:
    """Paper order: descending ``r_m``, name tie-break for determinism."""
    return sorted(problem.modules, key=lambda m: (-m.memory_bytes, m.name))


def completion_time(
    problem: PlacementProblem,
    module: ModuleSpec,
    device: DeviceProfile,
    accumulated: Dict[str, float],
    accumulate_encoders: bool = True,
) -> float:
    """The greedy score ``t^place_{m,n}`` (Eq. 5 for encoders, Eq. 6 for heads)."""
    own = problem.compute_seconds(module, device)
    if module.is_encoder and accumulate_encoders:
        return own + accumulated.get(device.name, 0.0)
    return own


def greedy_placement(
    problem: PlacementProblem,
    order: Optional[ModuleOrder] = None,
    accumulate_encoders: bool = True,
) -> Placement:
    """Run Algorithm 1 and return the resulting single-copy placement.

    ``order`` and ``accumulate_encoders`` exist for the ablation variants;
    defaults reproduce the paper's algorithm exactly.
    """
    visit = (order or descending_memory_order)(problem)
    residual: Dict[str, int] = {device.name: device.memory_bytes for device in problem.devices}
    accumulated: Dict[str, float] = {device.name: 0.0 for device in problem.devices}
    assignments: Dict[str, Tuple[str, ...]] = {}

    for module in visit:
        ranked = sorted(
            problem.devices,
            key=lambda device: (
                completion_time(problem, module, device, accumulated, accumulate_encoders),
                device.name,
            ),
        )
        placed = False
        for device in ranked:
            if module.memory_bytes <= residual[device.name]:
                assignments[module.name] = (device.name,)
                residual[device.name] -= module.memory_bytes
                # Accumulate this device's busy time for later encoder scores.
                accumulated[device.name] += problem.compute_seconds(module, device)
                placed = True
                break
        if not placed:
            raise PlacementError(
                f"module {module.name!r} ({module.memory_bytes} B) fits on no device; "
                "apply compression or intra-module partitioning first (paper Sec. V-B)"
            )
    return Placement(assignments)


def replicate_with_leftover(
    problem: PlacementProblem,
    placement: Placement,
    max_copies: int = 2,
) -> Placement:
    """Replicate large modules into leftover memory (paper Sec. V-B, last ¶).

    After the primary pass, modules are revisited in **descending
    memory-bytes order** (module-name tie-break) and each receives extra
    replicas until it holds ``max_copies`` copies or nothing fits: every
    replica goes to the device — among those not already hosting the module
    and with enough residual memory **bytes** (Eq. 4d) — with the smallest
    planning compute time in **seconds** (``problem.compute_seconds``, the
    module's heaviest work scale), ties broken by device name.  Replicas
    land on distinct devices by construction.

    The pass is deliberately *benefit-blind*: it never prices the analytic
    objective, because its purpose is relieving shared-module **queueing**
    under bursts, which the isolated-request objective cannot see.  For
    objective-driven replication use
    :func:`repro.core.placement.replicas.replica_aware_greedy`, and for the
    exact joint host-set optimum
    :func:`repro.core.placement.replicas.replica_optimal_placement`.

    Raises :class:`ValueError` when ``max_copies < 1``.  A ``max_copies``
    of 1 returns the placement unchanged.
    """
    if max_copies < 1:
        raise ValueError(f"max_copies must be >= 1, got {max_copies}")
    modules = {module.name: module for module in problem.modules}
    residual: Dict[str, int] = {device.name: device.memory_bytes for device in problem.devices}
    for name, hosts in placement.assignments.items():
        for host in hosts:
            residual[host] -= modules[name].memory_bytes

    current = placement
    for module in descending_memory_order(problem):
        while len(current.hosts(module.name)) < max_copies:
            candidates = [
                device
                for device in problem.devices
                if device.name not in current.hosts(module.name)
                and module.memory_bytes <= residual[device.name]
            ]
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda device: (problem.compute_seconds(module, device), device.name),
            )
            current = current.with_extra(module.name, best.name)
            residual[best.name] -= module.memory_bytes
    return current
