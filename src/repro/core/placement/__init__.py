"""Module-level placement (paper Sec. V).

- :mod:`repro.core.placement.problem` — the placement instance and the
  :class:`Placement` decision object (the ``x_{m,n}`` of Eq. 4).
- :mod:`repro.core.placement.greedy` — Algorithm 1's greedy placement.
- :mod:`repro.core.placement.optimal` — brute-force optimum (the paper's
  "Upper" baseline).
- :mod:`repro.core.placement.variants` — ablation orderings.
- :mod:`repro.core.placement.validation` — feasibility checks (Eq. 4d/4e).
"""

from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.greedy import greedy_placement, replicate_with_leftover
from repro.core.placement.optimal import optimal_placement
from repro.core.placement.validation import check_placement
from repro.core.placement.variants import (
    ascending_memory_placement,
    no_accumulation_placement,
    random_placement,
)

__all__ = [
    "Placement",
    "PlacementProblem",
    "greedy_placement",
    "replicate_with_leftover",
    "optimal_placement",
    "check_placement",
    "ascending_memory_placement",
    "no_accumulation_placement",
    "random_placement",
]
