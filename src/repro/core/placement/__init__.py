"""Module-level placement (paper Sec. V).

- :mod:`repro.core.placement.problem` — the placement instance and the
  :class:`Placement` decision object (the ``x_{m,n}`` of Eq. 4).
- :mod:`repro.core.placement.greedy` — Algorithm 1's greedy placement.
- :mod:`repro.core.placement.optimal` — exact optimum (the paper's
  "Upper" baseline): brute force at paper scale, dispatching to
  branch-and-bound by default; plus the energy-under-latency-budget
  counterpart (``energy_optimal_placement``, see ``docs/energy.md``).
- :mod:`repro.core.placement.bnb` — the branch-and-bound searches
  themselves (identical results, prune far past brute force's size cap).
- :mod:`repro.core.placement.replicas` — replica-set placement: host
  *sets* per module under cheapest-replica routing (greedy, brute, and
  exact branch-and-bound — see ``docs/placement.md``).
- :mod:`repro.core.placement.tensors` — precomputed cost and energy
  tensors shared by every solver and the serving hot path (see
  ``docs/performance.md``).
- :mod:`repro.core.placement.variants` — ablation orderings.
- :mod:`repro.core.placement.validation` — feasibility checks (Eq. 4d/4e).
"""

from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.greedy import greedy_placement, replicate_with_leftover
from repro.core.placement.optimal import energy_optimal_placement, optimal_placement
from repro.core.placement.bnb import branch_and_bound_placement, energy_branch_and_bound
from repro.core.placement.replicas import (
    replica_aware_greedy,
    replica_branch_and_bound,
    replica_brute_force,
    replica_optimal_placement,
)
from repro.core.placement.tensors import (
    CostTensors,
    EnergyTensors,
    IncrementalEnergy,
    IncrementalObjective,
)
from repro.core.placement.validation import check_placement
from repro.core.placement.variants import (
    ascending_memory_placement,
    no_accumulation_placement,
    random_placement,
)

__all__ = [
    "Placement",
    "PlacementProblem",
    "greedy_placement",
    "replicate_with_leftover",
    "optimal_placement",
    "energy_optimal_placement",
    "branch_and_bound_placement",
    "energy_branch_and_bound",
    "replica_aware_greedy",
    "replica_branch_and_bound",
    "replica_brute_force",
    "replica_optimal_placement",
    "CostTensors",
    "EnergyTensors",
    "IncrementalEnergy",
    "IncrementalObjective",
    "check_placement",
    "ascending_memory_placement",
    "no_accumulation_placement",
    "random_placement",
]
