"""Exact optimal placement — the paper's "Upper" baseline, at two scales.

``solver="brute"`` enumerates every assignment of modules to devices
(single copy each), filters memory-infeasible ones (Eq. 4d), and scores the
rest with the analytic objective (Eq. 4a) under fastest-host routing.  With
the paper's problem sizes (<= 4 modules, <= 5 devices) this is at most
5^4 = 625 evaluations, which is why the paper can report exact optimality
rates (89/95 instances).

``solver="bnb"`` (the ``"auto"`` default) runs the branch-and-bound search
in :mod:`repro.core.placement.bnb` instead: the same argmin, objective and
tie-break — property-tested bit-for-bit against brute force — but pruned by
an admissible latency bound and residual memory, so it scales far past
``MAX_ASSIGNMENTS`` (~10 modules x ~32 devices in seconds).

Candidate scoring runs on the shared cost tensors
(:mod:`repro.core.placement.tensors`) either way.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import PlacementError

#: Safety cap on the enumeration size; beyond it, brute force is not the tool.
MAX_ASSIGNMENTS = 2_000_000

#: Accepted ``solver`` values for :func:`optimal_placement`.
SOLVERS = ("auto", "bnb", "brute")


def enumerate_placements(problem: PlacementProblem) -> Iterator[Placement]:
    """Yield every memory-feasible single-copy placement.

    Same lexicographic order as the original ``itertools.product`` sweep,
    but walks an index-based residual-capacity vector with undo, so an
    infeasible prefix prunes its whole subtree instead of being re-checked
    once per completion, and no per-candidate capacity dict is copied.
    """
    modules = list(problem.modules)
    device_names = [device.name for device in problem.devices]
    total = len(device_names) ** len(modules)
    if total > MAX_ASSIGNMENTS:
        raise PlacementError(
            f"brute force would enumerate {total} assignments (> {MAX_ASSIGNMENTS}); "
            "use branch_and_bound_placement (exact, memory/bound-pruned) or "
            "greedy_placement for instances of this size"
        )
    memory = [module.memory_bytes for module in modules]
    residual = [device.memory_bytes for device in problem.devices]
    choice = [0] * len(modules)

    def walk(index: int) -> Iterator[Placement]:
        if index == len(modules):
            yield Placement(
                {
                    module.name: (device_names[choice[i]],)
                    for i, module in enumerate(modules)
                }
            )
            return
        need = memory[index]
        for n in range(len(device_names)):
            if residual[n] >= need:
                residual[n] -= need
                choice[index] = n
                yield from walk(index + 1)
                residual[n] += need

    yield from walk(0)


def optimal_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    parallel: bool = True,
    solver: str = "auto",
    tensors=None,
    congestion=None,
) -> Tuple[Placement, float]:
    """The latency-optimal placement and its objective value.

    Ties break toward the lexicographically-smallest assignment so results
    are deterministic — under every ``solver`` (``"auto"``/``"bnb"`` run
    branch-and-bound, ``"brute"`` the exhaustive sweep; results are
    identical, brute force just caps out at :data:`MAX_ASSIGNMENTS`).
    ``tensors`` optionally shares a prebuilt
    :class:`~repro.core.placement.tensors.CostTensors` for the same
    (problem, network) pair so callers scoring with the same model avoid a
    rebuild.  ``congestion`` (a
    :class:`~repro.core.placement.tensors.CongestionModel`) switches the
    objective to the queue-aware one — base latency plus expected waits
    from the offered load — under every solver; ``None`` keeps the
    historical congestion-blind objective bit-identical.
    """
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
    if not requests:
        raise PlacementError("optimal placement needs at least one request to score")
    if solver == "auto" and network is not None and network.has_jitter:
        # Branch-and-bound refuses jittered networks (its tensors would
        # freeze the draws); brute force prices through the scalar fallback.
        solver = "brute"
    if solver in ("auto", "bnb"):
        # Imported here: repro.core.routing imports this package at module
        # load, so a top-level import would cycle.
        from repro.core.placement.bnb import branch_and_bound_placement

        return branch_and_bound_placement(
            problem, requests, network=network, parallel=parallel, tensors=tensors,
            congestion=congestion,
        )
    from repro.core.routing.latency import LatencyModel

    net = network if network is not None else Network()
    model = LatencyModel(problem, net, parallel=parallel, tensors=tensors)
    best: Optional[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...], Placement]] = None
    found_any = False
    for placement in enumerate_placements(problem):
        found_any = True
        if congestion is not None:
            objective = model.congestion_objective(requests, placement, congestion)
        else:
            objective = model.objective(requests, placement)
        key = (objective, tuple(sorted(placement.as_dict().items())), placement)
        if best is None or key[:2] < best[:2]:
            best = key
    if not found_any or best is None:
        raise PlacementError("no memory-feasible placement exists for this instance")
    return best[2], best[0]


def energy_optimal_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    latency_budget: Optional[float] = None,
    parallel: bool = True,
    solver: str = "auto",
    tensors=None,
) -> Tuple[Optional[Placement], float]:
    """The minimum-energy placement within a latency budget, and its joules.

    The energy counterpart of :func:`optimal_placement`: minimizes the
    total joules of :func:`repro.profiles.energy.energy_objective` over all
    memory-feasible single-copy placements whose latency objective does not
    exceed ``latency_budget`` (``None`` means unconstrained; the budget is
    inclusive).  Ties break toward the lexicographically-smallest
    assignment under every ``solver`` (``"auto"``/``"bnb"`` run the energy
    branch-and-bound in :mod:`repro.core.placement.bnb`, ``"brute"`` the
    exhaustive sweep; results are identical, brute force just caps out at
    :data:`MAX_ASSIGNMENTS`).  Returns ``(None, inf)`` when memory-feasible
    placements exist but none meets the budget; raises
    :class:`PlacementError` (under every solver) when no memory-feasible
    placement exists at all.  ``solver="auto"`` dispatches jittered
    networks to brute force, whose scalar pricing honors the jitter hook.
    """
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {SOLVERS}, got {solver!r}")
    if not requests:
        raise PlacementError("energy-optimal placement needs at least one request to score")
    budget = float("inf") if latency_budget is None else float(latency_budget)
    if solver == "auto" and network is not None and network.has_jitter:
        solver = "brute"
    if solver in ("auto", "bnb"):
        from repro.core.placement.bnb import energy_branch_and_bound

        return energy_branch_and_bound(
            problem,
            requests,
            network=network,
            latency_budget=budget,
            parallel=parallel,
            tensors=tensors,
        )
    # Imported lazily: repro.profiles.energy imports this package at module
    # load, so a top-level import would cycle.
    from repro.core.routing.latency import LatencyModel
    from repro.profiles.energy import energy_objective

    net = network if network is not None else Network()
    model = LatencyModel(problem, net, parallel=parallel, tensors=tensors)
    best: Optional[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...], Placement]] = None
    found_any = False
    for placement in enumerate_placements(problem):
        found_any = True
        if model.objective(requests, placement) > budget:
            continue
        joules = energy_objective(requests, placement, model)
        key = (joules, tuple(sorted(placement.as_dict().items())), placement)
        if best is None or key[:2] < best[:2]:
            best = key
    if not found_any:
        raise PlacementError("no memory-feasible placement exists for this instance")
    if best is None:
        return None, float("inf")
    return best[2], best[0]
