"""Brute-force optimal placement — the paper's "Upper" baseline.

Enumerates every assignment of modules to devices (single copy each),
filters memory-infeasible ones (Eq. 4d), and scores the rest with the
analytic objective (Eq. 4a) under fastest-host routing.  With the paper's
problem sizes (<= 4 modules, <= 5 devices) this is at most 5^4 = 625
evaluations, which is why the paper can report exact optimality rates
(89/95 instances).
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import PlacementError

#: Safety cap on the enumeration size; beyond it, brute force is not the tool.
MAX_ASSIGNMENTS = 2_000_000


def enumerate_placements(problem: PlacementProblem):
    """Yield every memory-feasible single-copy placement."""
    modules = list(problem.modules)
    device_names = [device.name for device in problem.devices]
    total = len(device_names) ** len(modules)
    if total > MAX_ASSIGNMENTS:
        raise PlacementError(
            f"brute force would enumerate {total} assignments (> {MAX_ASSIGNMENTS}); "
            "use the greedy solver for instances of this size"
        )
    capacities = {device.name: device.memory_bytes for device in problem.devices}
    for combo in itertools.product(device_names, repeat=len(modules)):
        residual = dict(capacities)
        feasible = True
        for module, host in zip(modules, combo):
            residual[host] -= module.memory_bytes
            if residual[host] < 0:
                feasible = False
                break
        if feasible:
            yield Placement({module.name: (host,) for module, host in zip(modules, combo)})


def optimal_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    parallel: bool = True,
) -> Tuple[Placement, float]:
    """The latency-optimal placement and its objective value.

    Ties break toward the lexicographically-smallest assignment so results
    are deterministic.
    """
    if not requests:
        raise PlacementError("optimal placement needs at least one request to score")
    # Imported here: repro.core.routing imports this package at module load,
    # so a top-level import would cycle.
    from repro.core.routing.latency import LatencyModel

    model = LatencyModel(problem, network if network is not None else Network(), parallel=parallel)
    best: Optional[Tuple[float, Tuple[Tuple[str, Tuple[str, ...]], ...], Placement]] = None
    found_any = False
    for placement in enumerate_placements(problem):
        found_any = True
        objective = model.objective(requests, placement)
        key = (objective, tuple(sorted(placement.as_dict().items())), placement)
        if best is None or key[:2] < best[:2]:
            best = key
    if not found_any or best is None:
        raise PlacementError("no memory-feasible placement exists for this instance")
    return best[2], best[0]
