"""Vectorized cost tensors under the analytic latency model.

Every placement solver in this repo prices candidates with the same three
oracles: per-(model, module, device) compute seconds, device-pair transfer
costs, and the Eq. 2/3 head/encoder topology of each model.  Re-deriving
them per candidate through :class:`~repro.core.routing.latency.LatencyModel`
Python calls dominates brute-force enumeration, branch-and-bound, and the
serving churn path alike.

:class:`CostTensors` precomputes them **once per problem** as numpy arrays:

- ``compute[k][m, n]`` — noise-scaled compute seconds of module ``m`` on
  device ``n`` under model ``k``'s work scale (lazy per model);
- ``in_comm[(source, payload)][n]`` — request-input transfer seconds from a
  source device to each candidate encoder host;
- ``out_comm[m][n_e, n_h]`` — embedding-shipping seconds for encoder ``m``
  between every (encoder host, head host) device pair;
- static masks: per-module memory, per-device capacity and parallel slots,
  and the ``fits[m, n]`` memory-feasibility matrix.

Every entry is produced by calling the *existing scalar oracles*
(``DeviceProfile.compute_seconds``, ``Network.transfer_seconds``), and the
reductions below replay the scalar code's float-operation order exactly, so
tensorized prices are **bit-identical** to the scalar path — the property
tests in ``tests/test_placement_tensors.py`` assert ``==`` on the floats.

The layer is invalidated when the network topology changes (see
``Network.version``) and is bypassed entirely when a stochastic jitter hook
is installed (``Network.has_jitter``), because caching would freeze the
jitter draw.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.models import ModelSpec
from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import ConfigurationError, PlacementError, RoutingError


def _lpt_waits(device_idx: Sequence[int], computes: Sequence[float], slots_of: Sequence[int]) -> List[float]:
    """Same-device serialization waits, replaying the scalar LPT exactly.

    Mirrors ``LatencyModel._charge_same_device_serialization``: encoders
    sharing a device beyond its ``parallel_slots`` are list-scheduled
    longest-compute-first and charged the busy time of their slot.
    """
    by_device: Dict[int, List[int]] = {}
    for index, dev in enumerate(device_idx):
        by_device.setdefault(dev, []).append(index)
    waits = [0.0] * len(device_idx)
    for dev, indices in by_device.items():
        slots = slots_of[dev]
        if len(indices) <= slots:
            continue
        ordered = sorted(indices, key=lambda i: -computes[i])
        slot_busy = [0.0] * slots
        for i in ordered:
            slot = min(range(slots), key=lambda s: slot_busy[s])
            wait = slot_busy[slot]
            slot_busy[slot] += computes[i]
            if wait > 0:
                waits[i] = wait
    return waits


class RequestGroup:
    """Cached pricing arrays for one (model, source) request class.

    Requests sharing a model spec and a source device have identical
    isolated latency under any placement, so solvers price each class once
    and fan the result out over the request list (in request order, to keep
    the objective's left-to-right summation bit-identical).
    """

    __slots__ = (
        "model", "source", "encoder_names", "head_name",
        "encoder_idx", "head_idx", "in_comm", "enc_comp", "head_comp", "out",
        "_members", "_member_pos",
    )

    def __init__(self, tensors: "CostTensors", model: ModelSpec, source: str) -> None:
        self.model = model
        self.source = source
        self.encoder_names: Tuple[str, ...] = model.encoders
        self.head_name: str = model.head
        self.encoder_idx = [tensors.module_idx(name) for name in model.encoders]
        self.head_idx = tensors.module_idx(model.head)
        comp = tensors.model_compute(model)
        self.enc_comp = [comp[i] for i in self.encoder_idx]
        self.head_comp = comp[self.head_idx]
        self.in_comm = []
        for idx in self.encoder_idx:
            module = tensors.modules[idx]
            modality = module.modality or "image"
            payload = model.payload_bytes(modality)
            self.in_comm.append(tensors.in_comm(source, payload))
        self.out = [tensors.out_comm(idx) for idx in self.encoder_idx]
        members: List[int] = []
        for idx in list(self.encoder_idx) + [self.head_idx]:
            if idx not in members:
                members.append(idx)
        self._members = members
        self._member_pos = {idx: i for i, idx in enumerate(members)}

    def total(self, tensors: "CostTensors", enc_hosts: Sequence[int], head_host: int) -> float:
        """Eq. 1-3 latency with encoders on ``enc_hosts`` and the head on
        ``head_host`` (device indices) — bit-identical to the scalar path."""
        ins, comps, outs = [], [], []
        for e, ne in enumerate(enc_hosts):
            ins.append(self.in_comm[e][ne])
            comps.append(self.enc_comp[e][ne])
            outs.append(self.out[e][ne, head_host])
        if tensors.parallel:
            waits = _lpt_waits(enc_hosts, comps, tensors.slots)
        else:
            waits = [0.0] * len(enc_hosts)
        totals = [ins[e] + waits[e] + comps[e] + outs[e] for e in range(len(enc_hosts))]
        if not totals:
            encoder_latency = 0.0
        elif tensors.parallel:
            encoder_latency = max(totals)
        else:
            encoder_latency = sum(totals)
        return encoder_latency + self.head_comp[head_host]

    def total_for_assignment(self, tensors: "CostTensors", assign: Sequence[int]) -> float:
        """Latency when module ``m`` sits on device ``assign[m]`` (single copy)."""
        return self.total(
            tensors, [assign[i] for i in self.encoder_idx], assign[self.head_idx]
        )

    @property
    def member_idx(self) -> List[int]:
        """Distinct member module indices, encoders first (in path order),
        then the head — the enumeration axis of replica routing.  Cached at
        construction (``best_hosts`` sits in the solvers' leaf loop)."""
        return self._members

    def best_hosts(
        self,
        tensors: "CostTensors",
        candidates: Sequence[Sequence[int]],
        device_waits: Optional[Sequence[float]] = None,
    ) -> Tuple[float, Tuple[int, ...]]:
        """Cheapest-replica routing: the joint minimum of Eq. 1-3 over every
        combination of hosts drawn from per-module candidate sets.

        ``candidates[i]`` lists the allowed device indices for member module
        ``member_idx[i]``.  Combinations are enumerated in lexicographic
        order over the given candidate order, and only a **strictly**
        smaller total replaces the incumbent — so when callers pass
        candidates in sorted-device-name order, ties break toward the
        lexicographically-smallest host combination.  Each combination is
        priced with :meth:`total` (bit-identical to the scalar breakdown).

        When ``device_waits`` is given (per-device expected queue waits from
        :class:`WaitTensors`), each combination is charged the sum of the
        waits of its chosen hosts on top of the Eq. 1-3 total — one add per
        member, in member order — so routing trades isolated speed against
        congestion.  ``device_waits=None`` leaves the historical behaviour
        bit-identical.

        Returns ``(total_seconds, chosen)`` with ``chosen[i]`` the device
        index picked for member ``i``.
        """
        position = self._member_pos
        best_total = float("inf")
        best_combo: Optional[Tuple[int, ...]] = None
        for combo in itertools.product(*candidates):
            enc_hosts = [combo[position[idx]] for idx in self.encoder_idx]
            head_host = combo[position[self.head_idx]]
            value = self.total(tensors, enc_hosts, head_host)
            if device_waits is not None:
                wait = 0.0
                for n in combo:
                    wait = wait + device_waits[n]
                value = value + wait
            if best_combo is None or value < best_total:
                best_total = value
                best_combo = tuple(combo)
        assert best_combo is not None, "candidates must be non-empty"
        return best_total, best_combo


class CostTensors:
    """Shared, precomputed cost arrays for one (problem, network) pair."""

    def __init__(self, problem: PlacementProblem, network: Network, parallel: bool = True) -> None:
        self.problem = problem
        self.network = network
        self.parallel = parallel
        self.modules = problem.modules
        self.module_names: List[str] = [m.name for m in problem.modules]
        self._module_index: Dict[str, int] = {n: i for i, n in enumerate(self.module_names)}
        self.device_names: List[str] = [d.name for d in problem.devices]
        self._device_index: Dict[str, int] = {n: i for i, n in enumerate(self.device_names)}
        self.n_modules = len(self.module_names)
        self.n_devices = len(self.device_names)
        #: Per-module weight bytes (Eq. 4d's ``r_m``) and per-device budgets.
        self.memory = np.array([m.memory_bytes for m in problem.modules], dtype=np.int64)
        self.capacity = np.array([d.memory_bytes for d in problem.devices], dtype=np.int64)
        self.slots: List[int] = [d.parallel_slots for d in problem.devices]
        #: ``fits[m, n]`` — module ``m``'s weights fit on an *empty* device ``n``.
        self.fits = self.memory[:, None] <= self.capacity[None, :]
        self.network_version = network.version
        self._model_compute: Dict[int, Tuple[ModelSpec, np.ndarray]] = {}
        self._in_comm: Dict[Tuple[str, int], np.ndarray] = {}
        self._out_comm: Dict[int, np.ndarray] = {}
        self._groups: Dict[Tuple[int, str], RequestGroup] = {}

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def module_idx(self, name: str) -> int:
        try:
            return self._module_index[name]
        except KeyError:
            raise RoutingError(f"module {name!r} is not part of this problem") from None

    def device_idx(self, name: str) -> int:
        try:
            return self._device_index[name]
        except KeyError:
            raise ConfigurationError(f"unknown device {name!r} in problem") from None

    def has_device(self, name: str) -> bool:
        return name in self._device_index

    def has_module(self, name: str) -> bool:
        return name in self._module_index

    # ------------------------------------------------------------------
    # Tensor builders (lazy; every entry comes from the scalar oracles)
    # ------------------------------------------------------------------
    def model_compute(self, model: ModelSpec) -> np.ndarray:
        """``compute[m, n]`` under ``model``'s work scale (lazy per model).

        Keyed by object identity: cloned specs (no-sharing deployments) get
        their own rows, and holding the spec in the cache pins its id.
        """
        hit = self._model_compute.get(id(model))
        if hit is not None:
            return hit[1]
        noise = self.problem.compute_noise
        arr = np.empty((self.n_modules, self.n_devices), dtype=np.float64)
        for i, module in enumerate(self.modules):
            scale = model.scale_for(module.name)
            for j, device in enumerate(self.problem.devices):
                try:
                    base = device.compute_seconds(module, work_scale=scale)
                except ConfigurationError:
                    arr[i, j] = np.inf  # scalar path would raise if ever priced
                    continue
                arr[i, j] = base * noise.get((module.name, device.name), 1.0)
        self._model_compute[id(model)] = (model, arr)
        return arr

    def in_comm(self, source: str, payload_bytes: int) -> np.ndarray:
        """Transfer seconds of a ``payload_bytes`` input from ``source`` to
        every device (zero where the device *is* the source)."""
        key = (source, payload_bytes)
        arr = self._in_comm.get(key)
        if arr is None:
            arr = np.array(
                [
                    self.network.transfer_seconds(source, name, payload_bytes)
                    for name in self.device_names
                ],
                dtype=np.float64,
            )
            self._in_comm[key] = arr
        return arr

    def out_comm(self, module_index: int) -> np.ndarray:
        """Embedding transfer seconds ``[encoder host, head host]`` for one module."""
        arr = self._out_comm.get(module_index)
        if arr is None:
            payload = self.modules[module_index].output_bytes
            arr = np.array(
                [
                    [self.network.transfer_seconds(a, b, payload) for b in self.device_names]
                    for a in self.device_names
                ],
                dtype=np.float64,
            )
            self._out_comm[module_index] = arr
        return arr

    def group(self, model: ModelSpec, source: str) -> RequestGroup:
        key = (id(model), source)
        group = self._groups.get(key)
        if group is None:
            group = RequestGroup(self, model, source)
            self._groups[key] = group
        return group

    # ------------------------------------------------------------------
    # Scalar lookups (LatencyModel delegates here)
    # ------------------------------------------------------------------
    def compute_value(self, model: ModelSpec, module_name: str, device_name: str) -> float:
        """``t^comp`` for one (model, module, device) from the cached tensor."""
        value = self.model_compute(model)[self.module_idx(module_name), self.device_idx(device_name)]
        return float(value)

    def check_compatible(self, problem: PlacementProblem, network: Network, parallel: bool) -> None:
        """Refuse use against a different problem/network/mode.

        A shared tensor cache silently deciding the parallel mode, problem,
        or (possibly since-mutated) network would change results without an
        error, so mismatches fail loudly instead.
        """
        if self.problem is not problem:
            raise PlacementError("shared cost tensors were built for a different problem")
        if self.network is not network:
            raise PlacementError(
                "shared cost tensors were built for a different network; pass "
                "the same network= they were built with"
            )
        if self.parallel != parallel:
            raise PlacementError(
                f"shared cost tensors were built with parallel={self.parallel}, "
                f"but the caller asked for parallel={parallel}"
            )
        if self.network_version != network.version:
            raise PlacementError(
                "shared cost tensors are stale: the network topology changed "
                "after they were built; rebuild them (or let the caller build "
                "its own by omitting tensors=)"
            )

    # ------------------------------------------------------------------
    # Routing and objective (Eq. 7 + Problem 4a), bit-identical
    # ------------------------------------------------------------------
    def _checked(self, model: ModelSpec, row: np.ndarray, module_index: int, device_index: int) -> float:
        """One compute entry; re-raises the scalar path's error on the inf
        sentinel (a device with no throughput entry for the module's kind)."""
        value = row[device_index]
        if value == np.inf:
            # Price through the scalar oracle so the caller gets the same
            # ConfigurationError the non-tensorized path raises.
            module = self.modules[module_index]
            self.problem.devices[device_index].compute_seconds(
                module, work_scale=model.scale_for(module.name)
            )
        return value

    def route_hosts(self, request: InferenceRequest, placement: Placement) -> Dict[str, str]:
        """Fastest-host routing (Eq. 7) against the cached compute tensor."""
        comp = self.model_compute(request.model)
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            candidates = placement.hosts(module_name)
            if not candidates:
                raise RoutingError(f"module {module_name!r} has no hosts")
            module_index = self.module_idx(module_name)
            row = comp[module_index]
            best = None
            for device in candidates:  # same scan order as the scalar min()
                key = (
                    self._checked(request.model, row, module_index, self.device_idx(device)),
                    device,
                )
                if best is None or key < best:
                    best = key
            hosts[module_name] = best[1]
        return hosts

    def total_latency(self, request: InferenceRequest, placement: Placement) -> float:
        """Single-request Eq. 1 latency under fastest-host routing."""
        hosts = self.route_hosts(request, placement)
        return self._priced_total(request, hosts)

    def _priced_total(self, request: InferenceRequest, hosts: Mapping[str, str]) -> float:
        group = self.group(request.model, request.source)
        enc_hosts = [self.device_idx(hosts[name]) for name in group.encoder_names]
        return float(group.total(self, enc_hosts, self.device_idx(hosts[group.head_name])))

    def objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Problem (4a)'s total latency, summed in request order.

        Requests are deduplicated per (model, source) class; the per-class
        price is computed once and re-added per request so the accumulation
        order (and hence the float result) matches the scalar ``sum``.
        """
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                value = self.total_latency(request, placement)
                cache[key] = value
            total = total + value
        return float(total)

    # ------------------------------------------------------------------
    # Cheapest-replica routing (the replica solvers' pricing rule)
    # ------------------------------------------------------------------
    def _replica_best(
        self, request: InferenceRequest, placement: Placement
    ) -> Tuple[float, Dict[str, str]]:
        """Joint cheapest-replica routing for one request.

        Unlike Eq. 7 (fastest *compute* host per module, which picks the
        same replica for every request), this minimizes the request's full
        Eq. 1-3 latency — input transfer + compute + embedding shipping —
        over every combination of hosts, so requests from different sources
        spread across replicas.  Ties break toward the lexicographically
        smallest host combination (members in encoders-then-head order,
        candidates in sorted device-name order).
        """
        group = self.group(request.model, request.source)
        members = group.member_idx
        candidates: List[List[int]] = []
        comp = self.model_compute(request.model)
        for idx in members:
            name = self.modules[idx].name
            hosts = placement.hosts(name)
            if not hosts:
                raise RoutingError(f"module {name!r} has no hosts")
            ordered = sorted(hosts)
            row = comp[idx]
            for device in ordered:
                # Surface the scalar path's missing-throughput error.
                self._checked(request.model, row, idx, self.device_idx(device))
            candidates.append([self.device_idx(device) for device in ordered])
        total, combo = group.best_hosts(self, candidates)
        hosts_map = {
            self.modules[idx].name: self.device_names[combo[i]]
            for i, idx in enumerate(members)
        }
        return total, hosts_map

    def replica_route_hosts(self, request: InferenceRequest, placement: Placement) -> Dict[str, str]:
        """Cheapest-replica hosts for ``request`` (see :meth:`_replica_best`)."""
        return self._replica_best(request, placement)[1]

    def replica_total_latency(self, request: InferenceRequest, placement: Placement) -> float:
        """Single-request Eq. 1 latency under cheapest-replica routing."""
        return self._replica_best(request, placement)[0]

    def replica_objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Total latency under cheapest-replica routing, in request order.

        The replica-aware counterpart of :meth:`objective` — the objective
        the solvers in :mod:`repro.core.placement.replicas` minimize.
        Per-(model, source) classes are priced once and fanned out in
        request order, so the float result matches the scalar ``sum``.
        """
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                value = self.replica_total_latency(request, placement)
                cache[key] = value
            total = total + value
        return float(total)


class EnergyRequestGroup:
    """Cached energy-pricing arrays for one (model, source) request class.

    Mirrors :class:`RequestGroup` for the energy objective: per-encoder
    compute-joule rows, input-radio vectors, and ``[N, N]`` embedding-radio
    matrices, combined in the same float-operation order as the scalar
    :func:`repro.profiles.energy.request_energy_joules` — per encoder path
    ``(compute + input radio) + embedding radio``, then the head's joules —
    so tensorized energy is **bit-identical** to the scalar reference.
    """

    __slots__ = (
        "model", "source", "encoder_names", "head_name",
        "encoder_idx", "head_idx", "enc_joules", "head_joules",
        "A", "out",
    )

    def __init__(self, energy: "EnergyTensors", model: ModelSpec, source: str) -> None:
        tensors = energy.tensors
        self.model = model
        self.source = source
        self.encoder_names: Tuple[str, ...] = model.encoders
        self.head_name: str = model.head
        self.encoder_idx = [tensors.module_idx(name) for name in model.encoders]
        self.head_idx = tensors.module_idx(model.head)
        comp = energy.compute_joules(model)
        self.enc_joules = [comp[i] for i in self.encoder_idx]
        self.head_joules = comp[self.head_idx]
        #: ``A[e][ne]`` — compute + input-radio joules with encoder ``e`` on
        #: device ``ne`` (the per-path prefix of the scalar accumulation).
        self.A: List[np.ndarray] = []
        self.out: List[np.ndarray] = []
        for pos, idx in enumerate(self.encoder_idx):
            module = tensors.modules[idx]
            modality = module.modality or "image"
            payload = model.payload_bytes(modality)
            self.A.append(self.enc_joules[pos] + energy.input_radio(source, payload))
            self.out.append(energy.embed_radio(idx))

    def total(self, enc_hosts: Sequence[int], head_host: int) -> float:
        """Request joules with encoders on ``enc_hosts`` and the head on
        ``head_host`` (device indices) — bit-identical to the scalar path."""
        total = 0.0
        for e, ne in enumerate(enc_hosts):
            total = total + (self.A[e][ne] + self.out[e][ne, head_host])
        total = total + self.head_joules[head_host]
        return float(total)

    def total_for_assignment(self, assign: Sequence[int]) -> float:
        """Joules when module ``m`` sits on device ``assign[m]`` (single copy)."""
        return self.total(
            [assign[i] for i in self.encoder_idx], assign[self.head_idx]
        )


class EnergyTensors:
    """Per-problem energy cost arrays, layered on a :class:`CostTensors`.

    Every entry comes from the scalar oracles in
    :mod:`repro.profiles.energy` (``EnergyProfile.compute_joules`` /
    ``transfer_joules`` and the co-location rule of ``hop_radio_joules``),
    so tensorized joules are bit-identical to the scalar reference path:

    - ``compute_joules(model)[m, n]`` — active joules of module ``m`` on
      device ``n`` (active watts x noise-scaled compute seconds);
    - ``input_radio(source, payload)[n]`` — sender + receiver radio joules
      of the modality input hop, **zero where device ``n`` is the source**;
    - ``embed_radio(m)[n_e, n_h]`` — sender + receiver radio joules of the
      embedding hop for encoder ``m``, zero on the diagonal.

    Unknown device names (synthetic scaling instances) resolve through
    :func:`repro.profiles.energy.resolve_energy_profile`, which derives a
    deterministic profile from the name; pass ``profiles=`` to override.
    """

    def __init__(
        self,
        tensors: CostTensors,
        profiles: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.tensors = tensors
        self._profiles = dict(profiles) if profiles is not None else None
        self.active_watts = np.array(
            [self.profile_of(name).active_watts for name in tensors.device_names],
            dtype=np.float64,
        )
        self.idle_watts = np.array(
            [self.profile_of(name).idle_watts for name in tensors.device_names],
            dtype=np.float64,
        )
        self._compute_joules: Dict[int, Tuple[ModelSpec, np.ndarray]] = {}
        self._input_radio: Dict[Tuple[str, int], np.ndarray] = {}
        self._embed_radio: Dict[int, np.ndarray] = {}
        self._groups: Dict[Tuple[int, str], EnergyRequestGroup] = {}

    def profile_of(self, name: str):
        """The device's :class:`~repro.profiles.energy.EnergyProfile`."""
        if self._profiles is not None and name in self._profiles:
            return self._profiles[name]
        from repro.profiles.energy import resolve_energy_profile

        return resolve_energy_profile(name)

    # ------------------------------------------------------------------
    # Tensor builders (lazy; every entry comes from the scalar oracles)
    # ------------------------------------------------------------------
    def compute_joules(self, model: ModelSpec) -> np.ndarray:
        """``joules[m, n]`` — active-power compute energy under ``model``."""
        hit = self._compute_joules.get(id(model))
        if hit is not None:
            return hit[1]
        arr = self.tensors.model_compute(model) * self.active_watts[None, :]
        self._compute_joules[id(model)] = (model, arr)
        return arr

    def input_radio(self, source: str, payload_bytes: int) -> np.ndarray:
        """Radio joules of a ``payload_bytes`` input hop from ``source`` to
        each device (zero where the device *is* the source)."""
        key = (source, payload_bytes)
        arr = self._input_radio.get(key)
        if arr is None:
            from repro.profiles.energy import hop_radio_joules

            arr = np.array(
                [
                    hop_radio_joules(source, name, payload_bytes)
                    for name in self.tensors.device_names
                ],
                dtype=np.float64,
            )
            self._input_radio[key] = arr
        return arr

    def embed_radio(self, module_index: int) -> np.ndarray:
        """Embedding-hop radio joules ``[encoder host, head host]`` for one
        module (zero on the diagonal — co-located hops are free)."""
        arr = self._embed_radio.get(module_index)
        if arr is None:
            from repro.profiles.energy import hop_radio_joules

            payload = self.tensors.modules[module_index].output_bytes
            names = self.tensors.device_names
            arr = np.array(
                [[hop_radio_joules(a, b, payload) for b in names] for a in names],
                dtype=np.float64,
            )
            self._embed_radio[module_index] = arr
        return arr

    def group(self, model: ModelSpec, source: str) -> EnergyRequestGroup:
        key = (id(model), source)
        group = self._groups.get(key)
        if group is None:
            group = EnergyRequestGroup(self, model, source)
            self._groups[key] = group
        return group

    # ------------------------------------------------------------------
    # Objective (bit-identical to the scalar energy_objective)
    # ------------------------------------------------------------------
    def request_energy(self, request: InferenceRequest, placement: Placement) -> float:
        """Single-request joules under fastest-host routing (Eq. 7)."""
        hosts = self.tensors.route_hosts(request, placement)
        group = self.group(request.model, request.source)
        enc_hosts = [self.tensors.device_idx(hosts[name]) for name in group.encoder_names]
        return group.total(enc_hosts, self.tensors.device_idx(hosts[group.head_name]))

    def objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Total joules over a request set, summed in request order.

        Per-(model, source) classes are priced once and fanned out in
        request order, so the float result matches the scalar ``sum``.
        """
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                value = self.request_energy(request, placement)
                cache[key] = value
            total = total + value
        return float(total)


class IncrementalObjective:
    """Objective tracking with O(affected groups) single-module moves.

    Holds a single-copy assignment (module index -> device index) plus the
    per-request-class prices; :meth:`move` re-prices only the classes whose
    model uses the moved module and replays the request-order summation, so
    the returned objective is bit-identical to
    ``CostTensors.objective(requests, placement)`` on the same assignment.
    """

    def __init__(
        self,
        tensors: CostTensors,
        requests: Sequence[InferenceRequest],
        placement: Placement,
    ) -> None:
        self.tensors = tensors
        self.requests = list(requests)
        self.assign = np.empty(tensors.n_modules, dtype=np.int64)
        for name, hosts in placement.as_dict().items():
            if len(hosts) != 1:
                raise ConfigurationError(
                    "IncrementalObjective requires a single-copy placement; "
                    f"module {name!r} has hosts {hosts}"
                )
            self.assign[tensors.module_idx(name)] = tensors.device_idx(hosts[0])
        self._groups: List[RequestGroup] = []
        self._group_of: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in self.requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self._groups)
                self._groups.append(tensors.group(request.model, request.source))
            self._group_of.append(index_of[key])
        self._uses: List[List[int]] = [[] for _ in range(tensors.n_modules)]
        for g, group in enumerate(self._groups):
            for idx in set(group.encoder_idx) | {group.head_idx}:
                self._uses[idx].append(g)
        self._totals = [
            group.total_for_assignment(tensors, self.assign) for group in self._groups
        ]

    @property
    def objective(self) -> float:
        """Current objective (request-order summation, bit-identical)."""
        total = 0.0
        for g in self._group_of:
            total = total + self._totals[g]
        return float(total)

    def move(self, module_name: str, device_name: str) -> float:
        """Move ``module_name`` to ``device_name``; returns the new objective."""
        m = self.tensors.module_idx(module_name)
        n = self.tensors.device_idx(device_name)
        self.assign[m] = n
        for g in self._uses[m]:
            self._totals[g] = self._groups[g].total_for_assignment(self.tensors, self.assign)
        return self.objective

    def delta(self, module_name: str, device_name: str) -> float:
        """Objective change if the move were applied (state restored after)."""
        m = self.tensors.module_idx(module_name)
        before_device = int(self.assign[m])
        before = self.objective
        after = self.move(module_name, device_name)
        self.move(module_name, self.tensors.device_names[before_device])
        return after - before

    def placement(self) -> Placement:
        """The current assignment as a :class:`Placement`."""
        names = self.tensors.device_names
        return Placement(
            {
                self.tensors.module_names[m]: (names[int(self.assign[m])],)
                for m in range(self.tensors.n_modules)
            }
        )


@dataclass(frozen=True)
class CongestionModel:
    """Offered load for queue-aware placement: per-model arrival rates.

    ``rates`` maps model names to Poisson arrival rates in requests per
    second of simulated time; models absent from the mapping contribute no
    load.  ``rho_max`` caps the utilization fed into the wait formula so an
    overloaded device prices a large-but-finite wait instead of a pole (the
    steady-state M/G/1 wait diverges at ``rho == 1``; the solver only needs
    the ordering, not the divergence).
    """

    rates: Mapping[str, float]
    rho_max: float = 0.95

    def __post_init__(self) -> None:
        if not 0.0 < self.rho_max < 1.0:
            raise ConfigurationError(
                f"rho_max must be in (0, 1), got {self.rho_max}"
            )
        for name, rate in self.rates.items():
            if rate < 0.0:
                raise ConfigurationError(
                    f"arrival rate for {name!r} must be non-negative, got {rate}"
                )
        object.__setattr__(self, "rates", dict(self.rates))

    def rate_for(self, model_name: str) -> float:
        """Arrival rate (req/s) for ``model_name``; 0 when untracked."""
        return self.rates.get(model_name, 0.0)

    @classmethod
    def from_trace(cls, trace, rho_max: float = 0.95) -> "CongestionModel":
        """Empirical rates from an :class:`~repro.serving.workload.ArrivalTrace`.

        Each model's rate is its arrival count divided by the trace window —
        exactly the traffic the serving runtime is about to replay, so the
        solver prices the congestion that ``serve`` will measure.
        """
        counts: Dict[str, int] = {}
        for arrival in trace.arrivals:
            counts[arrival.model_name] = counts.get(arrival.model_name, 0) + 1
        duration = float(trace.duration_s)
        if duration <= 0:
            raise ConfigurationError(f"trace duration must be positive, got {duration}")
        return cls(
            rates={name: count / duration for name, count in counts.items()},
            rho_max=rho_max,
        )


class WaitTensors:
    """Expected queue-wait pricing layered on :class:`CostTensors`.

    The analytic objective prices each request on an empty cluster; serving
    measures queueing.  This layer closes that gap with an M/G/1-style
    expected-wait model: every deployed model ``k`` offers Poisson load
    ``lam_k`` (from :class:`CongestionModel`), split evenly across the
    replicas of each of its member modules.  A device ``n`` with ``c_n``
    parallel executor slots then accumulates

    - utilization ``u_n   = sum lam * s`` (busy seconds per second), and
    - residual    ``R_n   = sum lam * s^2`` (second moment of offered work),

    over every (model, member, replica) contribution with service time
    ``s = comp[k][m, n]``, and charges each visit the Pollaczek–Khinchine
    style expected wait

        ``W_n = (R_n / c_n) / (2 * (1 - min(u_n / c_n, rho_max)))``

    in seconds.  ``W_n`` is monotone in the load placed on ``n``, zero when
    arrival rates are zero (so queue-aware objectives reduce **bit-exactly**
    to the base objective — ``t + 0.0 == t`` in IEEE arithmetic), and finite
    under overload thanks to the ``rho_max`` clamp.

    A request's queue-aware value is its base Eq. 1-3 latency plus the sum
    of ``W`` over the hosts its member modules route to (one wait per
    distinct member, in member order).  Accumulation orders are fixed —
    models in request first-appearance order, members in ``member_idx``
    order, replica hosts in sorted-device-name order — so the tensorized
    waits are **bit-identical** to the scalar oracle
    (``LatencyModel.congestion_waits_scalar``).
    """

    def __init__(self, tensors: CostTensors, congestion: CongestionModel) -> None:
        self.tensors = tensors
        self.congestion = congestion
        self._entry_cache: Dict[Tuple[int, ...], List[Tuple[ModelSpec, float, List[int], np.ndarray]]] = {}

    def entries(
        self, requests: Sequence[InferenceRequest]
    ) -> List[Tuple[ModelSpec, float, List[int], np.ndarray]]:
        """Distinct deployed models in request first-appearance order.

        Each entry is ``(model, rate, member_idx, compute)`` — the model's
        arrival rate, its distinct member module indices (encoders first,
        then the head), and its compute tensor.  Load is keyed by *model*,
        not (model, source) class: a model's traffic must be counted once
        no matter how many sources request it.
        """
        key = tuple(id(request.model) for request in requests)
        cached = self._entry_cache.get(key)
        if cached is not None:
            return cached
        entries: List[Tuple[ModelSpec, float, List[int], np.ndarray]] = []
        seen = set()
        for request in requests:
            model = request.model
            if id(model) in seen:
                continue
            seen.add(id(model))
            members: List[int] = []
            for name in list(model.encoders) + [model.head]:
                idx = self.tensors.module_idx(name)
                if idx not in members:
                    members.append(idx)
            entries.append(
                (model, self.congestion.rate_for(model.name), members,
                 self.tensors.model_compute(model))
            )
        self._entry_cache[key] = entries
        return entries

    def device_waits(
        self,
        requests: Sequence[InferenceRequest],
        hosts_of: Callable[[int], Optional[Sequence[int]]],
    ) -> List[float]:
        """Canonical per-device expected waits ``W_n`` (Python floats).

        ``hosts_of(m)`` returns the device indices hosting module ``m`` (in
        sorted-device-name order), or ``None`` to skip an unassigned module
        — partial-assignment waits from the canonical prefix of the load
        sums are what the branch-and-bound bounds build on.
        """
        n_devices = self.tensors.n_devices
        u = [0.0] * n_devices
        r = [0.0] * n_devices
        for model, lam, members, comp in self.entries(requests):
            for m in members:
                hosts = hosts_of(m)
                if hosts is None:
                    continue
                share = lam / len(hosts)
                row = comp[m]
                for n in hosts:
                    s = float(self.tensors._checked(model, row, m, n))
                    load = share * s
                    u[n] = u[n] + load
                    r[n] = r[n] + load * s
        return self.waits_from(u, r)

    def waits_from(self, u: Sequence[float], r: Sequence[float]) -> List[float]:
        """The wait formula applied per device, in device order."""
        slots = self.tensors.slots
        rho_max = self.congestion.rho_max
        waits = []
        for n in range(self.tensors.n_devices):
            rho = u[n] / slots[n]
            if rho > rho_max:
                rho = rho_max
            waits.append((r[n] / slots[n]) / (2.0 * (1.0 - rho)))
        return waits

    def _placement_hosts(self, placement: Placement) -> Callable[[int], Tuple[int, ...]]:
        tensors = self.tensors
        cache: Dict[int, Tuple[int, ...]] = {}

        def hosts_of(m: int) -> Tuple[int, ...]:
            got = cache.get(m)
            if got is None:
                name = tensors.modules[m].name
                hosts = placement.hosts(name)
                if not hosts:
                    raise RoutingError(f"module {name!r} has no hosts")
                got = tuple(tensors.device_idx(device) for device in sorted(hosts))
                cache[m] = got
            return got

        return hosts_of

    def waits_for_placement(
        self, requests: Sequence[InferenceRequest], placement: Placement
    ) -> List[float]:
        """Per-device waits with each model's load split over its replicas."""
        return self.device_waits(requests, self._placement_hosts(placement))

    def assignment_waits(
        self, requests: Sequence[InferenceRequest], assign: Sequence[int]
    ) -> List[float]:
        """Per-device waits for a single-copy assignment vector."""
        return self.device_waits(requests, lambda m: (int(assign[m]),))

    # ------------------------------------------------------------------
    # Queue-aware objectives (base Eq. 1-3 latency + routed waits)
    # ------------------------------------------------------------------
    def objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Queue-aware Problem (4a): per-class base latency plus the waits
        of the hosts Eq. 7 routing picks, fanned out in request order."""
        tensors = self.tensors
        waits = self.waits_for_placement(requests, placement)
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                hosts = tensors.route_hosts(request, placement)
                group = tensors.group(request.model, request.source)
                base = tensors._priced_total(request, hosts)
                wait = 0.0
                for idx in group.member_idx:
                    wait = wait + waits[tensors.device_idx(hosts[tensors.modules[idx].name])]
                value = base + wait
                cache[key] = value
            total = total + value
        return float(total)

    def assignment_objective(
        self, requests: Sequence[InferenceRequest], assign: Sequence[int]
    ) -> float:
        """Queue-aware objective for a single-copy assignment vector — the
        canonical leaf routine shared by the branch-and-bound and
        :class:`IncrementalWait` (bit-identical to :meth:`objective` on the
        equivalent :class:`Placement`)."""
        tensors = self.tensors
        waits = self.assignment_waits(requests, assign)
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                group = tensors.group(request.model, request.source)
                base = group.total_for_assignment(tensors, assign)
                wait = 0.0
                for idx in group.member_idx:
                    wait = wait + waits[int(assign[idx])]
                value = base + wait
                cache[key] = value
            total = total + value
        return float(total)

    def replica_objective(
        self, requests: Sequence[InferenceRequest], placement: Placement
    ) -> float:
        """Queue-aware cheapest-replica objective: routing itself minimizes
        base latency *plus* the chosen hosts' waits, then classes fan out in
        request order (the replica solvers' congestion objective)."""
        waits = self.waits_for_placement(requests, placement)
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                value = self._replica_value(request, placement, waits)
                cache[key] = value
            total = total + value
        return float(total)

    def _replica_value(
        self,
        request: InferenceRequest,
        placement: Placement,
        waits: Sequence[float],
    ) -> float:
        """One class's wait-aware cheapest-replica value (mirrors
        ``CostTensors._replica_best`` candidate construction exactly)."""
        tensors = self.tensors
        group = tensors.group(request.model, request.source)
        members = group.member_idx
        candidates: List[List[int]] = []
        comp = tensors.model_compute(request.model)
        for idx in members:
            name = tensors.modules[idx].name
            hosts = placement.hosts(name)
            if not hosts:
                raise RoutingError(f"module {name!r} has no hosts")
            ordered = sorted(hosts)
            row = comp[idx]
            for device in ordered:
                tensors._checked(request.model, row, idx, tensors.device_idx(device))
            candidates.append([tensors.device_idx(device) for device in ordered])
        value, _ = group.best_hosts(tensors, candidates, device_waits=waits)
        return value


class IncrementalWait:
    """Queue-aware objective tracking for single-module moves.

    Mirrors :class:`IncrementalObjective`: base per-class totals are
    re-priced only for the classes whose model uses the moved module.  The
    device waits — a global quantity, every move shifts some device's load —
    and each class's wait surcharge are recomputed canonically from scratch
    per move (cheap: one pass over models × members), so the tracked
    objective is bit-identical to
    ``WaitTensors.assignment_objective(requests, assign)`` after any move
    sequence.
    """

    def __init__(
        self,
        wait: WaitTensors,
        requests: Sequence[InferenceRequest],
        placement: Placement,
    ) -> None:
        self.wait = wait
        self.tensors = wait.tensors
        self.requests = list(requests)
        tensors = wait.tensors
        self.assign = np.empty(tensors.n_modules, dtype=np.int64)
        for name, hosts in placement.as_dict().items():
            if len(hosts) != 1:
                raise ConfigurationError(
                    "IncrementalWait requires a single-copy placement; "
                    f"module {name!r} has hosts {hosts}"
                )
            self.assign[tensors.module_idx(name)] = tensors.device_idx(hosts[0])
        self._groups: List[RequestGroup] = []
        self._group_of: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in self.requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self._groups)
                self._groups.append(tensors.group(request.model, request.source))
            self._group_of.append(index_of[key])
        self._uses: List[List[int]] = [[] for _ in range(tensors.n_modules)]
        for g, group in enumerate(self._groups):
            for idx in set(group.encoder_idx) | {group.head_idx}:
                self._uses[idx].append(g)
        self._totals = [
            group.total_for_assignment(tensors, self.assign) for group in self._groups
        ]
        self._refresh_values()

    def _refresh_values(self) -> None:
        """Recompute device waits + per-class values canonically."""
        waits = self.wait.assignment_waits(self.requests, self.assign)
        values = []
        for g, group in enumerate(self._groups):
            surcharge = 0.0
            for idx in group.member_idx:
                surcharge = surcharge + waits[int(self.assign[idx])]
            values.append(self._totals[g] + surcharge)
        self._values = values

    @property
    def objective(self) -> float:
        """Current queue-aware objective (request-order summation)."""
        total = 0.0
        for g in self._group_of:
            total = total + self._values[g]
        return float(total)

    def move(self, module_name: str, device_name: str) -> float:
        """Move ``module_name`` to ``device_name``; returns the new objective."""
        m = self.tensors.module_idx(module_name)
        n = self.tensors.device_idx(device_name)
        self.assign[m] = n
        for g in self._uses[m]:
            self._totals[g] = self._groups[g].total_for_assignment(self.tensors, self.assign)
        self._refresh_values()
        return self.objective

    def delta(self, module_name: str, device_name: str) -> float:
        """Objective change if the move were applied (state restored after)."""
        m = self.tensors.module_idx(module_name)
        before_device = int(self.assign[m])
        before = self.objective
        after = self.move(module_name, device_name)
        self.move(module_name, self.tensors.device_names[before_device])
        return after - before

    def placement(self) -> Placement:
        """The current assignment as a :class:`Placement`."""
        names = self.tensors.device_names
        return Placement(
            {
                self.tensors.module_names[m]: (names[int(self.assign[m])],)
                for m in range(self.tensors.n_modules)
            }
        )


class IncrementalEnergy:
    """Energy tracking with O(affected groups) single-module moves.

    The energy counterpart of :class:`IncrementalObjective`: holds a
    single-copy assignment plus per-request-class joules; :meth:`move`
    re-prices only the classes whose model uses the moved module and
    replays the request-order summation, so the returned total is
    bit-identical to ``EnergyTensors.objective(requests, placement)`` on
    the same assignment.
    """

    def __init__(
        self,
        energy: EnergyTensors,
        requests: Sequence[InferenceRequest],
        placement: Placement,
    ) -> None:
        self.energy = energy
        self.tensors = energy.tensors
        self.requests = list(requests)
        self.assign = np.empty(self.tensors.n_modules, dtype=np.int64)
        for name, hosts in placement.as_dict().items():
            if len(hosts) != 1:
                raise ConfigurationError(
                    "IncrementalEnergy requires a single-copy placement; "
                    f"module {name!r} has hosts {hosts}"
                )
            self.assign[self.tensors.module_idx(name)] = self.tensors.device_idx(hosts[0])
        self._groups: List[EnergyRequestGroup] = []
        self._group_of: List[int] = []
        index_of: Dict[Tuple[int, str], int] = {}
        for request in self.requests:
            key = (id(request.model), request.source)
            if key not in index_of:
                index_of[key] = len(self._groups)
                self._groups.append(energy.group(request.model, request.source))
            self._group_of.append(index_of[key])
        self._uses: List[List[int]] = [[] for _ in range(self.tensors.n_modules)]
        for g, group in enumerate(self._groups):
            for idx in set(group.encoder_idx) | {group.head_idx}:
                self._uses[idx].append(g)
        self._totals = [group.total_for_assignment(self.assign) for group in self._groups]

    @property
    def joules(self) -> float:
        """Current total joules (request-order summation, bit-identical)."""
        total = 0.0
        for g in self._group_of:
            total = total + self._totals[g]
        return float(total)

    def move(self, module_name: str, device_name: str) -> float:
        """Move ``module_name`` to ``device_name``; returns the new joules."""
        m = self.tensors.module_idx(module_name)
        n = self.tensors.device_idx(device_name)
        self.assign[m] = n
        for g in self._uses[m]:
            self._totals[g] = self._groups[g].total_for_assignment(self.assign)
        return self.joules

    def delta(self, module_name: str, device_name: str) -> float:
        """Joule change if the move were applied (state restored after)."""
        m = self.tensors.module_idx(module_name)
        before_device = int(self.assign[m])
        before = self.joules
        after = self.move(module_name, device_name)
        self.move(module_name, self.tensors.device_names[before_device])
        return after - before

    def placement(self) -> Placement:
        """The current assignment as a :class:`Placement`."""
        names = self.tensors.device_names
        return Placement(
            {
                self.tensors.module_names[m]: (names[int(self.assign[m])],)
                for m in range(self.tensors.n_modules)
            }
        )
