"""Shareable architecture (paper Sec. IV-B).

Across tasks, modules with the same identity are deployed once.  The
:class:`SharingPlan` computes the distinct-module set ``M = ∪_k M_k`` and the
cost ledger the paper reports in Table X: per-task incremental cost with and
without sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.catalog import get_model
from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.core.splitter import split_model


@dataclass(frozen=True)
class SharingStep:
    """Cost accounting after adding one more model to the deployment."""

    model: ModelSpec
    new_modules: Tuple[ModuleSpec, ...]
    reused_modules: Tuple[ModuleSpec, ...]
    cumulative_shared_params: int
    cumulative_unshared_params: int

    @property
    def added_params(self) -> int:
        """Incremental parameters with sharing (Table X "w/ Sharing" deltas)."""
        return sum(module.params for module in self.new_modules)


@dataclass
class SharingPlan:
    """The deduplicated deployment for a sequence of models.

    ``steps[i]`` records the ledger after deploying ``models[:i+1]`` — this
    reproduces Table X's row-by-row accumulation.
    """

    models: List[ModelSpec]
    steps: List[SharingStep] = field(default_factory=list)

    @property
    def distinct_modules(self) -> List[ModuleSpec]:
        """The union module set, each module once, in first-use order."""
        seen: Dict[str, ModuleSpec] = {}
        for model in self.models:
            for module in split_model(model).modules:
                seen.setdefault(module.name, module)
        return list(seen.values())

    @property
    def shared_params(self) -> int:
        """Total parameters with sharing (distinct modules only)."""
        return sum(module.params for module in self.distinct_modules)

    @property
    def unshared_params(self) -> int:
        """Total parameters with one dedicated copy per model."""
        return sum(split_model(model).total_params for model in self.models)

    @property
    def saving_fraction(self) -> float:
        """Relative multi-task saving — the paper's "up to 62%" claim."""
        if self.unshared_params == 0:
            return 0.0
        return 1.0 - self.shared_params / self.unshared_params

    def reuse_count(self, module_name: str) -> int:
        """How many deployed models reference ``module_name``."""
        return sum(
            1 for model in self.models if module_name in split_model(model).model.module_names
        )


def build_sharing_plan(models: Sequence["ModelSpec | str"]) -> SharingPlan:
    """Build the incremental sharing ledger for ``models`` in order."""
    specs = [get_model(m) if isinstance(m, str) else m for m in models]
    plan = SharingPlan(models=specs)
    deployed: Dict[str, ModuleSpec] = {}
    unshared_total = 0
    for spec in specs:
        split = split_model(spec)
        new, reused = [], []
        for module in split.modules:
            if module.name in deployed:
                reused.append(module)
            else:
                deployed[module.name] = module
                new.append(module)
        unshared_total += split.total_params
        plan.steps.append(
            SharingStep(
                model=spec,
                new_modules=tuple(new),
                reused_modules=tuple(reused),
                cumulative_shared_params=sum(m.params for m in deployed.values()),
                cumulative_unshared_params=unshared_total,
            )
        )
    return plan


def sharing_savings(models: Sequence["ModelSpec | str"]) -> float:
    """Convenience: the saving fraction for deploying ``models`` with sharing."""
    return build_sharing_plan(models).saving_fraction


def distinct_module_names(models: Sequence["ModelSpec | str"]) -> List[str]:
    """Names of the union module set for ``models`` (first-use order)."""
    return [module.name for module in build_sharing_plan(models).distinct_modules]
