"""Module compression hooks (paper Secs. I, IV-A, V-B).

S2M3's functional-level split is deliberately *compatible* with intra-module
compression: any module can be swapped for a quantized version with the same
function ("interchangeability of functional modules", Insight 3).  The paper
invokes this as the remedy when a module fits on no device.

We model post-training quantization the way deployment stacks do:

- memory shrinks with the bit width (fp16 -> int8 -> int4);
- compute cost drops modestly (int kernels are faster but not 2x on these
  devices);
- a small accuracy penalty applies, growing as precision falls (the paper
  cites the compression/accuracy trade-off of [15]).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.modules import ModuleSpec
from repro.profiles.devices import DeviceProfile
from repro.utils.errors import ConfigurationError

#: Supported precisions: bits -> (bytes/param, work multiplier, accuracy drop).
#: int4 packs two params per byte plus per-group scales, hence 0.6 B/param.
QUANTIZATION_LEVELS = {
    16: (2.0, 1.00, 0.000),
    8: (1.0, 0.85, 0.005),
    4: (0.6, 0.75, 0.02),
}


@dataclass(frozen=True)
class CompressedModule:
    """A quantized stand-in for a catalog module."""

    spec: ModuleSpec
    source_name: str
    bits: int
    accuracy_penalty: float


def quantize(module: ModuleSpec, bits: int) -> CompressedModule:
    """Produce a ``bits``-precision variant of ``module``.

    The variant gets a distinct name (``<name>-int8``) — a *different*
    sharing key, because its weights differ from the fp16 original.
    """
    if bits not in QUANTIZATION_LEVELS:
        raise ConfigurationError(
            f"unsupported precision {bits}; choose from {sorted(QUANTIZATION_LEVELS)}"
        )
    bytes_per_param, work_multiplier, accuracy_drop = QUANTIZATION_LEVELS[bits]
    if bits == 16:
        return CompressedModule(module, module.name, 16, 0.0)
    spec = dataclasses.replace(
        module,
        name=f"{module.name}-int{bits}",
        work=module.work * work_multiplier,
        bytes_per_param=bytes_per_param,
    )
    return CompressedModule(spec, module.name, bits, accuracy_drop)


def compress_to_fit(
    module: ModuleSpec,
    devices: Sequence[DeviceProfile],
    max_accuracy_penalty: float = 0.02,
) -> Optional[CompressedModule]:
    """The *least* compression that makes ``module`` fit some device.

    Returns None when even the most aggressive allowed precision does not
    fit (the paper's next resort is intra-module partitioning — see
    :mod:`repro.core.partitioning`).
    """
    best_free = max(device.memory_bytes for device in devices)
    for bits in sorted(QUANTIZATION_LEVELS, reverse=True):  # least compression first
        candidate = quantize(module, bits)
        if candidate.accuracy_penalty > max_accuracy_penalty:
            continue
        if candidate.spec.memory_bytes <= best_free:
            return candidate
    return None
