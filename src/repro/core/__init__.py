"""The paper's primary contribution: split, share, place, route.

Layout:

- :mod:`repro.core.modules` / :mod:`repro.core.tasks` / :mod:`repro.core.catalog`
  — the functional-module and model data model (paper Tables II, IV, V).
- :mod:`repro.core.splitter` — split a model into functional modules (Sec. IV-A).
- :mod:`repro.core.sharing` — cross-task module sharing and cost accounting (Sec. IV-B).
- :mod:`repro.core.placement` — the placement problem (Eq. 4), greedy
  Algorithm 1, brute-force optimal, and ablation variants.
- :mod:`repro.core.routing` — the latency model (Eq. 1–3), per-request
  parallel routing (Eq. 7), and pipelined multi-request execution.
- :mod:`repro.core.engine` — the end-to-end S2M3 orchestrator.
"""

from repro.core.catalog import (
    MODEL_CATALOG,
    MODULE_CATALOG,
    get_model,
    get_module,
    list_models,
    list_modules,
    models_for_task,
)
from repro.core.modules import ModuleKind, ModuleSpec
from repro.core.models import ModelSpec
from repro.core.sharing import SharingPlan, build_sharing_plan, sharing_savings
from repro.core.splitter import split_model
from repro.core.tasks import Task

__all__ = [
    "MODEL_CATALOG",
    "MODULE_CATALOG",
    "get_model",
    "get_module",
    "list_models",
    "list_modules",
    "models_for_task",
    "S2M3Engine",
    "InferenceResult",
    "ModuleKind",
    "ModuleSpec",
    "ModelSpec",
    "SharingPlan",
    "build_sharing_plan",
    "sharing_savings",
    "split_model",
    "Task",
]


def __getattr__(name: str):
    """Lazily expose the engine: it imports :mod:`repro.cluster`, which in
    turn imports :mod:`repro.core` submodules — eager import would cycle."""
    if name in ("S2M3Engine", "InferenceResult"):
        from repro.core import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
