"""Model specifications: a model is a named bundle of functional modules.

A :class:`ModelSpec` corresponds to one row of paper Table II — for example
``CLIP ViT-B/16`` is (vision encoder ``clip-vit-b16-vision``, text encoder
``clip-trf-38m``, head ``cosine-similarity``).  The spec references modules
*by name*; resolving names to :class:`~repro.core.modules.ModuleSpec` happens
through the catalog, which is what makes cross-model sharing observable: two
specs naming the same module share one deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Tuple

from repro.core.tasks import Task
from repro.utils.errors import ConfigurationError

#: Default per-modality request payload sizes (bytes).  Images are resized
#: 224px JPEGs; text payloads are tokenized prompts; audio is a log-mel clip.
DEFAULT_INPUT_BYTES: Mapping[str, int] = MappingProxyType(
    {"image": 150_000, "text": 2_000, "audio": 120_000}
)


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one multi-modal model (a Table II row).

    Attributes:
        name: Unique model identifier, e.g. ``"clip-vit-b16"``.
        display_name: Paper-style name, e.g. ``"CLIP ViT-B/16"``.
        task: The multi-modal task this model serves.
        encoders: Names of the modality-wise encoder modules.
        head: Name of the task-head module.
        work_scale: Per-module multiplier applied to the module's *base* work
            when serving a request for THIS model.  This captures that the
            same text encoder does ~100 prompt encodings for zero-shot
            retrieval but only one question for VQA, so a shared module can
            have model-dependent compute cost.
        input_bytes: Per-modality request payload overrides.
    """

    name: str
    display_name: str
    task: Task
    encoders: Tuple[str, ...]
    head: str
    work_scale: Mapping[str, float] = field(default_factory=dict)
    input_bytes: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.encoders:
            raise ConfigurationError(f"model {self.name!r} declares no encoder modules")
        if len(set(self.encoders)) != len(self.encoders):
            raise ConfigurationError(f"model {self.name!r} lists a duplicate encoder")
        # Freeze the mutable mapping defaults so the spec is safely hashable-ish.
        object.__setattr__(self, "work_scale", MappingProxyType(dict(self.work_scale)))
        object.__setattr__(self, "input_bytes", MappingProxyType(dict(self.input_bytes)))

    @property
    def module_names(self) -> Tuple[str, ...]:
        """All module names, encoders first then head (the paper's ``M_k``)."""
        return self.encoders + (self.head,)

    def scale_for(self, module_name: str) -> float:
        """Work multiplier for ``module_name`` under this model (default 1)."""
        return float(self.work_scale.get(module_name, 1.0))

    def payload_bytes(self, modality: str) -> int:
        """Request payload size in bytes for one modality's input data."""
        if modality in self.input_bytes:
            return int(self.input_bytes[modality])
        if modality in DEFAULT_INPUT_BYTES:
            return DEFAULT_INPUT_BYTES[modality]
        raise ConfigurationError(f"unknown modality {modality!r} for model {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.display_name} [{self.task.value}]"
