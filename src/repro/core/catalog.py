"""The module and model catalogs (paper Tables II and V).

Parameter counts follow Table V; per-image/per-prompt compute demands
(``work``, in GFLOP-like units) follow published FLOP counts for the public
checkpoints.  Module *names* are the sharing keys: e.g. every model built on
ViT-B/16 references the same ``clip-vit-b16-vision`` entry, which is exactly
the reuse the paper's Insight 4 exploits.

Decoder-only VQA models pair a CLIP vision tower with an LLM head; the
retrieval text-encoder work is scaled per model (``work_scale``) because
zero-shot retrieval encodes the whole class-prompt set (~100 prompts) while
VQA encodes a single question.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.models import ModelSpec
from repro.core.modules import (
    FAMILY_ANALYTIC,
    FAMILY_CNN,
    FAMILY_TRANSFORMER,
    ModuleKind,
    ModuleSpec,
)
from repro.core.tasks import Task
from repro.utils.errors import ConfigurationError
from repro.utils.units import million

# ---------------------------------------------------------------------------
# Functional modules (Table V)
# ---------------------------------------------------------------------------

_VISION = ModuleKind.VISION_ENCODER
_TEXT = ModuleKind.TEXT_ENCODER
_AUDIO = ModuleKind.AUDIO_ENCODER
_LLM = ModuleKind.LANGUAGE_MODEL
_DIST = ModuleKind.DISTANCE
_CLS = ModuleKind.CLASSIFIER

_MODULES: List[ModuleSpec] = [
    # --- CLIP vision encoders (work = GFLOPs for one image at native res) ---
    ModuleSpec("clip-rn50-vision", _VISION, million(38), 4.1, FAMILY_CNN),
    ModuleSpec("clip-rn101-vision", _VISION, million(56), 7.8, FAMILY_CNN),
    ModuleSpec("clip-rn50x4-vision", _VISION, million(87), 19.0, FAMILY_CNN),
    ModuleSpec("clip-rn50x16-vision", _VISION, million(168), 48.0, FAMILY_CNN),
    ModuleSpec("clip-rn50x64-vision", _VISION, million(421), 122.0, FAMILY_CNN),
    ModuleSpec("clip-vit-b32-vision", _VISION, million(88), 4.4, FAMILY_TRANSFORMER),
    ModuleSpec("clip-vit-b16-vision", _VISION, million(86), 17.6, FAMILY_TRANSFORMER),
    ModuleSpec("clip-vit-l14-vision", _VISION, million(304), 80.7, FAMILY_TRANSFORMER),
    ModuleSpec("clip-vit-l14-336-vision", _VISION, million(304), 130.0, FAMILY_TRANSFORMER),
    ModuleSpec("openclip-vit-h14-vision", _VISION, million(630), 150.0, FAMILY_TRANSFORMER),
    # --- CLIP text encoders (work = GFLOPs for ONE prompt; models scale it) ---
    ModuleSpec("clip-trf-38m", _TEXT, million(38), 0.40, FAMILY_TRANSFORMER, output_bytes=2048),
    ModuleSpec("clip-trf-59m", _TEXT, million(59), 0.50, FAMILY_TRANSFORMER, output_bytes=2560),
    ModuleSpec("clip-trf-85m", _TEXT, million(85), 0.60, FAMILY_TRANSFORMER, output_bytes=3072),
    ModuleSpec("clip-trf-151m", _TEXT, million(151), 0.75, FAMILY_TRANSFORMER, output_bytes=4096),
    ModuleSpec("openclip-trf-302m", _TEXT, million(302), 1.00, FAMILY_TRANSFORMER, output_bytes=4096),
    # --- Audio encoder (ImageBind's ViT-B audio tower) ---
    ModuleSpec("imagebind-audio-vitb", _AUDIO, million(85), 17.6, FAMILY_TRANSFORMER, output_bytes=4096),
    # --- LLM task heads (work = full answer generation, ~2 * params * 50 tok) ---
    ModuleSpec("vicuna-7b", _LLM, million(7000), 700.0, FAMILY_TRANSFORMER, output_bytes=1024),
    ModuleSpec("vicuna-13b", _LLM, million(13000), 1300.0, FAMILY_TRANSFORMER, output_bytes=1024),
    ModuleSpec("phi-3-mini", _LLM, million(3800), 380.0, FAMILY_TRANSFORMER, output_bytes=1024),
    ModuleSpec("tinyllama-1.1b", _LLM, million(1100), 110.0, FAMILY_TRANSFORMER, output_bytes=1024),
    ModuleSpec("gpt2", _LLM, million(124), 12.0, FAMILY_TRANSFORMER, output_bytes=1024),
    # --- Analytic / tiny task heads ---
    ModuleSpec("cosine-similarity", _DIST, 0, 0.001, FAMILY_ANALYTIC, output_bytes=256),
    ModuleSpec("infonce", _DIST, 0, 0.002, FAMILY_ANALYTIC, output_bytes=256),
    # Encoder-only VQA answer classifier: ~1K params (paper Table X "+1K").
    ModuleSpec("vqa-classifier", _CLS, 1_000, 0.001, FAMILY_ANALYTIC, output_bytes=256),
    # Food-101 linear probe: 512-dim x 101 classes ~= 52K (Table X "+52K").
    ModuleSpec("food101-classifier", _CLS, 52_000, 0.001, FAMILY_ANALYTIC, output_bytes=256),
]

MODULE_CATALOG: Dict[str, ModuleSpec] = {module.name: module for module in _MODULES}
if len(MODULE_CATALOG) != len(_MODULES):  # pragma: no cover - catalog sanity
    raise ConfigurationError("duplicate module name in catalog")


# ---------------------------------------------------------------------------
# Models (Table II)
# ---------------------------------------------------------------------------

#: Zero-shot retrieval encodes the benchmark's full class-prompt set; 100 is
#: representative of the evaluated benchmarks (Food-101, CIFAR-100, ...).
RETRIEVAL_PROMPT_SET = 100.0
#: VQA encodes one question (a couple of sentences).
QUESTION_PROMPTS = 2.0
#: Alignment encodes a small caption batch per request.
ALIGNMENT_PROMPTS = 8.0

#: Retrieval ships the tokenized prompt set; questions are tiny.
RETRIEVAL_TEXT_BYTES = 20_000
QUESTION_TEXT_BYTES = 2_000


def _retrieval(name: str, display: str, vision: str, text: str) -> ModelSpec:
    return ModelSpec(
        name=name,
        display_name=display,
        task=Task.IMAGE_TEXT_RETRIEVAL,
        encoders=(vision, text),
        head="cosine-similarity",
        work_scale={text: RETRIEVAL_PROMPT_SET},
        input_bytes={"text": RETRIEVAL_TEXT_BYTES},
    )


def _decoder_vqa(name: str, display: str, vision: str, llm: str) -> ModelSpec:
    return ModelSpec(
        name=name,
        display_name=display,
        task=Task.DECODER_VQA,
        encoders=(vision,),
        head=llm,
        input_bytes={"image": 150_000},
    )


_MODELS: List[ModelSpec] = [
    # --- Image-text retrieval: the 9 CLIP variants ---
    _retrieval("clip-rn50", "CLIP ResNet-50", "clip-rn50-vision", "clip-trf-38m"),
    _retrieval("clip-rn101", "CLIP ResNet-101", "clip-rn101-vision", "clip-trf-38m"),
    _retrieval("clip-rn50x4", "CLIP ResNet-50x4", "clip-rn50x4-vision", "clip-trf-59m"),
    _retrieval("clip-rn50x16", "CLIP ResNet-50x16", "clip-rn50x16-vision", "clip-trf-85m"),
    _retrieval("clip-rn50x64", "CLIP ResNet-50x64", "clip-rn50x64-vision", "clip-trf-151m"),
    _retrieval("clip-vit-b32", "CLIP ViT-B/32", "clip-vit-b32-vision", "clip-trf-38m"),
    _retrieval("clip-vit-b16", "CLIP ViT-B/16", "clip-vit-b16-vision", "clip-trf-38m"),
    _retrieval("clip-vit-l14", "CLIP ViT-L/14", "clip-vit-l14-vision", "clip-trf-85m"),
    _retrieval("clip-vit-l14-336", "CLIP ViT-L/14@336", "clip-vit-l14-336-vision", "clip-trf-85m"),
    # --- Encoder-only VQA (paper Table VI: Small = ViT-B/16, Large = ViT-L/14@336) ---
    ModelSpec(
        name="encoder-vqa-small",
        display_name="Encoder-only VQA (S)",
        task=Task.ENCODER_VQA,
        encoders=("clip-vit-b16-vision", "clip-trf-38m"),
        head="vqa-classifier",
        work_scale={"clip-trf-38m": QUESTION_PROMPTS},
        input_bytes={"text": QUESTION_TEXT_BYTES},
    ),
    ModelSpec(
        name="encoder-vqa-large",
        display_name="Encoder-only VQA (L)",
        task=Task.ENCODER_VQA,
        encoders=("clip-vit-l14-336-vision", "clip-trf-85m"),
        head="vqa-classifier",
        work_scale={"clip-trf-85m": QUESTION_PROMPTS},
        input_bytes={"text": QUESTION_TEXT_BYTES},
    ),
    # --- Decoder-only VQA (LLaVA family; vision tower shared with CLIP) ---
    _decoder_vqa("llava-v1.5-7b", "LLaVA-v1.5-7B", "clip-vit-l14-336-vision", "vicuna-7b"),
    _decoder_vqa("llava-next-7b", "LLaVA-Next-7B", "clip-vit-l14-336-vision", "vicuna-7b"),
    _decoder_vqa("llava-v1.5-13b", "LLaVA-v1.5-13B", "clip-vit-l14-336-vision", "vicuna-13b"),
    _decoder_vqa("llava-next-13b", "LLaVA-Next-13B", "clip-vit-l14-336-vision", "vicuna-13b"),
    _decoder_vqa("xtuner-phi-3-mini", "xtuner-Phi-3-Mini", "clip-vit-l14-336-vision", "phi-3-mini"),
    _decoder_vqa("flint-v0.5-1b", "Flint-v0.5-1B", "clip-vit-l14-336-vision", "tinyllama-1.1b"),
    _decoder_vqa("llava-v1.5-7b-s", "LLaVA-v1.5-7B (S)", "clip-vit-b16-vision", "vicuna-7b"),
    _decoder_vqa("flint-v0.5-1b-s", "Flint-v0.5-1B (S)", "clip-vit-b16-vision", "tinyllama-1.1b"),
    # --- Cross-modal alignment ---
    ModelSpec(
        name="imagebind",
        display_name="ImageBind",
        task=Task.CROSS_MODAL_ALIGNMENT,
        encoders=("openclip-vit-h14-vision", "openclip-trf-302m", "imagebind-audio-vitb"),
        head="infonce",
        work_scale={"openclip-trf-302m": ALIGNMENT_PROMPTS},
    ),
    # Lightweight alignment model used in the multi-task study (Table X):
    # shares ViT-B/16 vision and CLIP TRF with retrieval; adds only the
    # 85M audio tower (the "+85M" row).
    ModelSpec(
        name="alignment-vitb16",
        display_name="Alignment (ViT-B/16)",
        task=Task.CROSS_MODAL_ALIGNMENT,
        encoders=("clip-vit-b16-vision", "clip-trf-38m", "imagebind-audio-vitb"),
        head="infonce",
        work_scale={"clip-trf-38m": ALIGNMENT_PROMPTS},
    ),
    # --- Image classification (Table X "+52K" row) ---
    ModelSpec(
        name="image-classification-vitb16",
        display_name="Image Classification (ViT-B/16)",
        task=Task.IMAGE_CLASSIFICATION,
        encoders=("clip-vit-b16-vision",),
        head="food101-classifier",
    ),
    # --- Image captioning (NLP Connect ViT-GPT2) ---
    ModelSpec(
        name="nlpconnect-vit-gpt2",
        display_name="NLP Connect ViT-GPT2",
        task=Task.IMAGE_CAPTIONING,
        encoders=("clip-vit-b16-vision",),
        head="gpt2",
    ),
]

MODEL_CATALOG: Dict[str, ModelSpec] = {model.name: model for model in _MODELS}
if len(MODEL_CATALOG) != len(_MODELS):  # pragma: no cover - catalog sanity
    raise ConfigurationError("duplicate model name in catalog")

# Validate referential integrity and kind compatibility once at import time.
for _model in _MODELS:
    for _i, _enc_name in enumerate(_model.encoders):
        if _enc_name not in MODULE_CATALOG:
            raise ConfigurationError(f"model {_model.name!r} references unknown module {_enc_name!r}")
        if not MODULE_CATALOG[_enc_name].is_encoder:
            raise ConfigurationError(f"model {_model.name!r} lists head {_enc_name!r} as encoder")
    if _model.head not in MODULE_CATALOG:
        raise ConfigurationError(f"model {_model.name!r} references unknown head {_model.head!r}")
    if not MODULE_CATALOG[_model.head].is_head:
        raise ConfigurationError(f"model {_model.name!r} lists encoder {_model.head!r} as head")


# ---------------------------------------------------------------------------
# Lookup helpers
# ---------------------------------------------------------------------------

def get_module(name: str) -> ModuleSpec:
    """Look up a module by name, raising :class:`ConfigurationError` if unknown."""
    try:
        return MODULE_CATALOG[name]
    except KeyError:
        raise ConfigurationError(f"unknown module {name!r}") from None


def get_model(name: str) -> ModelSpec:
    """Look up a model by name, raising :class:`ConfigurationError` if unknown."""
    try:
        return MODEL_CATALOG[name]
    except KeyError:
        raise ConfigurationError(f"unknown model {name!r}") from None


def list_modules() -> List[ModuleSpec]:
    """All catalogued modules in declaration order."""
    return list(MODULE_CATALOG.values())


def list_models() -> List[ModelSpec]:
    """All catalogued models in declaration order."""
    return list(MODEL_CATALOG.values())


def models_for_task(task: Task) -> List[ModelSpec]:
    """All catalogued models serving ``task``."""
    return [model for model in MODEL_CATALOG.values() if model.task is task]
