"""Analytic end-to-end latency (paper Eq. 1-3) and routing rule (Eq. 7).

For a request ``q`` for model ``k(q)`` from source ``n_q``:

- each encoder path costs input transmission + encoding + output
  transmission to the head's device (Eq. 2's three terms);
- with parallel processing, the encoder stage is the **max** over encoder
  paths; without it (the Table VII ablation), the sum;
- the head adds its pure compute time (Eq. 3).

The analytic model prices a single request in isolation — queueing from
concurrent requests is the executor's job.  Both consult the same compute
and network oracles, so they agree on an idle cluster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.modules import ModuleSpec
from repro.core.placement.problem import Placement, PlacementProblem
from repro.utils.errors import RoutingError


@dataclass(frozen=True)
class RoutingDecision:
    """Chosen host per module for one request (the ``y^q_{m,n}``)."""

    request: InferenceRequest
    hosts: Mapping[str, str]

    def __post_init__(self) -> None:
        object.__setattr__(self, "hosts", MappingProxyType(dict(self.hosts)))

    def host_of(self, module_name: str) -> str:
        try:
            return self.hosts[module_name]
        except KeyError:
            raise RoutingError(
                f"request {self.request.request_id}: module {module_name!r} unrouted"
            ) from None


@dataclass(frozen=True)
class EncoderPath:
    """Latency breakdown of one encoder path (Eq. 2's bracketed term).

    ``queue_wait`` is the same-device serialization delay: when several of
    the request's encoders land on one device with fewer compute slots than
    encoders, they cannot actually overlap — the analytic model charges the
    wait so it agrees with the discrete-event executor.
    """

    module_name: str
    device: str
    input_comm: float
    compute: float
    output_comm: float
    queue_wait: float = 0.0

    @property
    def total(self) -> float:
        return self.input_comm + self.queue_wait + self.compute + self.output_comm


@dataclass(frozen=True)
class LatencyBreakdown:
    """Full Eq. 1 decomposition for one request."""

    request: InferenceRequest
    routing: RoutingDecision
    encoder_paths: Tuple[EncoderPath, ...]
    head_compute: float
    parallel: bool

    @property
    def encoder_latency(self) -> float:
        """``t_enc`` of Eq. 2: max over paths when parallel, else their sum."""
        totals = [path.total for path in self.encoder_paths]
        if not totals:
            return 0.0
        return max(totals) if self.parallel else sum(totals)

    @property
    def total(self) -> float:
        """``t_total`` of Eq. 1."""
        return self.encoder_latency + self.head_compute

    @property
    def bottleneck_encoder(self) -> Optional[str]:
        """The slowest encoder path's module (drives parallel latency)."""
        if not self.encoder_paths:
            return None
        return max(self.encoder_paths, key=lambda path: path.total).module_name


class LatencyModel:
    """Prices requests against a placement on a network of devices.

    Routing, single-request pricing, and the objective run on the shared
    :class:`~repro.core.placement.tensors.CostTensors` layer (precomputed
    per-problem numpy arrays, bit-identical to the scalar formulas); the
    ``*_scalar`` methods keep the original loop implementations as the
    reference path, and pricing falls back to them automatically when the
    network carries a stochastic jitter hook.
    """

    def __init__(
        self,
        problem: PlacementProblem,
        network: Network,
        parallel: bool = True,
        use_tensors: bool = True,
        tensors=None,
    ) -> None:
        self.problem = problem
        self.network = network
        self.parallel = parallel
        self.use_tensors = use_tensors
        self._modules: Dict[str, ModuleSpec] = {m.name: m for m in problem.modules}
        if tensors is not None:
            # Adopt a caller-shared CostTensors (e.g. one tensor build priced
            # both greedy and the exact solver); validated, never trusted.
            tensors.check_compatible(problem, network, parallel)
        self._tensors = tensors

    @property
    def tensors(self):
        """The shared cost-tensor layer, or None while jitter forces scalar.

        Rebuilt lazily whenever the network's topology version moves.
        """
        if not self.use_tensors or getattr(self.network, "has_jitter", False):
            return None
        version = getattr(self.network, "version", 0)
        if (
            self._tensors is None
            or self._tensors.network is not self.network
            or self._tensors.network_version != version
        ):
            from repro.core.placement.tensors import CostTensors

            self._tensors = CostTensors(self.problem, self.network, parallel=self.parallel)
        return self._tensors

    # ------------------------------------------------------------------
    # Timing oracles (request-scaled, unlike the problem's planning scale)
    # ------------------------------------------------------------------
    def compute_seconds(self, request: InferenceRequest, module_name: str, device_name: str) -> float:
        """``t^comp_{m,n}`` in seconds with the requesting model's work scale."""
        tensors = self.tensors
        if tensors is not None and tensors.has_module(module_name) and tensors.has_device(device_name):
            value = tensors.compute_value(request.model, module_name, device_name)
            if value != float("inf"):  # inf marks a missing-throughput entry:
                return value           # fall through so the scalar path raises
        return self.compute_seconds_scalar(request, module_name, device_name)

    def compute_seconds_scalar(self, request: InferenceRequest, module_name: str, device_name: str) -> float:
        """``t^comp`` in seconds through the device oracle directly — never
        the tensor cache, so the ``*_scalar`` reference paths stay fully
        independent."""
        module = self._module(module_name)
        device = self.problem.device(device_name)
        base = device.compute_seconds(module, work_scale=request.model.scale_for(module_name))
        return base * self.problem.compute_noise.get((module_name, device_name), 1.0)

    def _module(self, name: str) -> ModuleSpec:
        try:
            return self._modules[name]
        except KeyError:
            raise RoutingError(f"module {name!r} is not part of this problem") from None

    def module(self, name: str) -> ModuleSpec:
        """Public module lookup against this problem's (possibly cloned) table."""
        return self._module(name)

    # ------------------------------------------------------------------
    # Eq. 7: route each required module to its fastest hosting device
    # ------------------------------------------------------------------
    def route(self, request: InferenceRequest, placement: Placement) -> RoutingDecision:
        tensors = self.tensors
        if tensors is not None:
            return RoutingDecision(
                request=request, hosts=tensors.route_hosts(request, placement)
            )
        return self.route_scalar(request, placement)

    def route_scalar(self, request: InferenceRequest, placement: Placement) -> RoutingDecision:
        """Reference implementation of Eq. 7 (no tensor cache)."""
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            candidates = placement.hosts(module_name)
            if not candidates:
                raise RoutingError(f"module {module_name!r} has no hosts")
            hosts[module_name] = min(
                candidates,
                key=lambda device: (
                    self.compute_seconds_scalar(request, module_name, device),
                    device,
                ),
            )
        return RoutingDecision(request=request, hosts=hosts)

    # ------------------------------------------------------------------
    # Cheapest-replica routing (transfer-aware; the replica solvers' rule)
    # ------------------------------------------------------------------
    def _replica_best_scalar(
        self, request: InferenceRequest, placement: Placement
    ) -> Tuple[float, RoutingDecision]:
        """Reference cheapest-replica routing: joint min of Eq. 1-3 latency.

        Eq. 7 routes every module to its fastest *compute* host, which is
        the same device for every request — replicas never change it.  The
        replica rule instead minimizes the request's full latency (input
        transfer + compute + embedding shipping) over every combination of
        hosts drawn from each module's replica set, so requests from
        different sources pick different replicas.  Ties break toward the
        lexicographically smallest host combination (modules in
        encoders-then-head order, hosts in sorted device-name order) —
        identical to the tensorized path, property-tested with ``==``.
        """
        members: List[str] = []
        for name in request.model.module_names:
            if name not in members:
                members.append(name)
        candidate_lists: List[List[str]] = []
        for name in members:
            hosts = placement.hosts(name)
            if not hosts:
                raise RoutingError(f"module {name!r} has no hosts")
            candidate_lists.append(sorted(hosts))
        best: Optional[Tuple[float, RoutingDecision]] = None
        for combo in itertools.product(*candidate_lists):
            decision = RoutingDecision(request=request, hosts=dict(zip(members, combo)))
            total = self._breakdown(
                request, placement, decision, self.compute_seconds_scalar
            ).total
            if best is None or total < best[0]:
                best = (total, decision)
        assert best is not None  # candidate_lists are all non-empty
        return best

    def replica_route(self, request: InferenceRequest, placement: Placement) -> RoutingDecision:
        """Cheapest-replica hosts for one request (see `_replica_best_scalar`)."""
        tensors = self.tensors
        if tensors is not None:
            return RoutingDecision(
                request=request, hosts=tensors.replica_route_hosts(request, placement)
            )
        return self.replica_route_scalar(request, placement)

    def replica_route_scalar(self, request: InferenceRequest, placement: Placement) -> RoutingDecision:
        """Reference cheapest-replica routing (no tensor cache)."""
        return self._replica_best_scalar(request, placement)[1]

    def replica_total_latency(self, request: InferenceRequest, placement: Placement) -> float:
        """``t_total`` (seconds) under cheapest-replica routing."""
        tensors = self.tensors
        if tensors is not None:
            return tensors.replica_total_latency(request, placement)
        return self.replica_total_latency_scalar(request, placement)

    def replica_total_latency_scalar(self, request: InferenceRequest, placement: Placement) -> float:
        """Reference scalar ``t_total`` under cheapest-replica routing."""
        return self._replica_best_scalar(request, placement)[0]

    def replica_objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Total latency (seconds) over ``requests`` under cheapest-replica
        routing — the objective the replica-aware solvers minimize."""
        tensors = self.tensors
        if tensors is not None:
            return tensors.replica_objective(requests, placement)
        return self.replica_objective_scalar(requests, placement)

    def replica_objective_scalar(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Reference scalar replica objective: per-request loops, no tensors."""
        return sum(
            self.replica_total_latency_scalar(request, placement) for request in requests
        )

    # ------------------------------------------------------------------
    # Queue-aware pricing (expected waits from offered load; see
    # repro.core.placement.tensors.WaitTensors for the model)
    # ------------------------------------------------------------------
    @staticmethod
    def _member_names(model) -> List[str]:
        """Distinct member modules, encoders first then head (``M_k``)."""
        members: List[str] = []
        for name in model.module_names:
            if name not in members:
                members.append(name)
        return members

    def congestion_waits_scalar(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> Dict[str, float]:
        """Per-device expected wait ``W_n`` in seconds — scalar reference.

        M/G/1-style: each distinct model (request first-appearance order)
        splits its arrival rate evenly over each member module's replicas
        (sorted-device-name order) and contributes utilization
        ``u_n += lam * s`` and residual ``R_n += lam * s^2`` per visit with
        service time ``s``; a device with ``c_n`` parallel slots then
        charges ``W_n = (R_n / c_n) / (2 * (1 - min(u_n / c_n, rho_max)))``.
        Zero arrival rates give ``W_n == 0.0`` exactly.  The tensorized
        :class:`~repro.core.placement.tensors.WaitTensors` replays this
        float-operation order bit-for-bit.
        """
        u: Dict[str, float] = {}
        r: Dict[str, float] = {}
        seen = set()
        for request in requests:
            model = request.model
            if id(model) in seen:
                continue
            seen.add(id(model))
            lam = congestion.rate_for(model.name)
            for name in self._member_names(model):
                hosts = placement.hosts(name)
                if not hosts:
                    raise RoutingError(f"module {name!r} has no hosts")
                ordered = sorted(hosts)
                share = lam / len(ordered)
                for device in ordered:
                    s = self.compute_seconds_scalar(request, name, device)
                    load = share * s
                    u[device] = u.get(device, 0.0) + load
                    r[device] = r.get(device, 0.0) + load * s
        waits: Dict[str, float] = {}
        rho_max = congestion.rho_max
        for device in self.problem.devices:
            slots = device.parallel_slots
            rho = u.get(device.name, 0.0) / slots
            if rho > rho_max:
                rho = rho_max
            waits[device.name] = (r.get(device.name, 0.0) / slots) / (2.0 * (1.0 - rho))
        return waits

    def congestion_waits(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> Dict[str, float]:
        """Per-device expected waits (tensorized when available)."""
        tensors = self.tensors
        if tensors is not None:
            from repro.core.placement.tensors import WaitTensors

            waits = WaitTensors(tensors, congestion).waits_for_placement(
                requests, placement
            )
            return {tensors.device_names[n]: waits[n] for n in range(len(waits))}
        return self.congestion_waits_scalar(requests, placement, congestion)

    def congestion_objective(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> float:
        """Queue-aware Problem (4a): base latency plus routed-host waits."""
        tensors = self.tensors
        if tensors is not None:
            from repro.core.placement.tensors import WaitTensors

            return WaitTensors(tensors, congestion).objective(requests, placement)
        return self.congestion_objective_scalar(requests, placement, congestion)

    def congestion_objective_scalar(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> float:
        """Reference scalar queue-aware objective.

        Per (model, source) class: the base Eq. 1-3 total under Eq. 7
        routing plus one wait per distinct member module at its routed host
        (member order), fanned out in request order — the float-operation
        order :class:`~repro.core.placement.tensors.WaitTensors` mirrors.
        """
        waits = self.congestion_waits_scalar(requests, placement, congestion)
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                decision = self.route_scalar(request, placement)
                base = self._breakdown(
                    request, placement, decision, self.compute_seconds_scalar
                ).total
                wait = 0.0
                for name in self._member_names(request.model):
                    wait = wait + waits[decision.host_of(name)]
                value = base + wait
                cache[key] = value
            total = total + value
        return float(total)

    def _congestion_replica_best_scalar(
        self,
        request: InferenceRequest,
        placement: Placement,
        waits: Mapping[str, float],
    ) -> Tuple[float, RoutingDecision]:
        """Wait-aware cheapest-replica routing (scalar reference).

        Identical enumeration and tie-break to :meth:`_replica_best_scalar`,
        but each host combination is charged its hosts' expected waits on
        top of the Eq. 1-3 total, so routing itself avoids hot devices.
        """
        members = self._member_names(request.model)
        candidate_lists: List[List[str]] = []
        for name in members:
            hosts = placement.hosts(name)
            if not hosts:
                raise RoutingError(f"module {name!r} has no hosts")
            candidate_lists.append(sorted(hosts))
        best: Optional[Tuple[float, RoutingDecision]] = None
        for combo in itertools.product(*candidate_lists):
            decision = RoutingDecision(request=request, hosts=dict(zip(members, combo)))
            total = self._breakdown(
                request, placement, decision, self.compute_seconds_scalar
            ).total
            wait = 0.0
            for device in combo:
                wait = wait + waits[device]
            value = total + wait
            if best is None or value < best[0]:
                best = (value, decision)
        assert best is not None  # candidate_lists are all non-empty
        return best

    def congestion_replica_objective(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> float:
        """Queue-aware cheapest-replica objective (the replica solvers'
        congestion objective): routing minimizes latency *plus* waits."""
        tensors = self.tensors
        if tensors is not None:
            from repro.core.placement.tensors import WaitTensors

            return WaitTensors(tensors, congestion).replica_objective(
                requests, placement
            )
        return self.congestion_replica_objective_scalar(requests, placement, congestion)

    def congestion_replica_objective_scalar(
        self, requests: Sequence[InferenceRequest], placement: Placement, congestion
    ) -> float:
        """Reference scalar queue-aware replica objective."""
        waits = self.congestion_waits_scalar(requests, placement, congestion)
        cache: Dict[Tuple[int, str], float] = {}
        total = 0.0
        for request in requests:
            key = (id(request.model), request.source)
            value = cache.get(key)
            if value is None:
                value = self._congestion_replica_best_scalar(
                    request, placement, waits
                )[0]
                cache[key] = value
            total = total + value
        return float(total)

    # ------------------------------------------------------------------
    # Eq. 1-3
    # ------------------------------------------------------------------
    def breakdown(
        self, request: InferenceRequest, placement: Placement,
        routing: Optional[RoutingDecision] = None,
    ) -> LatencyBreakdown:
        """Price one request (single-request, no queueing)."""
        return self._breakdown(request, placement, routing, self.compute_seconds)

    def _breakdown(
        self,
        request: InferenceRequest,
        placement: Placement,
        routing: Optional[RoutingDecision],
        compute_seconds,
    ) -> LatencyBreakdown:
        decision = routing if routing is not None else self.route(request, placement)
        # Resolve modules from the problem's table (NOT the global catalog):
        # the no-sharing deployment uses per-model cloned module names that
        # exist only in this problem.
        encoders = [self._module(name) for name in request.model.encoders]
        head = self._module(request.model.head)
        head_device = decision.host_of(head.name)
        paths = []
        for encoder in encoders:
            device = decision.host_of(encoder.name)
            modality = encoder.modality or "image"
            input_comm = self.network.transfer_seconds(
                request.source, device, request.model.payload_bytes(modality)
            )
            compute = compute_seconds(request, encoder.name, device)
            output_comm = self.network.transfer_seconds(device, head_device, encoder.output_bytes)
            paths.append(
                EncoderPath(encoder.name, device, input_comm, compute, output_comm)
            )
        if self.parallel:
            paths = self._charge_same_device_serialization(paths)
        head_compute = compute_seconds(request, head.name, head_device)
        return LatencyBreakdown(
            request=request,
            routing=decision,
            encoder_paths=tuple(paths),
            head_compute=head_compute,
            parallel=self.parallel,
        )

    def _charge_same_device_serialization(self, paths):
        """Add queue waits where co-located encoders exceed a device's slots.

        Encoders on one device are scheduled longest-compute-first (matching
        the executor's send heuristic) onto the device's ``parallel_slots``
        via LPT list scheduling; each path is charged the busy time of the
        slot it lands on.
        """
        by_device: Dict[str, list] = {}
        for index, path in enumerate(paths):
            by_device.setdefault(path.device, []).append(index)
        adjusted = list(paths)
        for device_name, indices in by_device.items():
            slots = self.problem.device(device_name).parallel_slots
            if len(indices) <= slots:
                continue
            ordered = sorted(indices, key=lambda i: -paths[i].compute)
            slot_busy = [0.0] * slots
            for i in ordered:
                slot = min(range(slots), key=lambda s: slot_busy[s])
                wait = slot_busy[slot]
                slot_busy[slot] += paths[i].compute
                if wait > 0:
                    path = paths[i]
                    adjusted[i] = EncoderPath(
                        path.module_name, path.device, path.input_comm,
                        path.compute, path.output_comm, queue_wait=wait,
                    )
        return adjusted

    def total_latency(self, request: InferenceRequest, placement: Placement) -> float:
        """``t_total(y^q)`` for one request."""
        tensors = self.tensors
        if tensors is not None:
            return tensors.total_latency(request, placement)
        return self.total_latency_scalar(request, placement)

    def total_latency_scalar(self, request: InferenceRequest, placement: Placement) -> float:
        """Reference scalar ``t_total``: Eq. 1-3 priced entirely through the
        device/network oracles — no tensor-cache reads anywhere."""
        return self._breakdown(
            request,
            placement,
            self.route_scalar(request, placement),
            self.compute_seconds_scalar,
        ).total

    def objective(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Problem (4a)'s objective: total latency over all requests."""
        tensors = self.tensors
        if tensors is not None:
            return tensors.objective(requests, placement)
        return self.objective_scalar(requests, placement)

    def objective_scalar(self, requests: Sequence[InferenceRequest], placement: Placement) -> float:
        """Reference scalar objective: per-request loops, no tensor reads.

        Kept (and exercised by the property tests) as the independent ground
        truth the tensorized path must match bit-for-bit.
        """
        return sum(self.total_latency_scalar(request, placement) for request in requests)
