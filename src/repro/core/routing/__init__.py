"""Per-request routing and the end-to-end latency model (paper Sec. V).

- :mod:`repro.core.routing.latency` — analytic latency model (Eq. 1-3) and
  the fastest-host routing rule (Eq. 7); used by the planner and the
  brute-force optimum's objective.
- :mod:`repro.core.routing.executor` — discrete-event execution of routed
  requests on a live cluster: parallel encoders, head join, queueing on
  shared modules, and pipelining across requests (Algorithm 1 lines 13-19).
- :mod:`repro.core.routing.batching` — module-level batch aggregation
  (the Sec. VI-C queueing remedy).
"""

from repro.core.routing.latency import LatencyBreakdown, LatencyModel, RoutingDecision
from repro.core.routing.executor import ExecutionResult, RequestOutcome, execute_requests
from repro.core.routing.batching import BatchAggregator, batched_service_time
from repro.core.routing.batched import execute_batched_burst
from repro.core.routing.queue_aware import QueueAwareRouter

__all__ = [
    "LatencyBreakdown",
    "LatencyModel",
    "RoutingDecision",
    "ExecutionResult",
    "RequestOutcome",
    "execute_requests",
    "BatchAggregator",
    "batched_service_time",
    "execute_batched_burst",
    "QueueAwareRouter",
]
