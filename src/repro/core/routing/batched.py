"""Batched execution of request bursts (paper Sec. VI-C, "Multiple requests").

The queueing remedy: "group all the images that will be injected into the
same vision encoder and process them at once" — including requests from
*different* tasks that share a module.  This executor:

1. routes every request with the fastest-host rule (Eq. 7);
2. groups the burst's encoder invocations by (module, host) and runs each
   group as ONE batch, with the near-linear batch scaling of footnote 4;
3. completes each request's head once all its (batched) encodings land.

Compared with one-at-a-time FIFO service, batching amortizes per-invocation
setup: mean latency drops whenever >= 2 requests share a module.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.placement.problem import Placement
from repro.core.routing.executor import ExecutionResult, RequestOutcome
from repro.core.routing.latency import LatencyModel, RoutingDecision
from repro.sim import Resource
from repro.sim.trace import CATEGORY_HEAD, CATEGORY_TRANSMISSION
from repro.utils.errors import RoutingError


def execute_batched_burst(
    cluster: EdgeCluster,
    placement: Placement,
    requests: Sequence[InferenceRequest],
    latency_model: LatencyModel,
    max_batch_size: int = 16,
) -> ExecutionResult:
    """Serve a simultaneous burst with module-level batch aggregation.

    All requests are treated as arriving at t=0 (the Table X burst shape);
    per-request arrival offsets would require a batching *window* policy,
    which is out of the paper's scope.
    """
    if max_batch_size < 1:
        raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
    result = ExecutionResult(trace=cluster.trace)
    sim = cluster.sim
    nic: Dict[str, Resource] = {}

    def nic_for(source: str) -> Resource:
        if source not in nic:
            nic[source] = Resource(sim, capacity=1)
        return nic[source]

    # ------------------------------------------------------------------
    # Route everything up front, then group encoder work by (module, host).
    # ------------------------------------------------------------------
    routings: Dict[int, RoutingDecision] = {}
    groups: Dict[Tuple[str, str], List[InferenceRequest]] = {}
    for request in requests:
        decision = latency_model.route(request, placement)
        routings[request.request_id] = decision
        for encoder_name in request.model.encoders:
            host = decision.host_of(encoder_name)
            groups.setdefault((encoder_name, host), []).append(request)

    # One completion event per (group chunk, request): the head waits on its
    # encoders' chunk events.
    encoder_done: Dict[Tuple[str, int], object] = {}
    for (encoder_name, _host), members in groups.items():
        for request in members:
            encoder_done[(encoder_name, request.request_id)] = sim.event()

    def group_proc(encoder_name: str, host: str, members: List[InferenceRequest]):
        module = latency_model.module(encoder_name)
        device = cluster.device(host)
        # FIFO chunking at the batch-size cap.
        ordered = sorted(members, key=lambda r: r.request_id)
        for lo in range(0, len(ordered), max_batch_size):
            chunk = ordered[lo: lo + max_batch_size]
            # Inputs still ship individually (they originate at requesters);
            # serialize each requester's uplink.
            for request in chunk:
                modality = module.modality or "image"
                payload = request.model.payload_bytes(modality)
                uplink = nic_for(request.source)
                token = yield uplink.acquire()
                try:
                    seconds = cluster.network.transfer_seconds(request.source, host, payload)
                    if seconds > 0:
                        start = sim.now
                        yield sim.timeout(seconds)
                        if cluster.trace is not None:
                            cluster.trace.record(
                                request.source,
                                CATEGORY_TRANSMISSION,
                                f"{modality}->{host}",
                                start,
                                sim.now,
                                request.request_id,
                            )
                finally:
                    uplink.release(token)
            # One batched execution for the whole chunk.  Work scales use the
            # heaviest member (a shared text encoder may serve a retrieval
            # prompt set and a VQA question in one batch).
            heaviest = max(chunk, key=lambda r: r.model.scale_for(encoder_name))
            yield from device.execute(
                module,
                model=heaviest.model,
                batch_size=len(chunk),
                label=f"batch[{len(chunk)}] {encoder_name}",
            )
            for request in chunk:
                head_host = routings[request.request_id].host_of(request.model.head)
                seconds = cluster.network.transfer_seconds(host, head_host, module.output_bytes)
                if seconds > 0:
                    yield sim.timeout(seconds)
                encoder_done[(encoder_name, request.request_id)].succeed(sim.now)

    def head_proc(request: InferenceRequest):
        waits = [
            encoder_done[(encoder_name, request.request_id)]
            for encoder_name in request.model.encoders
        ]
        if waits:
            yield sim.all_of(waits)
        decision = routings[request.request_id]
        head = latency_model.module(request.model.head)
        device = cluster.device(decision.host_of(head.name))
        yield from device.execute(
            head,
            model=request.model,
            request_id=request.request_id,
            label=f"head {head.name}",
            category=CATEGORY_HEAD,
        )
        result.outcomes.append(
            RequestOutcome(
                request=request,
                routing=decision,
                start_time=0.0,
                finish_time=sim.now,
            )
        )

    for (encoder_name, host), members in sorted(groups.items()):
        sim.process(group_proc(encoder_name, host, members), name=f"batch:{encoder_name}@{host}")
    for request in sorted(requests, key=lambda r: r.request_id):
        sim.process(head_proc(request), name=f"head:{request.request_id}")
    sim.run()
    if len(result.outcomes) != len(requests):
        raise RoutingError("batched execution lost requests (deadlock?)")
    result.outcomes.sort(key=lambda outcome: outcome.request.request_id)
    return result
