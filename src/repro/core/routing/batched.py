"""Batched execution of request bursts (paper Sec. VI-C, "Multiple requests").

The queueing remedy: "group all the images that will be injected into the
same vision encoder and process them at once" — including requests from
*different* tasks that share a module.  This executor:

1. routes every request with the fastest-host rule (Eq. 7);
2. groups the burst's encoder invocations by (module, host) and runs each
   group as ONE batch, with the near-linear batch scaling of footnote 4;
3. completes each request's head once all its (batched) encodings land.

Compared with one-at-a-time FIFO service, batching amortizes per-invocation
setup: mean latency drops whenever >= 2 requests share a module.

With a :class:`ZooBatchBackend` the micro-batcher additionally amortizes
*real* compute: each (module, host) chunk runs ONE batched numpy forward
through the executable zoo (bit-identical to per-sample execution — see
:mod:`repro.models.layers`), and each request's head produces a real
answer, delivered via ``ExecutionResult.outputs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.catalog import get_module
from repro.core.modules import ModuleKind
from repro.core.placement.problem import Placement
from repro.core.routing.executor import (
    ExecutionResult,
    RequestOutcome,
    UplinkPool,
    transfer_proc,
)
from repro.core.routing.latency import LatencyModel, RoutingDecision
from repro.core.tasks import Task
from repro.sim.trace import CATEGORY_HEAD
from repro.utils.errors import ConfigurationError, RoutingError


# ---------------------------------------------------------------------------
# Real-compute backend: the simulated micro-batches drive actual numpy work
# ---------------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class RequestPayload:
    """The real input data one request carries (only task-relevant fields).

    ``eq=False``: a generated ``__eq__`` over ndarray fields would raise on
    comparison (ambiguous array truth value); identity semantics are fine.
    """

    image: Optional[np.ndarray] = None
    question_tokens: Optional[np.ndarray] = None
    prompts: Optional[np.ndarray] = None          # (num_prompts, T) retrieval set
    audio: Optional[np.ndarray] = None
    answer_latents: Optional[np.ndarray] = None   # decoder-VQA answer vocabulary


@dataclass
class ZooBatchBackend:
    """Runs the burst's grouped encoder invocations as real batched forwards.

    ``payloads`` maps request ids to their input data.  Each chunk the
    simulated executor forms becomes ONE ``embed_batch`` call on the shared
    executable module (vision/audio inputs stack; text inputs — prompt sets
    and questions alike — concatenate row-wise), so two tasks sharing a text
    encoder genuinely share the batch, exactly as Sec. VI-C prescribes.
    Every produced embedding and answer is bit-identical to running the
    requests one at a time through :class:`~repro.models.pipeline.CentralizedPipeline`.
    """

    zoo: object  # ModelZoo; typed loosely to keep the sim layer import-light
    payloads: Dict[int, RequestPayload]
    _embeddings: Dict[Tuple[int, str], np.ndarray] = field(default_factory=dict)

    def reset(self) -> None:
        """Drop embeddings from prior bursts (called per ``execute_batched_burst``)."""
        self._embeddings.clear()

    @staticmethod
    def _require(request: InferenceRequest, value, modality: str) -> np.ndarray:
        if value is None:
            raise ConfigurationError(f"request {request.request_id} has no {modality} input")
        return value

    def payload_for(self, request: InferenceRequest) -> RequestPayload:
        try:
            return self.payloads[request.request_id]
        except KeyError:
            raise ConfigurationError(
                f"no payload for request {request.request_id}"
            ) from None

    def encode_chunk(self, encoder_name: str, chunk: Sequence[InferenceRequest]) -> None:
        """One real batched forward for a (module, host) chunk."""
        # Deferred import: pure-simulation users of this module (no backend)
        # should not pay for the numpy model stack at import time.
        from repro.models.text import pad_token_rows

        kind = get_module(encoder_name).kind
        module = self.zoo.module(encoder_name)
        if kind is ModuleKind.VISION_ENCODER:
            images = np.stack(
                [self._require(r, self.payload_for(r).image, "image") for r in chunk]
            )
            embeddings = module.embed_batch(images)
            for request, embedding in zip(chunk, embeddings):
                self._embeddings[(request.request_id, encoder_name)] = embedding
        elif kind is ModuleKind.AUDIO_ENCODER:
            clips = np.stack(
                [self._require(r, self.payload_for(r).audio, "audio") for r in chunk]
            )
            embeddings = module.embed_batch(clips)
            for request, embedding in zip(chunk, embeddings):
                self._embeddings[(request.request_id, encoder_name)] = embedding
        elif kind is ModuleKind.TEXT_ENCODER:
            # Mixed batch: retrieval prompt sets and VQA questions share the
            # same encoder invocation, concatenated row-wise.  Identical
            # prompt sets (the common case: every retrieval request in a
            # burst carries the same zero-shot set) encode ONCE — batched
            # rows are composition-independent, so sharing is bit-exact.
            rows: List[np.ndarray] = []
            spans: List[Tuple[InferenceRequest, bool, int, int]] = []
            seen: Dict[tuple, Tuple[int, int]] = {}
            offset = 0
            for request in chunk:
                payload = self.payload_for(request)
                if payload.prompts is not None:
                    # Normalize with the encoder's own pad/truncate rule so
                    # mixed-length inputs can share one concatenated batch.
                    prompt_rows = np.ascontiguousarray(pad_token_rows(payload.prompts))
                    key = (prompt_rows.shape, prompt_rows.tobytes())
                    if key in seen:
                        spans.append((request, True, *seen[key]))
                        continue
                    seen[key] = (offset, prompt_rows.shape[0])
                    rows.append(prompt_rows)
                    spans.append((request, True, offset, prompt_rows.shape[0]))
                    offset += prompt_rows.shape[0]
                elif payload.question_tokens is not None:
                    rows.append(pad_token_rows(payload.question_tokens)[None, :])
                    spans.append((request, False, offset, 1))
                    offset += 1
                else:
                    raise ConfigurationError(
                        f"request {request.request_id} has no text input"
                    )
            embeddings = module.embed_batch(np.concatenate(rows, axis=0))
            for request, is_prompt_set, start, size in spans:
                block = embeddings[start: start + size]
                self._embeddings[(request.request_id, encoder_name)] = (
                    block if is_prompt_set else block[0]
                )
        else:
            raise ConfigurationError(f"{encoder_name!r} is not an encoder module")

    def _embedding(self, request: InferenceRequest, kind: ModuleKind) -> np.ndarray:
        for name in request.model.encoders:
            if get_module(name).kind is kind:
                return self._embeddings[(request.request_id, name)]
        raise ConfigurationError(f"model {request.model.name!r} has no {kind.value}")

    def finish(self, request: InferenceRequest):
        """The request's real head output, from the batch-computed embeddings."""
        task = request.model.task
        head = self.zoo.module(request.model.head)
        payload = self.payload_for(request)
        if task is Task.IMAGE_TEXT_RETRIEVAL:
            image = self._embedding(request, ModuleKind.VISION_ENCODER)
            prompts = self._embedding(request, ModuleKind.TEXT_ENCODER)
            return int(head.rank(image, prompts))
        if task is Task.DECODER_VQA:
            image = self._embedding(request, ModuleKind.VISION_ENCODER)
            question = self._require(request, payload.question_tokens, "question_tokens")
            answers = self._require(request, payload.answer_latents, "answer_latents")
            return int(head.answer(image, question, answers))
        if task is Task.ENCODER_VQA:
            image = self._embedding(request, ModuleKind.VISION_ENCODER)
            question = self._embedding(request, ModuleKind.TEXT_ENCODER)
            return int(head.predict(np.concatenate([image, question])))
        if task is Task.IMAGE_CLASSIFICATION:
            image = self._embedding(request, ModuleKind.VISION_ENCODER)
            return int(head.predict(image))
        raise ConfigurationError(
            f"real-compute batching does not support task {task.value!r}"
        )


def execute_batched_burst(
    cluster: EdgeCluster,
    placement: Placement,
    requests: Sequence[InferenceRequest],
    latency_model: LatencyModel,
    max_batch_size: int = 16,
    backend: Optional[ZooBatchBackend] = None,
) -> ExecutionResult:
    """Serve a simultaneous burst with module-level batch aggregation.

    All requests are treated as arriving at t=0 (the Table X burst shape);
    per-request arrival offsets would require a batching *window* policy,
    which is out of the paper's scope.

    With ``backend`` set, every simulated chunk also runs REAL batched
    numpy inference; per-request answers land in ``result.outputs``.
    """
    if max_batch_size < 1:
        raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
    if backend is not None:
        backend.reset()  # a reused backend must not accumulate past bursts
    result = ExecutionResult(trace=cluster.trace)
    sim = cluster.sim
    nics = UplinkPool(sim)

    # ------------------------------------------------------------------
    # Route everything up front, then group encoder work by (module, host).
    # ------------------------------------------------------------------
    routings: Dict[int, RoutingDecision] = {}
    groups: Dict[Tuple[str, str], List[InferenceRequest]] = {}
    for request in requests:
        decision = latency_model.route(request, placement)
        routings[request.request_id] = decision
        for encoder_name in request.model.encoders:
            host = decision.host_of(encoder_name)
            groups.setdefault((encoder_name, host), []).append(request)

    # One completion event per (group chunk, request): the head waits on its
    # encoders' chunk events.
    encoder_done: Dict[Tuple[str, int], object] = {}
    for (encoder_name, _host), members in groups.items():
        for request in members:
            encoder_done[(encoder_name, request.request_id)] = sim.event()

    def group_proc(encoder_name: str, host: str, members: List[InferenceRequest]):
        module = latency_model.module(encoder_name)
        device = cluster.device(host)
        # FIFO chunking at the batch-size cap.
        ordered = sorted(members, key=lambda r: r.request_id)
        for lo in range(0, len(ordered), max_batch_size):
            chunk = ordered[lo: lo + max_batch_size]
            # Inputs still ship individually (they originate at requesters);
            # serialize each requester's uplink.
            for request in chunk:
                modality = module.modality or "image"
                payload = request.model.payload_bytes(modality)
                uplink = nics.get(request.source)
                token = yield uplink.acquire()
                try:
                    yield from transfer_proc(
                        cluster, request.source, host, payload,
                        f"{modality}->{host}", request.request_id,
                    )
                finally:
                    uplink.release(token)
            # One batched execution for the whole chunk.  Work scales use the
            # heaviest member (a shared text encoder may serve a retrieval
            # prompt set and a VQA question in one batch).
            heaviest = max(chunk, key=lambda r: r.model.scale_for(encoder_name))
            yield from device.execute(
                module,
                model=heaviest.model,
                batch_size=len(chunk),
                label=f"batch[{len(chunk)}] {encoder_name}",
            )
            if backend is not None:
                backend.encode_chunk(encoder_name, chunk)
            for request in chunk:
                head_host = routings[request.request_id].host_of(request.model.head)
                seconds = cluster.network.transfer_seconds(host, head_host, module.output_bytes)
                if seconds > 0:
                    yield sim.timeout(seconds)
                encoder_done[(encoder_name, request.request_id)].succeed(sim.now)

    def head_proc(request: InferenceRequest):
        waits = [
            encoder_done[(encoder_name, request.request_id)]
            for encoder_name in request.model.encoders
        ]
        if waits:
            yield sim.all_of(waits)
        decision = routings[request.request_id]
        head = latency_model.module(request.model.head)
        device = cluster.device(decision.host_of(head.name))
        yield from device.execute(
            head,
            model=request.model,
            request_id=request.request_id,
            label=f"head {head.name}",
            category=CATEGORY_HEAD,
        )
        if backend is not None:
            result.outputs[request.request_id] = backend.finish(request)
        result.outcomes.append(
            RequestOutcome(
                request=request,
                routing=decision,
                start_time=0.0,
                finish_time=sim.now,
            )
        )

    for (encoder_name, host), members in sorted(groups.items()):
        sim.process(group_proc(encoder_name, host, members), name=f"batch:{encoder_name}@{host}")
    for request in sorted(requests, key=lambda r: r.request_id):
        sim.process(head_proc(request), name=f"head:{request.request_id}")
    sim.run()
    if len(result.outcomes) != len(requests):
        raise RoutingError("batched execution lost requests (deadlock?)")
    result.outcomes.sort(key=lambda outcome: outcome.request.request_id)
    return result
