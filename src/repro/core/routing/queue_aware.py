"""Queue-aware routing: an extension of the paper's Eq. 7.

Eq. 7 routes each module to the *fastest* hosting device, which is correct
for a single request but piles concurrent requests onto the same host even
when replicas exist.  The queue-aware router scores each candidate host by
``t_comp + estimated queue wait`` — the wait derived from the device's live
occupancy (busy slots + queued work, each assumed to cost about this
module's service time).

This is the natural companion of the leftover-memory replication pass
(Sec. V-B): replicas only help if routing spreads load across them.
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.placement.problem import Placement
from repro.core.routing.latency import LatencyModel, RoutingDecision


class QueueAwareRouter:
    """Routes modules to the host minimizing compute + estimated waiting.

    Two signals feed the wait estimate:

    - the device's *live* occupancy (busy slots + queued jobs);
    - the router's own *reservations* — work it has already routed that has
      not yet reached the device's queue.  Without this, a simultaneous
      burst routes before any queue forms and every request still piles
      onto the single fastest host.
    """

    def __init__(
        self,
        cluster: EdgeCluster,
        latency_model: LatencyModel,
        placement: Placement,
    ) -> None:
        self.cluster = cluster
        self.latency_model = latency_model
        self.placement = placement
        self._reserved_seconds: Dict[str, float] = {}

    def estimated_wait(self, device_name: str, service_seconds: float) -> float:
        """Expected queueing delay on ``device_name`` for a new arrival."""
        device = self.cluster.device(device_name)
        outstanding = device.slots.in_use + device.slots.queue_length
        live_wait = outstanding / device.slots.capacity * service_seconds
        reserved = self._reserved_seconds.get(device_name, 0.0) / device.slots.capacity
        return live_wait + reserved

    def __call__(self, request: InferenceRequest) -> RoutingDecision:
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            candidates = self.placement.hosts(module_name)
            scored = []
            for device_name in candidates:
                service = self.latency_model.compute_seconds(request, module_name, device_name)
                wait = self.estimated_wait(device_name, service)
                scored.append((service + wait, device_name, service))
            _, chosen, service = min(scored)
            hosts[module_name] = chosen
            self._reserved_seconds[chosen] = (
                self._reserved_seconds.get(chosen, 0.0) + service
            )
        return RoutingDecision(request=request, hosts=hosts)
