"""Queue-aware routing: an extension of the paper's Eq. 7.

Eq. 7 routes each module to the *fastest* hosting device, which is correct
for a single request but piles concurrent requests onto the same host even
when replicas exist.  The queue-aware router scores each candidate host by
``t_comp + estimated queue wait`` — the wait derived from the device's live
occupancy (busy slots + queued work, each assumed to cost about this
module's service time).

This is the natural companion of the leftover-memory replication pass
(Sec. V-B): replicas only help if routing spreads load across them.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.placement.problem import Placement
from repro.core.routing.latency import LatencyModel, RoutingDecision


class QueueAwareRouter:
    """Routes modules to the host minimizing compute + estimated waiting.

    Two signals feed the wait estimate:

    - the device's *live* occupancy (busy slots + queued jobs);
    - the router's own *reservations* — work it has already routed that has
      not yet reached the device's queue.  Without this, a simultaneous
      burst routes before any queue forms and every request still piles
      onto the single fastest host.

    Reservations **decay like a leaky bucket**: each device's ledger of
    reserved service-seconds drains at the device's slot capacity
    (service-seconds per simulated second) — the rate at which the device
    can actually absorb routed work — not per reservation, which would let
    ``k`` concurrent reservations drain ``k`` times faster than the device
    runs.  Within a simultaneous burst (all routed at one instant) nothing
    has decayed and the estimate is unchanged; over a long spaced-out
    request sequence the stale reservations drain instead of piling up
    until every estimate saturates and routing degenerates back to
    fastest-host.
    """

    def __init__(
        self,
        cluster: EdgeCluster,
        latency_model: LatencyModel,
        placement: Placement,
    ) -> None:
        self.cluster = cluster
        self.latency_model = latency_model
        self.placement = placement
        #: Per device: (last_drain_time, outstanding_service_seconds).
        self._reservations: Dict[str, Tuple[float, float]] = {}

    def reserved_seconds(self, device_name: str) -> float:
        """Undrained service-**seconds** still reserved against ``device_name``.

        The leaky-bucket read: the device's outstanding reservation ledger
        is first drained at the device's slot capacity (service-seconds per
        simulated second) for the interval since the last read, clamped at
        zero, then persisted — so this method both *reports* and *advances*
        the bucket.  Within one simulated instant (a simultaneous burst)
        nothing drains; reading an idle device after a long gap returns 0.
        Unknown devices (never reserved against) return 0.0.
        """
        state = self._reservations.get(device_name)
        if state is None:
            return 0.0
        now = self.cluster.sim.now
        last, outstanding = state
        capacity = self.cluster.device(device_name).slots.capacity
        outstanding = max(0.0, outstanding - capacity * (now - last))
        self._reservations[device_name] = (now, outstanding)
        return outstanding

    def reserve(self, device_name: str, service_seconds: float) -> None:
        """Reserve ``service_seconds`` of work against ``device_name``.

        Drains the bucket to *now* first, then adds the new reservation —
        the bookkeeping step of routing a module somewhere.
        """
        outstanding = self.reserved_seconds(device_name)
        self._reservations[device_name] = (
            self.cluster.sim.now, outstanding + service_seconds
        )

    def estimated_wait(self, device_name: str, service_seconds: float) -> float:
        """Expected queueing delay (**seconds**) for a new arrival needing
        ``service_seconds`` of service on ``device_name``: live occupancy
        (busy slots + queued jobs, each costed at this request's service
        time) plus the undrained reservation ledger, both divided by the
        device's slot capacity."""
        device = self.cluster.device(device_name)
        outstanding = device.slots.in_use + device.slots.queue_length
        live_wait = outstanding / device.slots.capacity * service_seconds
        reserved = self.reserved_seconds(device_name) / device.slots.capacity
        return live_wait + reserved

    def __call__(self, request: InferenceRequest) -> RoutingDecision:
        """Route every module of ``request`` to its cheapest replica by
        ``service + estimated wait`` (seconds), reserving the routed work.

        All hosts of a module are priced; ties break toward the smaller
        (score, device name) pair, so equal-cost replicas resolve
        deterministically by name.
        """
        hosts: Dict[str, str] = {}
        for module_name in request.model.module_names:
            candidates = self.placement.hosts(module_name)
            scored = []
            for device_name in candidates:
                service = self.latency_model.compute_seconds(request, module_name, device_name)
                wait = self.estimated_wait(device_name, service)
                scored.append((service + wait, device_name, service))
            _, chosen, service = min(scored)
            hosts[module_name] = chosen
            self.reserve(chosen, service)
        return RoutingDecision(request=request, hosts=hosts)
