"""Discrete-event execution of routed requests (Algorithm 1, lines 13-19).

For each request:

1. route every required module to its fastest hosting device (Eq. 7);
2. start all encoder paths; the requester's uplink sends modality inputs in
   **descending order of expected encode time** (the paper's "send the data
   with a modality that takes longer in the encoding first");
3. each path: input transmission -> FIFO-queued encoding on its device ->
   embedding transmission to the head's device;
4. join all encoder paths (the max of Eq. 2), then run the head.

Requests are spawned at their arrival times, so a stream of requests
pipelines naturally: the next request starts encoding as soon as the shared
encoder frees up — including the queueing delay Table X reports for shared
modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.placement.problem import Placement
from repro.core.routing.latency import LatencyModel, RoutingDecision
from repro.sim import Resource, TraceRecorder
from repro.sim.trace import CATEGORY_HEAD, CATEGORY_TRANSMISSION


class UplinkPool:
    """Per-source uplink NICs (capacity-1 resources), created lazily.

    Concurrent modality input sends from the same requester serialize on its
    NIC; shared by the FIFO executor, the burst micro-batcher, and the
    online serving runtime so the uplink model cannot drift between them.
    """

    def __init__(self, sim) -> None:
        self._sim = sim
        self._nics: Dict[str, Resource] = {}

    def get(self, source: str) -> Resource:
        if source not in self._nics:
            self._nics[source] = Resource(self._sim, capacity=1)
        return self._nics[source]


def transfer_proc(
    cluster: EdgeCluster,
    src: str,
    dst: str,
    payload_bytes: int,
    label: str,
    request_id: Optional[int],
):
    """Process generator: one ``src -> dst`` network transfer of
    ``payload_bytes`` **bytes**, recorded on the cluster trace."""
    seconds = cluster.network.transfer_seconds(src, dst, payload_bytes)
    start = cluster.sim.now
    if seconds > 0:
        yield cluster.sim.timeout(seconds)
        if cluster.trace is not None:
            cluster.trace.record(
                src, CATEGORY_TRANSMISSION, label, start, cluster.sim.now, request_id
            )


@dataclass(frozen=True)
class RequestOutcome:
    """Completion record for one executed request.

    ``start_time`` and ``finish_time`` are simulated clock readings in
    **seconds**; ``start_time`` is when the request began executing (its
    arrival time, unless it arrived mid-simulation).
    """

    request: InferenceRequest
    routing: RoutingDecision
    start_time: float
    finish_time: float

    @property
    def latency(self) -> float:
        """Arrival-to-completion latency in **seconds** (includes queueing)."""
        return self.finish_time - self.request.arrival_time


@dataclass
class ExecutionResult:
    """Outcomes plus the recorded timeline for a batch of requests.

    Every latency-flavoured accessor (``latencies``, ``mean_latency``,
    ``max_latency``, ``makespan``) is in **seconds** of simulated time.

    ``outputs`` optionally carries *real* per-request inference results
    (answer indices, class predictions, ...) keyed by request id when the
    executor ran with a compute backend (see
    :mod:`repro.core.routing.batched`).

    Aggregate statistics are cached: latencies are computed once per
    distinct outcome-list content instead of on every
    ``mean_latency``/``max_latency`` access, and ``outcome_for`` is an
    indexed dict lookup instead of an attribute-chasing scan (validity is
    still confirmed by a cheap O(n) identity walk, since ``outcomes`` is a
    plain mutable list).  Staleness is detected by an identity snapshot of
    the outcome objects, so appends, reorders (the executors' final sort),
    and replacements all invalidate; the snapshot holds strong references,
    so object ids cannot be recycled under it, and :class:`RequestOutcome`
    is frozen, so cached entries cannot drift via in-place field mutation.
    """

    outcomes: List[RequestOutcome] = field(default_factory=list)
    trace: Optional[TraceRecorder] = None
    outputs: Dict[int, object] = field(default_factory=dict)
    _snapshot: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)
    _latency_cache: List[float] = field(
        default_factory=list, init=False, repr=False, compare=False
    )
    _index: Dict[int, RequestOutcome] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def _sync(self) -> None:
        snapshot = self._snapshot
        if (
            snapshot is not None
            and len(snapshot) == len(self.outcomes)
            and all(cached is live for cached, live in zip(snapshot, self.outcomes))
        ):
            return
        self._snapshot = tuple(self.outcomes)
        self._latency_cache = [outcome.latency for outcome in self.outcomes]
        self._index = {outcome.request.request_id: outcome for outcome in self.outcomes}

    @property
    def latencies(self) -> List[float]:
        self._sync()
        return list(self._latency_cache)

    @property
    def mean_latency(self) -> float:
        self._sync()
        if not self._latency_cache:
            return 0.0
        return sum(self._latency_cache) / len(self._latency_cache)

    @property
    def max_latency(self) -> float:
        self._sync()
        return max(self._latency_cache, default=0.0)

    @property
    def makespan(self) -> float:
        """Completion time of the last request."""
        return max((outcome.finish_time for outcome in self.outcomes), default=0.0)

    def outcome_for(self, request_id: int) -> RequestOutcome:
        self._sync()
        try:
            return self._index[request_id]
        except KeyError:
            raise KeyError(f"no outcome for request {request_id}") from None

    def output_for(self, request_id: int):
        """The real inference output for ``request_id`` (backend runs only)."""
        try:
            return self.outputs[request_id]
        except KeyError:
            raise KeyError(f"no output for request {request_id}") from None


def execute_requests(
    cluster: EdgeCluster,
    placement: Placement,
    requests: Sequence[InferenceRequest],
    latency_model: LatencyModel,
    parallel: bool = True,
    service_noise: Optional[Callable[[str, str], float]] = None,
    router: Optional[Callable[[InferenceRequest], RoutingDecision]] = None,
) -> ExecutionResult:
    """Run ``requests`` to completion on the cluster; returns outcomes + trace.

    Request ``arrival_time`` values are **seconds** on the cluster's
    simulated clock; all produced latencies are **seconds** too.
    ``service_noise(module, device) -> factor`` optionally perturbs service
    times with a dimensionless multiplier (used by the randomized
    optimality trials).  ``router`` overrides the default fastest-host rule
    (Eq. 7) — e.g. the queue-aware router of
    :mod:`repro.core.routing.queue_aware`.  The cluster's modules must
    already be loaded (see the engine's ``deploy``).
    """
    result = ExecutionResult(trace=cluster.trace)
    sim = cluster.sim
    nics = UplinkPool(sim)

    def encoder_path(request: InferenceRequest, encoder, device_name: str, head_device: str):
        modality = encoder.modality or "image"
        payload = request.model.payload_bytes(modality)
        # Serialize input sends on the requester's uplink.
        nic = nics.get(request.source)
        token = yield nic.acquire()
        try:
            yield from transfer_proc(
                cluster, request.source, device_name, payload,
                f"{modality}->{device_name}", request.request_id,
            )
        finally:
            nic.release(token)
        device = cluster.device(device_name)
        scale = service_noise(encoder.name, device_name) if service_noise else 1.0
        yield from device.execute(
            encoder,
            model=request.model,
            request_id=request.request_id,
            label=f"encode {encoder.name}",
            service_scale=scale,
        )
        yield from transfer_proc(
            cluster, device_name, head_device, encoder.output_bytes,
            f"emb->{head_device}", request.request_id,
        )

    def request_proc(request: InferenceRequest):
        if request.arrival_time > sim.now:
            yield sim.timeout(request.arrival_time - sim.now)
        start = sim.now
        routing = router(request) if router is not None else latency_model.route(request, placement)
        # Resolve modules against the problem's table (handles the cloned
        # names of no-sharing deployments, which the catalog cannot).
        encoders = [latency_model.module(name) for name in request.model.encoders]
        head = latency_model.module(request.model.head)
        head_device_name = routing.host_of(head.name)
        # Longest-encoding-first send order (paper Sec. V-B).
        ordered = sorted(
            encoders,
            key=lambda enc: -latency_model.compute_seconds(
                request, enc.name, routing.host_of(enc.name)
            ),
        )
        if parallel:
            paths = [
                sim.process(
                    encoder_path(request, encoder, routing.host_of(encoder.name), head_device_name),
                    name=f"q{request.request_id}:{encoder.name}",
                )
                for encoder in ordered
            ]
            if paths:
                yield sim.all_of(paths)
        else:
            for encoder in ordered:
                yield from encoder_path(
                    request, encoder, routing.host_of(encoder.name), head_device_name
                )
        head_device = cluster.device(head_device_name)
        scale = service_noise(head.name, head_device_name) if service_noise else 1.0
        yield from head_device.execute(
            head,
            model=request.model,
            request_id=request.request_id,
            label=f"head {head.name}",
            category=CATEGORY_HEAD,
            service_scale=scale,
        )
        result.outcomes.append(
            RequestOutcome(request=request, routing=routing, start_time=start, finish_time=sim.now)
        )

    for request in sorted(requests, key=lambda r: (r.arrival_time, r.request_id)):
        sim.process(request_proc(request), name=f"request-{request.request_id}")
    sim.run()
    result.outcomes.sort(key=lambda outcome: outcome.request.request_id)
    return result
