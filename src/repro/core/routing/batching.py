"""Module-level batch aggregation (paper Sec. VI-C, "Multiple requests").

The paper's remedy for shared-module queueing is to aggregate requests that
target the same module — from the same task or from different tasks — and
process them as one batch, with the near-linear batch scaling of footnote 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cluster.requests import InferenceRequest
from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.profiles.compute import ComputeModel
from repro.profiles.devices import DeviceProfile


def batched_service_time(
    compute_model: ComputeModel,
    module: ModuleSpec,
    device: DeviceProfile,
    model: ModelSpec,
    batch_size: int,
) -> float:
    """Service time for a batch on one module (footnote 4's scaling)."""
    return compute_model.seconds(module, device, model=model, batch_size=batch_size)


@dataclass(frozen=True)
class Batch:
    """A group of requests aggregated onto one module execution."""

    module_name: str
    requests: Tuple[InferenceRequest, ...]

    @property
    def size(self) -> int:
        return len(self.requests)


class BatchAggregator:
    """Groups pending requests by target module, up to a max batch size.

    Requests for *different* models can share a batch when they route to the
    same module — the paper's cross-task aggregation ("group all the images
    that will be injected into the same vision encoder").
    """

    def __init__(self, max_batch_size: int = 16) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        self.max_batch_size = max_batch_size

    def aggregate(
        self, pending: Sequence[Tuple[InferenceRequest, str]]
    ) -> List[Batch]:
        """Form batches from (request, module_name) pairs, FIFO within module."""
        by_module: Dict[str, List[InferenceRequest]] = {}
        for request, module_name in pending:
            by_module.setdefault(module_name, []).append(request)
        batches: List[Batch] = []
        for module_name, requests in by_module.items():
            requests.sort(key=lambda r: (r.arrival_time, r.request_id))
            for lo in range(0, len(requests), self.max_batch_size):
                chunk = tuple(requests[lo: lo + self.max_batch_size])
                batches.append(Batch(module_name=module_name, requests=chunk))
        return batches

    def speedup(
        self,
        compute_model: ComputeModel,
        module: ModuleSpec,
        device: DeviceProfile,
        model: ModelSpec,
        batch_size: int,
    ) -> float:
        """Throughput gain of batching vs. one-at-a-time processing."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        single = compute_model.seconds(module, device, model=model, batch_size=1)
        batched = batched_service_time(compute_model, module, device, model, batch_size)
        if batched <= 0:
            return 1.0
        return single * batch_size / batched
