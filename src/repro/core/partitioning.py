"""Intra-module pipeline partitioning — the paper's last-resort fallback.

When a module fits on no device even after compression, the paper's remedy
is DNN/LLM partitioning: split the module itself into sequential stages and
"search the devices for partitioned modules (as one module) using our greedy
placement approach" (Sec. V-B).

A partitioned module is a chain of stage specs; stages execute sequentially
(a layer pipeline), each adding an inter-stage activation transfer when
adjacent stages sit on different devices — precisely the transmission
overhead the paper warns intra-module partitioning pays (Sec. II).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.network import Network
from repro.core.modules import ModuleSpec
from repro.profiles.devices import DeviceProfile
from repro.utils.errors import PlacementError

#: Bytes of activations handed from one pipeline stage to the next.
STAGE_ACTIVATION_BYTES = 100_000
#: Don't partition beyond this many stages (diminishing returns, exploding
#: transfer overhead).
MAX_STAGES = 8


@dataclass(frozen=True)
class PartitionedModule:
    """A module split into a sequential stage chain."""

    source: ModuleSpec
    stages: Tuple[ModuleSpec, ...]

    @property
    def stage_count(self) -> int:
        return len(self.stages)

    @property
    def total_memory_bytes(self) -> int:
        """Summed memory requirement of every stage, in bytes."""
        return sum(stage.memory_bytes for stage in self.stages)


def partition_module(module: ModuleSpec, stages: int) -> PartitionedModule:
    """Split ``module`` into ``stages`` equal sequential stages.

    Stage names are ``<name>#0 .. <name>#k-1``; memory and work divide
    evenly (transformer layers partition cleanly); every stage ships
    :data:`STAGE_ACTIVATION_BYTES` to its successor.
    """
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    if stages == 1:
        return PartitionedModule(source=module, stages=(module,))
    per_stage_params = module.params // stages
    per_stage_work = module.work / stages
    stage_specs = []
    for index in range(stages):
        # Give the last stage the rounding remainder so totals are exact.
        params = per_stage_params
        if index == stages - 1:
            params = module.params - per_stage_params * (stages - 1)
        stage_specs.append(
            dataclasses.replace(
                module,
                name=f"{module.name}#{index}",
                params=params,
                work=per_stage_work,
                output_bytes=STAGE_ACTIVATION_BYTES
                if index < stages - 1
                else module.output_bytes,
            )
        )
    return PartitionedModule(source=module, stages=tuple(stage_specs))


def minimum_stages(module: ModuleSpec, devices: Sequence[DeviceProfile]) -> int:
    """Fewest equal stages that makes every stage fit the largest device.

    Raises :class:`PlacementError` when even :data:`MAX_STAGES` stages do
    not fit — at that point the model simply exceeds the cluster.
    """
    largest = max(device.memory_bytes for device in devices)
    if largest <= 0:
        raise PlacementError("no device has memory available")
    needed = math.ceil(module.memory_bytes / largest)
    if needed > MAX_STAGES:
        raise PlacementError(
            f"module {module.name!r} needs {needed} stages (> {MAX_STAGES}); "
            "the cluster cannot host it"
        )
    return max(1, needed)


@dataclass(frozen=True)
class StagePlacement:
    """Stage name -> host device, for one partitioned module."""

    partitioned: PartitionedModule
    hosts: Tuple[str, ...]

    def host_of(self, index: int) -> str:
        return self.hosts[index]


def place_stages(
    partitioned: PartitionedModule,
    devices: Sequence[DeviceProfile],
    residual_bytes: Dict[str, int],
) -> StagePlacement:
    """Greedy stage placement: each stage to the fastest device with room.

    Mirrors Algorithm 1's spirit (fastest completion first) but chains are
    sequential, so accumulation does not apply across stages — a stage only
    starts when its predecessor finishes anyway.
    """
    hosts: List[str] = []
    for stage in partitioned.stages:
        ranked = sorted(
            devices,
            key=lambda device: (device.compute_seconds(stage), device.name),
        )
        chosen = None
        for device in ranked:
            if residual_bytes.get(device.name, 0) >= stage.memory_bytes:
                chosen = device.name
                break
        if chosen is None:
            raise PlacementError(
                f"stage {stage.name!r} ({stage.memory_bytes} B) fits on no device"
            )
        residual_bytes[chosen] -= stage.memory_bytes
        hosts.append(chosen)
    return StagePlacement(partitioned=partitioned, hosts=tuple(hosts))


def chain_seconds(
    placement: StagePlacement,
    network: Network,
    work_scale: float = 1.0,
    devices: Dict[str, DeviceProfile] = None,
) -> float:
    """End-to-end time of the sequential stage chain, in seconds.

    Sum of per-stage compute plus inter-stage activation transfers where
    adjacent stages sit on different devices.
    """
    if devices is None:
        raise ValueError("devices mapping is required")
    total = 0.0
    stages = placement.partitioned.stages
    for index, stage in enumerate(stages):
        host = placement.host_of(index)
        total += devices[host].compute_seconds(stage, work_scale=work_scale)
        if index < len(stages) - 1:
            next_host = placement.host_of(index + 1)
            total += network.transfer_seconds(host, next_host, stage.output_bytes)
    return total


def fit_oversized_module(
    module: ModuleSpec,
    devices: Sequence[DeviceProfile],
    network: Network,
    residual_bytes: Dict[str, int] = None,
    work_scale: float = 1.0,
) -> Tuple[StagePlacement, float]:
    """One-call fallback: partition minimally, place stages, price the chain.

    Returns the stage placement and its end-to-end seconds.  This is the
    paper's "apply compression or DNN/LLM partitioning ... then search the
    devices" path, packaged for the engine and experiments.
    """
    base_residual = (
        dict(residual_bytes)
        if residual_bytes is not None
        else {device.name: device.memory_bytes for device in devices}
    )
    if module.memory_bytes > sum(base_residual.values()):
        raise PlacementError(
            f"module {module.name!r} ({module.memory_bytes} B) exceeds the pool's "
            f"total free memory ({sum(base_residual.values())} B); partitioning "
            "cannot create capacity"
        )
    device_map = {device.name: device for device in devices}
    largest_free = max(base_residual.values())
    start = max(1, math.ceil(module.memory_bytes / max(1, largest_free)))
    # The naive per-stage bound can still fail bin-packing (a device may not
    # hold two stages); search upward until the stages place.
    last_error: Optional[PlacementError] = None
    for stages in range(start, MAX_STAGES + 1):
        partitioned = partition_module(module, stages)
        try:
            placement = place_stages(partitioned, devices, dict(base_residual))
        except PlacementError as error:
            last_error = error
            continue
        seconds = chain_seconds(placement, network, work_scale=work_scale, devices=device_map)
        return placement, seconds
    raise PlacementError(
        f"module {module.name!r} cannot be pipeline-partitioned onto this pool "
        f"within {MAX_STAGES} stages"
    ) from last_error
