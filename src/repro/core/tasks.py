"""Multi-modal task taxonomy (paper Sec. III-A and Table IV).

Each task defines which functional-module kinds its models require and
whether multiple encoders allow per-request parallel processing (the "||"
marker in Table IV).
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.core.modules import ModuleKind


class Task(enum.Enum):
    """The five evaluated multi-modal tasks."""

    IMAGE_TEXT_RETRIEVAL = "image_text_retrieval"
    ENCODER_VQA = "encoder_vqa"
    DECODER_VQA = "decoder_vqa"
    CROSS_MODAL_ALIGNMENT = "cross_modal_alignment"
    IMAGE_CLASSIFICATION = "image_classification"
    IMAGE_CAPTIONING = "image_captioning"

    @property
    def encoder_kinds(self) -> Tuple[ModuleKind, ...]:
        """Encoder module kinds required by this task (Table IV columns)."""
        return _TASK_ENCODERS[self]

    @property
    def head_kind(self) -> ModuleKind:
        """The task-head kind (LLM / distance / classifier)."""
        return _TASK_HEAD[self]

    @property
    def parallelizable(self) -> bool:
        """True when the task has >= 2 encoders (Table IV's '||' rows)."""
        return len(self.encoder_kinds) >= 2


_TASK_ENCODERS = {
    Task.IMAGE_TEXT_RETRIEVAL: (ModuleKind.VISION_ENCODER, ModuleKind.TEXT_ENCODER),
    Task.ENCODER_VQA: (ModuleKind.VISION_ENCODER, ModuleKind.TEXT_ENCODER),
    Task.DECODER_VQA: (ModuleKind.VISION_ENCODER,),
    Task.CROSS_MODAL_ALIGNMENT: (
        ModuleKind.VISION_ENCODER,
        ModuleKind.TEXT_ENCODER,
        ModuleKind.AUDIO_ENCODER,
    ),
    Task.IMAGE_CLASSIFICATION: (ModuleKind.VISION_ENCODER,),
    Task.IMAGE_CAPTIONING: (ModuleKind.VISION_ENCODER,),
}

_TASK_HEAD = {
    Task.IMAGE_TEXT_RETRIEVAL: ModuleKind.DISTANCE,
    Task.ENCODER_VQA: ModuleKind.CLASSIFIER,
    Task.DECODER_VQA: ModuleKind.LANGUAGE_MODEL,
    Task.CROSS_MODAL_ALIGNMENT: ModuleKind.DISTANCE,
    Task.IMAGE_CLASSIFICATION: ModuleKind.CLASSIFIER,
    Task.IMAGE_CAPTIONING: ModuleKind.LANGUAGE_MODEL,
}
