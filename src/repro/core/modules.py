"""Functional-level modules (the unit of S2M3's inter-module partitioning).

A *module* is one functional block of a multi-modal model: a modality-wise
encoder (vision / text / audio) or a task head (LLM, distance measure,
classifier) — see paper Sec. IV-A and Table IV.  Modules are identified by
name: two models referencing the same module *name* share one deployment
(Insight 4), which is exactly what :mod:`repro.core.sharing` exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.utils.units import params_to_bytes


class ModuleKind(enum.Enum):
    """Functional role of a module (columns of paper Table IV)."""

    VISION_ENCODER = "vision_encoder"
    TEXT_ENCODER = "text_encoder"
    AUDIO_ENCODER = "audio_encoder"
    LANGUAGE_MODEL = "language_model"
    DISTANCE = "distance"
    CLASSIFIER = "classifier"

    @property
    def is_encoder(self) -> bool:
        """Encoders are the parallel-processable modality modules (Insight 2)."""
        return self in _ENCODER_KINDS

    @property
    def is_head(self) -> bool:
        """Heads run once per request, after all encoders complete."""
        return not self.is_encoder

    @property
    def modality(self) -> Optional[str]:
        """Input modality consumed by an encoder kind (None for heads)."""
        return _MODALITY_BY_KIND.get(self)


_ENCODER_KINDS = {
    ModuleKind.VISION_ENCODER,
    ModuleKind.TEXT_ENCODER,
    ModuleKind.AUDIO_ENCODER,
}

_MODALITY_BY_KIND = {
    ModuleKind.VISION_ENCODER: "image",
    ModuleKind.TEXT_ENCODER: "text",
    ModuleKind.AUDIO_ENCODER: "audio",
}

#: Architecture families, used by the compute model: CNNs and transformers
#: have different throughput characteristics on CPU-class edge devices
#: (paper footnote 2 shows a 14x text-encoder gap between laptop and Jetson).
FAMILY_CNN = "cnn"
FAMILY_TRANSFORMER = "transformer"
FAMILY_ANALYTIC = "analytic"  # parameter-free heads (cosine similarity, InfoNCE)


@dataclass(frozen=True)
class ModuleSpec:
    """Static description of one functional module.

    Attributes:
        name: Globally unique identity; the *sharing key*.  Two models whose
            specs name the same module reuse a single deployed copy.
        kind: Functional role (encoder vs. head, and which modality).
        params: Parameter count (paper Table V).
        work: Abstract compute demand in GFLOP-like units for serving one
            request (for text encoders in retrieval, this covers the whole
            zero-shot prompt set; for LLM heads, a full answer generation).
        family: Architecture family for device-throughput modelling.
        output_bytes: Size of the activation shipped from this module to the
            task head (the ``t_comm`` of Eq. 2's third term).
        bytes_per_param: Checkpoint precision (2 = fp16 default; quantized
            variants use 1 for int8 and 0.6 for packed int4 + scales).
    """

    name: str
    kind: ModuleKind
    params: int
    work: float
    family: str = FAMILY_TRANSFORMER
    output_bytes: int = 2 * 1024
    bytes_per_param: float = 2

    def __post_init__(self) -> None:
        if self.params < 0:
            raise ValueError(f"module {self.name!r}: params must be >= 0")
        if self.work < 0:
            raise ValueError(f"module {self.name!r}: work must be >= 0")
        if self.output_bytes < 0:
            raise ValueError(f"module {self.name!r}: output_bytes must be >= 0")

    @property
    def memory_bytes(self) -> int:
        """Deployment memory requirement ``r_m`` of Eq. 4d, in bytes."""
        return params_to_bytes(self.params, self.bytes_per_param)

    @property
    def is_encoder(self) -> bool:
        return self.kind.is_encoder

    @property
    def is_head(self) -> bool:
        return self.kind.is_head

    @property
    def modality(self) -> Optional[str]:
        return self.kind.modality

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.kind.value}, {self.params / 1e6:.0f}M)"
