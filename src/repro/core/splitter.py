"""Split architecture (paper Sec. IV-A).

``split_model`` decomposes a model into its functional modules and reports
the deployment-cost arithmetic the paper states: without splitting, a single
device must host ``sum(r_m)``; with splitting, the worst single-device cost
drops to ``max(r_m)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.catalog import get_model, get_module
from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec


@dataclass(frozen=True)
class SplitModel:
    """A model decomposed into functional-level modules.

    ``encoders`` preserves the model's declaration order; ``head`` is the
    single task-specific head (the paper's ``h_k``).
    """

    model: ModelSpec
    encoders: Tuple[ModuleSpec, ...]
    head: ModuleSpec

    @property
    def modules(self) -> Tuple[ModuleSpec, ...]:
        """The full module set ``M_k = M_k^enc ∪ {h_k}``."""
        return self.encoders + (self.head,)

    @property
    def total_params(self) -> int:
        """Monolithic deployment cost (centralized column of Table VI)."""
        return sum(module.params for module in self.modules)

    @property
    def max_module_params(self) -> int:
        """Worst per-device cost after splitting (S2M3 column of Table VI)."""
        return max(module.params for module in self.modules)

    @property
    def total_memory_bytes(self) -> int:
        """Monolithic memory requirement in bytes."""
        return sum(module.memory_bytes for module in self.modules)

    @property
    def max_module_memory_bytes(self) -> int:
        """Worst per-device memory requirement after splitting, in bytes."""
        return max(module.memory_bytes for module in self.modules)

    @property
    def saving_fraction(self) -> float:
        """Relative reduction of the worst single-device parameter load.

        For CLIP ResNet-50 this is ~0.50 — the paper's headline "up to 50%"
        single-task saving.
        """
        if self.total_params == 0:
            return 0.0
        return 1.0 - self.max_module_params / self.total_params

    @property
    def parallel_encoder_count(self) -> int:
        """Number of encoders that can run concurrently for one request."""
        return len(self.encoders)


def split_model(model: "ModelSpec | str") -> SplitModel:
    """Decompose ``model`` (spec or catalog name) into functional modules."""
    spec = get_model(model) if isinstance(model, str) else model
    encoders = tuple(get_module(name) for name in spec.encoders)
    head = get_module(spec.head)
    return SplitModel(model=spec, encoders=encoders, head=head)


def split_many(models: List["ModelSpec | str"]) -> List[SplitModel]:
    """Split several models, preserving order."""
    return [split_model(model) for model in models]
