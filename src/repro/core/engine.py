"""The S2M3 orchestrator: split -> share -> place -> route -> serve.

:class:`S2M3Engine` is the library's main entry point.  Given a cluster and
a set of models it:

1. splits each model into functional modules (Sec. IV-A);
2. deduplicates shared modules across models (Sec. IV-B) — or, with
   ``share=False``, instantiates per-model dedicated copies (the Table X
   "w/o Sharing" arm);
3. places modules with greedy Algorithm 1 (pluggable: optimal / variants);
4. loads modules onto devices, accounting for loading time (the end-to-end
   column of Table VII);
5. serves request workloads in the discrete-event cluster with per-request
   parallel routing, or prices them analytically (Eq. 1-3).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.requests import InferenceRequest
from repro.cluster.topology import EdgeCluster
from repro.core.catalog import get_model, get_module
from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.core.placement.greedy import greedy_placement, replicate_with_leftover
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.placement.validation import check_placement
from repro.core.routing.executor import ExecutionResult, execute_requests
from repro.core.routing.latency import LatencyBreakdown, LatencyModel
from repro.utils.errors import ConfigurationError

#: Placement algorithm signature; defaults to the paper's greedy.
PlacementAlgorithm = Callable[[PlacementProblem], Placement]


def _dedicated_instances(
    models: Sequence[ModelSpec],
) -> Tuple[List[ModuleSpec], List[ModelSpec]]:
    """Clone every module per model — the no-sharing deployment.

    Module names get a ``@model`` suffix so the sharing machinery sees them
    as distinct; model specs are rewritten to reference their clones.
    """
    modules: List[ModuleSpec] = []
    rewritten: List[ModelSpec] = []
    for model in models:
        mapping = {}
        for name in model.module_names:
            clone = dataclasses.replace(get_module(name), name=f"{name}@{model.name}")
            modules.append(clone)
            mapping[name] = clone.name
        rewritten.append(
            dataclasses.replace(
                model,
                encoders=tuple(mapping[name] for name in model.encoders),
                head=mapping[model.head],
                work_scale={mapping[k]: v for k, v in model.work_scale.items()},
                input_bytes=dict(model.input_bytes),
            )
        )
    return modules, rewritten


@dataclass(frozen=True)
class DeploymentReport:
    """What got deployed where, and what it cost.

    Attributes:
        placement: The validated module → host assignment.
        total_params: Parameters resident across the cluster (count; divide
            by 1e6 for the paper's "M" columns).
        max_device_params: Largest per-device resident parameter count.
        per_device_params: Resident parameter count per device name.
        load_seconds: End-to-end model-loading time in **seconds** — the
            per-device maximum, since devices load in parallel.
        per_device_load_seconds: Serial loading time per device, **seconds**.
    """

    placement: Placement
    total_params: int
    max_device_params: int
    per_device_params: Dict[str, int]
    load_seconds: float
    per_device_load_seconds: Dict[str, float]


@dataclass
class S2M3Engine:
    """End-to-end S2M3 on one cluster.

    All durations produced by the engine (deployment ``load_seconds``,
    estimate/serve latencies) are **seconds** of simulated time; module
    sizes are **bytes** of fp16 weights; parameter figures are raw counts.

    Attributes:
        cluster: Live cluster (fresh per experiment; deployment mutates it).
        models: Models to deploy (catalog names or specs).
        share: Deduplicate common modules across models (paper default).
        parallel: Per-request parallel routing over modality encoders.
        placement_algorithm: Defaults to greedy Algorithm 1.
        replicate: Run the leftover-memory replication pass
            (:func:`~repro.core.placement.greedy.replicate_with_leftover`,
            default ``max_copies=2``) after placement: extra copies of the
            largest modules go to the fastest devices with free memory, in
            descending memory order with deterministic name tie-breaks.
            Replicas only pay off when routing spreads load across them —
            pair with the queue-aware router (bursts) or the serving
            runtime; the one-shot Eq. 7 estimate ignores them.  For
            load-driven replica counts use the serving autoscaler
            (``ServingRuntime(autoscale=True)``) instead of a static pass.
    """

    cluster: EdgeCluster
    models: Sequence["ModelSpec | str"]
    share: bool = True
    parallel: bool = True
    placement_algorithm: Optional[PlacementAlgorithm] = None
    replicate: bool = False
    #: Sec. V-B fallback: when a module fits on no device, swap in the least
    #: compressed quantized variant that does (int8, then int4) and re-plan.
    allow_compression: bool = False

    _problem: Optional[PlacementProblem] = field(default=None, init=False, repr=False)
    _placement: Optional[Placement] = field(default=None, init=False, repr=False)
    _model_by_public_name: Dict[str, ModelSpec] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        specs = [get_model(m) if isinstance(m, str) else m for m in self.models]
        if not specs:
            raise ConfigurationError("engine needs at least one model")
        if self.share:
            internal_models = list(specs)
            modules: List[ModuleSpec] = []
            seen = set()
            for model in specs:
                for name in model.module_names:
                    if name not in seen:
                        seen.add(name)
                        modules.append(get_module(name))
        else:
            modules, internal_models = _dedicated_instances(specs)
        self._modules = modules
        self._internal_models = internal_models
        self._model_by_public_name = {
            public.name: internal for public, internal in zip(specs, internal_models)
        }
        device_profiles = tuple(
            device.profile for device in self.cluster.devices.values()
        )
        self._problem = PlacementProblem(
            modules=tuple(modules),
            devices=device_profiles,
            models=tuple(internal_models),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def problem(self) -> PlacementProblem:
        assert self._problem is not None
        return self._problem

    @property
    def placement(self) -> Placement:
        if self._placement is None:
            raise ConfigurationError("call deploy() before using the placement")
        return self._placement

    @property
    def module_specs(self) -> Dict[str, ModuleSpec]:
        return {module.name: module for module in self._modules}

    def resolve_model(self, public_name: str) -> ModelSpec:
        """Map a catalog model name to this engine's (possibly cloned) spec."""
        try:
            return self._model_by_public_name[public_name]
        except KeyError:
            raise ConfigurationError(f"model {public_name!r} is not deployed") from None

    def request(self, model_name: str, arrival_time: float = 0.0, source: Optional[str] = None) -> InferenceRequest:
        """Build a request against this engine's deployed model set."""
        return InferenceRequest(
            model=self.resolve_model(model_name),
            source=source if source is not None else self.cluster.requester,
            arrival_time=arrival_time,
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def plan(self) -> Placement:
        """Compute (and validate) the placement without touching devices."""
        if self.allow_compression:
            self._apply_compression_fallback()
        algorithm = self.placement_algorithm or greedy_placement
        placement = algorithm(self.problem)
        if self.replicate:
            placement = replicate_with_leftover(self.problem, placement)
        check_placement(self.problem, placement)
        return placement

    def _apply_compression_fallback(self) -> None:
        """Quantize any module that fits on no device, then rebuild the problem.

        Implements the paper's Sec. V-B remedy: "if the module cannot be
        loaded on any devices, we can further apply compression ... to make
        the modules more lightweight", then re-run greedy placement with the
        compressed module treated as one unit.
        """
        from repro.core.compression import compress_to_fit

        devices = [device.profile for device in self.cluster.devices.values()]
        largest = max(device.memory_bytes for device in devices)
        renames: Dict[str, ModuleSpec] = {}
        for module in self._modules:
            if module.memory_bytes <= largest:
                continue
            compressed = compress_to_fit(module, devices)
            if compressed is None:
                continue  # placement will raise with the paper's guidance
            renames[module.name] = compressed.spec
        if not renames:
            return
        self._modules = [renames.get(module.name, module) for module in self._modules]
        rewritten = []
        for model in self._internal_models:
            if not any(name in renames for name in model.module_names):
                rewritten.append(model)
                continue
            mapping = {name: renames[name].name for name in model.module_names if name in renames}
            rewritten.append(
                dataclasses.replace(
                    model,
                    encoders=tuple(mapping.get(name, name) for name in model.encoders),
                    head=mapping.get(model.head, model.head),
                    work_scale={mapping.get(k, k): v for k, v in model.work_scale.items()},
                    input_bytes=dict(model.input_bytes),
                )
            )
        self._internal_models = rewritten
        self._model_by_public_name = {
            public: internal
            for public, internal in zip(self._model_by_public_name, rewritten)
        }
        self._problem = PlacementProblem(
            modules=tuple(self._modules),
            devices=tuple(device.profile for device in self.cluster.devices.values()),
            models=tuple(rewritten),
        )

    def deploy(self) -> DeploymentReport:
        """Plan, then load every module onto its host device(s)."""
        placement = self.plan()
        per_device_load: Dict[str, float] = {name: 0.0 for name in self.cluster.devices}
        modules = self.module_specs
        for module_name, hosts in placement.as_dict().items():
            for host in hosts:
                # Loading is serial within a device, parallel across devices.
                per_device_load[host] += self.cluster.device(host).load(modules[module_name])
        self._placement = placement
        per_device_params = {
            name: sum(module.params for module in device.loaded.values())
            for name, device in self.cluster.devices.items()
        }
        return DeploymentReport(
            placement=placement,
            total_params=sum(per_device_params.values()),
            max_device_params=max(per_device_params.values(), default=0),
            per_device_params=per_device_params,
            load_seconds=max(per_device_load.values(), default=0.0),
            per_device_load_seconds=per_device_load,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def latency_model(self) -> LatencyModel:
        return LatencyModel(self.problem, self.cluster.network, parallel=self.parallel)

    def estimate(self, request: InferenceRequest) -> LatencyBreakdown:
        """Analytic single-request latency (Eq. 1-3), no queueing."""
        return self.latency_model().breakdown(request, self.placement)

    def serve(
        self,
        requests: Sequence[InferenceRequest],
        service_noise: Optional[Callable[[str, str], float]] = None,
    ) -> ExecutionResult:
        """Execute requests in the discrete-event cluster (with queueing)."""
        return execute_requests(
            self.cluster,
            self.placement,
            requests,
            self.latency_model(),
            parallel=self.parallel,
            service_noise=service_noise,
        )

    def serve_models(self, model_names: Sequence[str], arrival_time: float = 0.0) -> ExecutionResult:
        """Convenience: one simultaneous request per named model."""
        requests = [self.request(name, arrival_time=arrival_time) for name in model_names]
        return self.serve(requests)


@dataclass(frozen=True)
class InferenceResult:
    """Public result type for one served request (re-exported by repro.core)."""

    model_name: str
    latency: float
    routing: Dict[str, str]
