"""Calibrated hardware and network profiles for the paper's testbed.

- :mod:`repro.profiles.devices` — the five devices of Table III, with
  compute throughputs fitted to the paper's measured module times.
- :mod:`repro.profiles.communication` — PAN/MAN link profiles.
- :mod:`repro.profiles.compute` — the (module, device) compute-time model.
- :mod:`repro.profiles.calibration` — the anchor measurements used to fit
  throughputs, kept as data for the calibration tests.
"""

from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import (
    DEVICE_PROFILES,
    DeviceProfile,
    edge_device_names,
    get_device_profile,
    testbed_device_names,
)
from repro.profiles.communication import LINK_PROFILES, LinkProfile

__all__ = [
    "ComputeModel",
    "DEFAULT_COMPUTE_MODEL",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "edge_device_names",
    "get_device_profile",
    "testbed_device_names",
    "LINK_PROFILES",
    "LinkProfile",
]
