"""The (module, device) compute-time model ``t^comp_{m,n}``.

:class:`ComputeModel` is the single authority both the planner (Algorithm 1
uses ``t^comp`` in Eqs. 5-7) and the discrete-event executor consult, so the
plan and the simulation agree by construction.

Batch scaling follows the paper's footnote 4 (LLaVA-Next-7B: batch sizes
1/10/20 take 1.28/4.90/9.16 s): near-linear with a fixed setup cost, i.e.
``t(b) = setup + b * marginal`` with ``setup ≈ 0.8 * t(1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.profiles.devices import DeviceProfile

#: Fraction of the single-request time that is per-batch setup rather than
#: per-item marginal cost (fitted to footnote 4: 1.28 -> 4.90 -> 9.16 s gives
#: a marginal of ~0.41 s/item on a 1.28 s single request).
BATCH_SETUP_FRACTION = 0.68


@dataclass(frozen=True)
class ComputeModel:
    """Computes per-module service times on devices.

    ``work_scale`` reflects the requesting *model*: a shared text encoder
    does a full prompt-set for retrieval but a single question for VQA
    (see :attr:`repro.core.models.ModelSpec.work_scale`).
    """

    batch_setup_fraction: float = BATCH_SETUP_FRACTION

    def seconds(
        self,
        module: ModuleSpec,
        device: DeviceProfile,
        model: Optional[ModelSpec] = None,
        batch_size: int = 1,
    ) -> float:
        """Service time in seconds for ``batch_size`` requests of ``model``
        on ``module``."""
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        scale = model.scale_for(module.name) if model is not None else 1.0
        single = device.compute_seconds(module, work_scale=scale)
        if batch_size == 1:
            return single
        setup = self.batch_setup_fraction * single
        marginal = single - setup
        return setup + batch_size * marginal

    def fits(self, module: ModuleSpec, device: DeviceProfile) -> bool:
        """Whether the module's weights fit in the device's usable memory."""
        return module.memory_bytes <= device.memory_bytes

    def load_seconds(self, module: ModuleSpec, device: DeviceProfile) -> float:
        """Model-loading time in seconds (the Table VII end-to-end component)."""
        return device.load_seconds(module)


DEFAULT_COMPUTE_MODEL = ComputeModel()
