"""Calibration anchors: paper-reported measurements the profiles are fit to.

These are *data*, consumed by the calibration tests
(``tests/test_profiles_calibration.py``) which assert that the fitted
profiles land within a stated tolerance of each anchor.  Exact equality is
not expected — the paper's numbers are wall-clock measurements on real
hardware over an uncontrolled home network — but the *shape* (orderings and
rough ratios) must hold, and these anchors pin it down.

Sources: Table VI (centralized cloud / local / S2M3 inference times),
Table VII (per-device latency and end-to-end with loading), Table IX
(device-availability ablation), Table X (multi-task sharing), footnotes 1,
2 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Anchor:
    """One paper-reported measurement with a matching tolerance.

    ``rel_tol`` is deliberately loose (default 0.45): the goal is shape
    preservation, not digit matching.
    """

    description: str
    kind: str  # "module_time" | "model_local" | "load_time"
    device: str
    seconds: float
    module: Optional[str] = None
    model: Optional[str] = None
    rel_tol: float = 0.45


#: Module-level compute-time anchors.
MODULE_TIME_ANCHORS: List[Anchor] = [
    Anchor(
        "footnote 2: CLIP ViT-B/16 text prompt-set encode on laptop ~3 s "
        "(Fig. 3 shows 2.06 s for the same step)",
        "module_time", "laptop", 2.06, module="clip-trf-38m", model="clip-vit-b16",
    ),
    Anchor(
        "footnote 2: CLIP ViT-B/16 text prompt-set encode on Jetson ~43 s",
        "module_time", "jetson-a", 43.0, module="clip-trf-38m", model="clip-vit-b16",
    ),
    Anchor(
        "Fig. 3: ViT-B/16 image encode on Jetson ~2.3 s",
        "module_time", "jetson-a", 2.3, module="clip-vit-b16-vision", model="clip-vit-b16",
    ),
]

#: Whole-model local (centralized, single-device) inference anchors, Table VI/VII.
MODEL_LOCAL_ANCHORS: List[Anchor] = [
    Anchor("Table VII: ViT-B/16 local on Jetson", "model_local", "jetson-a", 45.19,
           model="clip-vit-b16"),
    Anchor("Table VII: ViT-B/16 on laptop", "model_local", "laptop", 3.02,
           model="clip-vit-b16"),
    Anchor("Table VII: ViT-B/16 on desktop", "model_local", "desktop", 3.46,
           model="clip-vit-b16"),
    Anchor("Table VII: ViT-B/16 on server w/o GPU", "model_local", "server-cpu", 6.70,
           model="clip-vit-b16"),
    Anchor("Table VI: ViT-B/32 local on Jetson", "model_local", "jetson-a", 44.26,
           model="clip-vit-b32"),
    Anchor("Table VI: ResNet-50 local on Jetson", "model_local", "jetson-a", 53.23,
           model="clip-rn50", rel_tol=0.5),
]

#: Model-loading anchors (footnote 1 and the Table VII end-to-end deltas).
LOAD_TIME_ANCHORS: List[Anchor] = [
    Anchor("footnote 1: CLIP ViT-B/16 load on Tesla P40 = 11.08 s", "load_time",
           "server", 11.08, model="clip-vit-b16"),
    Anchor("Table VII delta: ViT-B/16 load on Jetson ~15.18 s", "load_time",
           "jetson-a", 15.18, model="clip-vit-b16"),
    Anchor("Table VII delta: ViT-B/16 load on laptop ~2.29 s", "load_time",
           "laptop", 2.29, model="clip-vit-b16"),
    Anchor("Table VII delta: ViT-B/16 load on desktop ~1.49 s", "load_time",
           "desktop", 1.49, model="clip-vit-b16"),
]

#: Footnote 4 batch-scaling measurements (LLaVA-Next-7B on an L40S).
BATCH_ANCHORS = [(1, 1.28), (10, 4.90), (20, 9.16)]

ALL_ANCHORS: List[Anchor] = MODULE_TIME_ANCHORS + MODEL_LOCAL_ANCHORS + LOAD_TIME_ANCHORS
