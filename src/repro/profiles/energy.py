"""Energy model (paper Sec. VII future work).

"The power consumption is still one of the key factors for the battery life
of edge devices" — the paper defers it; we provide the model and an
energy-aware placement objective so the trade-off can be studied.

Per device: active power while computing, idle power otherwise, plus a
per-byte radio cost for transfers.  Per-request energy of a placement is
the sum over routed modules of ``active_power * t_comp`` plus the radio
energy of every **actual** transfer:

- the modality input hop ``source -> encoder host``, charged to both radio
  endpoints, and **zero when the encoder is hosted on the source device** —
  the same semantics as :meth:`Network.transfer_seconds`, which returns 0
  for ``src == dst`` (the paper only transmits "if the requester device and
  the device to encode the data are different");
- the embedding hop ``encoder host -> head host`` (Eq. 2's output
  transmission), also charged to both endpoints and free when co-located —
  priced consistently with the latency tensors' ``[N, N]`` embedding
  matrices.

The solvers (:func:`energy_aware_placement`) run on the vectorized energy
tensors (:class:`repro.core.placement.tensors.EnergyTensors`), which replay
these scalar formulas in the same float-operation order, so tensorized
joules are bit-identical to this module's reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.latency import LatencyModel
from repro.utils.errors import ConfigurationError
from repro.utils.seeding import rng_for


@dataclass(frozen=True)
class EnergyProfile:
    """Power characteristics of one device."""

    name: str
    active_watts: float
    idle_watts: float
    radio_nj_per_byte: float  # nanojoules per transmitted/received byte

    def compute_joules(self, seconds: float) -> float:
        """Active-compute energy in joules for ``seconds`` of busy time."""
        return self.active_watts * seconds

    def transfer_joules(self, payload_bytes: int) -> float:
        """Radio energy in joules to move ``payload_bytes`` over the air."""
        return self.radio_nj_per_byte * payload_bytes * 1e-9


#: Typical figures: Jetson Nano ~10 W active; the M3 laptop ~25 W; a desktop
#: i7 ~95 W under load; the P40 server ~250 W; Wi-Fi radios ~100 nJ/B,
#: wired NICs far less.
ENERGY_PROFILES: Dict[str, EnergyProfile] = {
    profile.name: profile
    for profile in [
        EnergyProfile("server", active_watts=250.0, idle_watts=60.0, radio_nj_per_byte=20.0),
        EnergyProfile("server-cpu", active_watts=150.0, idle_watts=50.0, radio_nj_per_byte=20.0),
        EnergyProfile("desktop", active_watts=95.0, idle_watts=20.0, radio_nj_per_byte=25.0),
        EnergyProfile("laptop", active_watts=25.0, idle_watts=3.0, radio_nj_per_byte=100.0),
        EnergyProfile("jetson-a", active_watts=10.0, idle_watts=1.5, radio_nj_per_byte=100.0),
        EnergyProfile("jetson-b", active_watts=10.0, idle_watts=1.5, radio_nj_per_byte=60.0),
        EnergyProfile("l40s", active_watts=350.0, idle_watts=80.0, radio_nj_per_byte=20.0),
    ]
}


def get_energy_profile(name: str) -> EnergyProfile:
    try:
        return ENERGY_PROFILES[name]
    except KeyError:
        raise ConfigurationError(f"no energy profile for device {name!r}") from None


#: Device-name prefix of the synthetic scaling instances
#: (``repro.experiments.scaling`` names its fleet ``dev-00``, ``dev-01``, ...).
SYNTHETIC_DEVICE_PREFIX = "dev-"

#: Derived profiles for the synthetic fleet; cached so repeated resolution
#: returns one object.
_DERIVED_PROFILES: Dict[str, EnergyProfile] = {}


def resolve_energy_profile(name: str) -> EnergyProfile:
    """The device's energy profile.

    The calibrated table covers the paper's testbed; the synthetic scaling
    fleet (:data:`SYNTHETIC_DEVICE_PREFIX` names only) gets a profile
    seeded deterministically from the device *name*, so the same instance
    always prices to the same joules regardless of call order or process.
    Any other unknown name raises :class:`ConfigurationError` — a typo'd
    or stale device name must not silently price against a fabricated
    profile.
    """
    profile = ENERGY_PROFILES.get(name)
    if profile is not None:
        return profile
    if not name.startswith(SYNTHETIC_DEVICE_PREFIX):
        return get_energy_profile(name)  # raises ConfigurationError
    derived = _DERIVED_PROFILES.get(name)
    if derived is None:
        rng = rng_for("energy-profile", name)
        active = float(rng.uniform(8.0, 120.0))
        derived = EnergyProfile(
            name,
            active_watts=active,
            idle_watts=0.15 * active,
            radio_nj_per_byte=float(rng.uniform(20.0, 100.0)),
        )
        _DERIVED_PROFILES[name] = derived
    return derived


def hop_radio_joules(src: str, dst: str, payload_bytes: int) -> float:
    """Radio joules to move ``payload_bytes`` from ``src`` to ``dst``.

    Charged to **both** endpoints (sender TX + receiver RX); zero when the
    endpoints coincide, matching :meth:`Network.transfer_seconds`.
    """
    if src == dst:
        return 0.0
    return resolve_energy_profile(src).transfer_joules(payload_bytes) + (
        resolve_energy_profile(dst).transfer_joules(payload_bytes)
    )


def request_energy_joules(
    request: InferenceRequest,
    placement: Placement,
    latency_model: LatencyModel,
) -> float:
    """Total cluster energy to serve one request under ``placement``.

    Accumulation order (the energy tensors replay it exactly): for each
    encoder path, ``(compute + input radio) + embedding radio``; then the
    head's compute joules.
    """
    routing = latency_model.route(request, placement)
    total = 0.0
    # Resolve against the problem's table so no-sharing clones work too.
    modules = [latency_model.module(name) for name in request.model.module_names]
    head_host = routing.host_of(request.model.head)
    for module in modules:
        host = routing.host_of(module.name)
        profile = resolve_energy_profile(host)
        compute = profile.compute_joules(
            latency_model.compute_seconds(request, module.name, host)
        )
        if module.is_encoder:
            modality = module.modality or "image"
            payload = request.model.payload_bytes(modality)
            path = compute + hop_radio_joules(request.source, host, payload)
            path = path + hop_radio_joules(host, head_host, module.output_bytes)
            total = total + path
        else:
            total = total + compute
    return total


def energy_objective(
    requests: Sequence[InferenceRequest],
    placement: Placement,
    latency_model: LatencyModel,
) -> float:
    """Total joules across a request set — the energy-aware objective."""
    return sum(request_energy_joules(r, placement, latency_model) for r in requests)


def energy_aware_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    latency_budget_factor: float = 1.5,
    solver: str = "auto",
    tensors=None,
) -> Placement:
    """Pick the lowest-energy placement within a latency budget.

    The budget is ``latency_budget_factor`` times the greedy placement's
    latency objective — the battery-life optimization the paper defers to
    future work, made concrete.  Dispatches to
    :func:`repro.core.placement.optimal.energy_optimal_placement`:
    branch-and-bound by default (exact, scales to ~10 modules x ~32
    devices), brute-force enumeration as the oracle (``solver="brute"``).
    Falls back to the greedy baseline when no placement fits the budget.
    """
    from repro.core.placement.greedy import greedy_placement
    from repro.core.placement.optimal import energy_optimal_placement

    if latency_budget_factor <= 0:
        raise ConfigurationError(
            f"latency_budget_factor must be positive, got {latency_budget_factor}"
        )
    net = network if network is not None else Network()
    model = LatencyModel(problem, net, tensors=tensors)
    baseline = greedy_placement(problem)
    budget = latency_budget_factor * model.objective(requests, baseline)
    best, _ = energy_optimal_placement(
        problem,
        requests,
        network=net,
        latency_budget=budget,
        solver=solver,
        tensors=model.tensors,
    )
    return best if best is not None else baseline
