"""Energy model (paper Sec. VII future work).

"The power consumption is still one of the key factors for the battery life
of edge devices" — the paper defers it; we provide the model and an
energy-aware placement objective so the trade-off can be studied.

Per device: active power while computing, idle power otherwise, plus a
per-byte radio cost for transfers.  Per-request energy of a placement is the
sum over routed modules of ``active_power * t_comp`` plus the transfer
energy on both endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.cluster.network import Network
from repro.cluster.requests import InferenceRequest
from repro.core.placement.greedy import greedy_placement
from repro.core.placement.problem import Placement, PlacementProblem
from repro.core.routing.latency import LatencyModel
from repro.utils.errors import ConfigurationError


@dataclass(frozen=True)
class EnergyProfile:
    """Power characteristics of one device."""

    name: str
    active_watts: float
    idle_watts: float
    radio_nj_per_byte: float  # nanojoules per transmitted/received byte

    def compute_joules(self, seconds: float) -> float:
        return self.active_watts * seconds

    def transfer_joules(self, payload_bytes: int) -> float:
        return self.radio_nj_per_byte * payload_bytes * 1e-9


#: Typical figures: Jetson Nano ~10 W active; the M3 laptop ~25 W; a desktop
#: i7 ~95 W under load; the P40 server ~250 W; Wi-Fi radios ~100 nJ/B,
#: wired NICs far less.
ENERGY_PROFILES: Dict[str, EnergyProfile] = {
    profile.name: profile
    for profile in [
        EnergyProfile("server", active_watts=250.0, idle_watts=60.0, radio_nj_per_byte=20.0),
        EnergyProfile("server-cpu", active_watts=150.0, idle_watts=50.0, radio_nj_per_byte=20.0),
        EnergyProfile("desktop", active_watts=95.0, idle_watts=20.0, radio_nj_per_byte=25.0),
        EnergyProfile("laptop", active_watts=25.0, idle_watts=3.0, radio_nj_per_byte=100.0),
        EnergyProfile("jetson-a", active_watts=10.0, idle_watts=1.5, radio_nj_per_byte=100.0),
        EnergyProfile("jetson-b", active_watts=10.0, idle_watts=1.5, radio_nj_per_byte=60.0),
        EnergyProfile("l40s", active_watts=350.0, idle_watts=80.0, radio_nj_per_byte=20.0),
    ]
}


def get_energy_profile(name: str) -> EnergyProfile:
    try:
        return ENERGY_PROFILES[name]
    except KeyError:
        raise ConfigurationError(f"no energy profile for device {name!r}") from None


def request_energy_joules(
    request: InferenceRequest,
    placement: Placement,
    latency_model: LatencyModel,
) -> float:
    """Total cluster energy to serve one request under ``placement``."""
    routing = latency_model.route(request, placement)
    total = 0.0
    # Resolve against the problem's table so no-sharing clones work too.
    modules = [latency_model.module(name) for name in request.model.module_names]
    for module in modules:
        host = routing.host_of(module.name)
        energy = get_energy_profile(host)
        total += energy.compute_joules(
            latency_model.compute_seconds(request, module.name, host)
        )
        if module.is_encoder:
            modality = module.modality or "image"
            payload = request.model.payload_bytes(modality)
            # Radio energy on both the sender and the receiver.
            total += get_energy_profile(request.source).transfer_joules(payload)
            total += energy.transfer_joules(payload)
    return total


def energy_objective(
    requests: Sequence[InferenceRequest],
    placement: Placement,
    latency_model: LatencyModel,
) -> float:
    """Total joules across a request set — the energy-aware objective."""
    return sum(request_energy_joules(r, placement, latency_model) for r in requests)


def energy_aware_placement(
    problem: PlacementProblem,
    requests: Sequence[InferenceRequest],
    network: Optional[Network] = None,
    latency_budget_factor: float = 1.5,
) -> Placement:
    """Pick the lowest-energy placement within a latency budget.

    Enumerates candidates via the brute-force generator when the instance is
    small, constrained to at most ``latency_budget_factor`` times the greedy
    placement's latency — the battery-life optimization the paper defers to
    future work, made concrete.

    Candidate scoring (both the latency-budget filter and the per-request
    energy pricing) runs on the one :class:`LatencyModel` — and therefore on
    one shared set of cost tensors
    (:mod:`repro.core.placement.tensors`) — instead of re-deriving compute
    and transfer times per candidate.
    """
    from repro.core.placement.optimal import enumerate_placements

    net = network if network is not None else Network()
    model = LatencyModel(problem, net)
    baseline = greedy_placement(problem)
    budget = latency_budget_factor * model.objective(requests, baseline)

    best: Optional[Placement] = None
    best_energy = float("inf")
    for candidate in enumerate_placements(problem):
        if model.objective(requests, candidate) > budget:
            continue
        joules = energy_objective(requests, candidate, model)
        if joules < best_energy:
            best, best_energy = candidate, joules
    return best if best is not None else baseline
