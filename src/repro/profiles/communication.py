"""Network link profiles for the PAN/MAN testbed (paper Sec. VI).

The home PAN has a wired desktop + Jetson B and a Wi-Fi laptop + Jetson A,
all behind one router; the server sits across a MAN uplink.  The paper's key
communication facts, which these numbers reproduce:

- intra-PAN transfers are negligible next to compute (Fig. 3: "transmission
  ... nearly invisible");
- reaching the cloud costs noticeably more — residential uplinks are slow,
  so shipping a 150 KB image to the server adds >1 s, which is why the
  centralized-server inference column of Table VI sits near 2.4 s even
  though the P40 computes in under a second;
- per-packet RTT: ~2-5 ms inside the PAN, ~14 ms to the paper's dedicated
  server (the paper notes ChatGPT-class services see 13-15 ms per packet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.utils.errors import ConfigurationError

#: Router node names used by the topology builder.
PAN_ROUTER = "pan-router"
MAN_GATEWAY = "man-gateway"


@dataclass(frozen=True)
class LinkProfile:
    """A point-to-point link: endpoints, bandwidth, one-way latency."""

    a: str
    b: str
    bandwidth_bps: float
    latency_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ConfigurationError(f"link {self.a}-{self.b}: bandwidth must be positive")
        if self.latency_s < 0:
            raise ConfigurationError(f"link {self.a}-{self.b}: latency must be non-negative")

    def transfer_seconds(self, payload_bytes: int) -> float:
        """One-hop transfer time in seconds: propagation + serialization."""
        return self.latency_s + payload_bytes * 8 / self.bandwidth_bps


def _mbps(value: float) -> float:
    return value * 1_000_000


#: The testbed's links.  The MAN uplink (router -> gateway) is the
#: residential bottleneck; the server has a fat pipe to the gateway.
LINK_PROFILES: List[LinkProfile] = [
    LinkProfile("desktop", PAN_ROUTER, _mbps(1000), 0.001),
    LinkProfile("jetson-b", PAN_ROUTER, _mbps(100), 0.001),
    LinkProfile("laptop", PAN_ROUTER, _mbps(160), 0.003),
    LinkProfile("jetson-a", PAN_ROUTER, _mbps(40), 0.003),
    LinkProfile(PAN_ROUTER, MAN_GATEWAY, _mbps(1.0), 0.007),
    LinkProfile("server", MAN_GATEWAY, _mbps(1000), 0.007),
    LinkProfile("server-cpu", MAN_GATEWAY, _mbps(1000), 0.007),
]


def link_table() -> Dict[Tuple[str, str], LinkProfile]:
    """Links keyed by sorted endpoint pair."""
    return {tuple(sorted((link.a, link.b))): link for link in LINK_PROFILES}
