"""Device profiles for the paper's testbed (Table III).

Each profile carries:

- usable memory for model weights (``memory_bytes``): total RAM/VRAM minus
  the OS/runtime reserve.  This is what makes the paper's "–" cells emerge:
  the 4 GB Jetson Nano cannot host monoliths above ~200M fp16 parameters.
- per-(kind, family) compute throughput in work-units/s, **fitted to the
  paper's measurements** (see :mod:`repro.profiles.calibration`), e.g. the
  CLIP text-prompt-set encode takes ~2 s on the laptop but ~43 s on a Jetson
  (footnote 2), and a full ViT-B/16 retrieval pass takes 45.19 s locally on
  the Jetson (Table VII).
- model-loading throughput (bytes/s), fitted to the end-to-end column of
  Table VII (e.g. the P40 server takes 11.08 s to load CLIP ViT-B/16,
  footnote 1).
- ``parallel_slots``: how many modules the device can execute concurrently.
  The GPU server can overlap independent encoder streams; CPU-class edge
  devices serialize module executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Tuple

from repro.core.modules import (
    FAMILY_CNN,
    FAMILY_TRANSFORMER,
    ModuleKind,
    ModuleSpec,
)
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, MB

#: Throughput table keys: (ModuleKind, family). A ``family`` of "*" is the
#: fallback for the kind.
ThroughputKey = Tuple[ModuleKind, str]


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware description of one testbed device."""

    name: str
    description: str
    memory_bytes: int
    throughput: Mapping[ThroughputKey, float]
    load_throughput_bps: float
    parallel_slots: int = 1
    is_cloud: bool = False

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"device {self.name!r}: memory must be positive")
        if self.parallel_slots < 1:
            raise ConfigurationError(f"device {self.name!r}: parallel_slots must be >= 1")
        object.__setattr__(self, "throughput", MappingProxyType(dict(self.throughput)))

    def throughput_for(self, module: ModuleSpec) -> float:
        """Work-units/s this device sustains for ``module``."""
        key = (module.kind, module.family)
        if key in self.throughput:
            return self.throughput[key]
        fallback = (module.kind, "*")
        if fallback in self.throughput:
            return self.throughput[fallback]
        raise ConfigurationError(
            f"device {self.name!r} has no throughput entry for kind={module.kind.value}"
        )

    def compute_seconds(self, module: ModuleSpec, work_scale: float = 1.0) -> float:
        """Pure compute time ``t^comp_{m,n}`` in seconds for one request
        on this device."""
        throughput = self.throughput_for(module)
        if throughput <= 0:
            raise ConfigurationError(f"device {self.name!r}: non-positive throughput")
        return module.work * work_scale / throughput

    def load_seconds(self, module: ModuleSpec) -> float:
        """Time in seconds to load ``module``'s weights into memory on
        this device."""
        if module.memory_bytes == 0:
            return 0.0
        return module.memory_bytes / self.load_throughput_bps


def _tp(
    vit: float,
    cnn: float,
    text: float,
    audio: float,
    llm: float,
    head: float,
) -> Dict[ThroughputKey, float]:
    """Build a throughput table from the six calibrated rates."""
    return {
        (ModuleKind.VISION_ENCODER, FAMILY_TRANSFORMER): vit,
        (ModuleKind.VISION_ENCODER, FAMILY_CNN): cnn,
        (ModuleKind.TEXT_ENCODER, "*"): text,
        (ModuleKind.AUDIO_ENCODER, "*"): audio,
        (ModuleKind.LANGUAGE_MODEL, "*"): llm,
        (ModuleKind.DISTANCE, "*"): head,
        (ModuleKind.CLASSIFIER, "*"): head,
    }


#: The five testbed devices.  Memory: usable fp16 weight budget (Table III
#: RAM/VRAM minus OS + runtime reserve; Jetson's 4.1 GB leaves ~400 MB for
#: weights once L4T, CUDA runtime and activations are accounted for — this
#: reproduces which monoliths the paper marks "–" on the Jetson).
DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    profile.name: profile
    for profile in [
        DeviceProfile(
            name="server",
            description="Intel Xeon Gold 5115 + Tesla P40 (cloud, MAN)",
            memory_bytes=int(22.0 * GB),
            throughput=_tp(vit=190.0, cnn=150.0, text=40.0, audio=100.0, llm=70.0, head=5000.0),
            load_throughput_bps=22.4 * MB,
            parallel_slots=2,
            is_cloud=True,
        ),
        DeviceProfile(
            name="server-cpu",
            description="Xeon server with the GPU disabled (Table VII row)",
            memory_bytes=int(28.0 * GB),
            throughput=_tp(vit=6.0, cnn=5.0, text=11.0, audio=6.0, llm=1.0, head=500.0),
            load_throughput_bps=80.0 * MB,
            parallel_slots=2,
            is_cloud=True,
        ),
        DeviceProfile(
            name="desktop",
            description="Intel i7-13700, 31.7 GB RAM (wired PAN)",
            memory_bytes=int(26.0 * GB),
            # Vision is marginally faster than the laptop's (the i7 wins on
            # image preprocessing + encode), text markedly slower — this is
            # what makes the paper's observed placement (vision on desktop,
            # text on laptop, Table X) come out of Algorithm 1.
            throughput=_tp(vit=26.0, cnn=21.0, text=17.7, audio=21.0, llm=6.0, head=2000.0),
            load_throughput_bps=166.0 * MB,
        ),
        DeviceProfile(
            name="laptop",
            description="Apple M3 Pro, 18 GB RAM (Wi-Fi PAN)",
            memory_bytes=int(14.0 * GB),
            throughput=_tp(vit=24.0, cnn=19.0, text=19.4, audio=20.0, llm=7.0, head=2500.0),
            load_throughput_bps=108.0 * MB,
        ),
        DeviceProfile(
            name="jetson-a",
            description="Jetson Nano 4 GB (Wi-Fi PAN; default requester)",
            memory_bytes=int(400 * MB),
            throughput=_tp(vit=7.6, cnn=0.8, text=0.93, audio=5.0, llm=0.15, head=100.0),
            load_throughput_bps=16.3 * MB,
        ),
        DeviceProfile(
            name="l40s",
            description="NVIDIA L40S (footnote 4's batch-scaling measurements)",
            memory_bytes=int(44.0 * GB),
            throughput=_tp(vit=900.0, cnn=700.0, text=200.0, audio=500.0, llm=550.0, head=20000.0),
            load_throughput_bps=400.0 * MB,
            parallel_slots=4,
            is_cloud=True,
        ),
        DeviceProfile(
            name="jetson-b",
            description="Jetson Nano 4 GB (wired PAN)",
            memory_bytes=int(400 * MB),
            throughput=_tp(vit=7.6, cnn=0.8, text=0.93, audio=5.0, llm=0.15, head=100.0),
            load_throughput_bps=16.3 * MB,
        ),
    ]
}


def get_device_profile(name: str) -> DeviceProfile:
    """Look up a device profile by name."""
    try:
        return DEVICE_PROFILES[name]
    except KeyError:
        raise ConfigurationError(f"unknown device {name!r}") from None


def edge_device_names() -> List[str]:
    """The paper's default S2M3 deployment: the four PAN edge devices."""
    return ["desktop", "laptop", "jetson-b", "jetson-a"]


def testbed_device_names() -> List[str]:
    """All five devices (edge + cloud server), as in Table IX's last row."""
    return ["server", "desktop", "laptop", "jetson-b", "jetson-a"]
