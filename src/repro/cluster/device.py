"""A runtime device: memory ledger + FIFO compute slots inside the simulator.

The compute resource is what produces the paper's shared-module queueing
delay (Table X): two requests needing the same module on a one-slot device
serialize, while the GPU server's two slots let independent encoders overlap.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.models import ModelSpec
from repro.core.modules import ModuleSpec
from repro.profiles.compute import ComputeModel
from repro.profiles.devices import DeviceProfile
from repro.sim import Resource, Simulator, TraceRecorder
from repro.sim.trace import CATEGORY_COMPUTE, CATEGORY_LOADING
from repro.utils.errors import CapacityError


class Device:
    """One emulated device hosting zero or more functional modules."""

    def __init__(
        self,
        sim: Simulator,
        profile: DeviceProfile,
        compute_model: ComputeModel,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.profile = profile
        self.compute_model = compute_model
        self.trace = trace
        self.slots = Resource(sim, capacity=profile.parallel_slots)
        self.loaded: Dict[str, ModuleSpec] = {}
        self._used_bytes = 0
        self._load_offset = 0.0

    @property
    def name(self) -> str:
        return self.profile.name

    # ------------------------------------------------------------------
    # Memory ledger
    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes of module weights currently resident."""
        return self._used_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining usable weight memory."""
        return self.profile.memory_bytes - self._used_bytes

    def can_load(self, module: ModuleSpec) -> bool:
        """Whether ``module`` fits in the remaining memory (idempotent if loaded)."""
        if module.name in self.loaded:
            return True
        return module.memory_bytes <= self.free_bytes

    def hosts(self, module_name: str) -> bool:
        """Whether this device currently hosts ``module_name``."""
        return module_name in self.loaded

    def load(self, module: ModuleSpec) -> float:
        """Admit ``module`` into memory; returns the loading time in seconds.

        Loading is idempotent: re-loading a resident module costs nothing
        (this is exactly the sharing saving — a reused module is already
        there when a new task arrives).
        """
        if module.name in self.loaded:
            return 0.0
        if module.memory_bytes > self.free_bytes:
            raise CapacityError(
                f"device {self.name!r} cannot load {module.name!r}: "
                f"needs {module.memory_bytes} B, {self.free_bytes} B free"
            )
        self.loaded[module.name] = module
        self._used_bytes += module.memory_bytes
        load_time = self.compute_model.load_seconds(module, self.profile)
        if self.trace is not None:
            # Loads serialize within a device (deployment-phase timeline).
            self.trace.record(
                self.name,
                CATEGORY_LOADING,
                f"load {module.name}",
                self._load_offset,
                self._load_offset + load_time,
            )
        self._load_offset += load_time
        return load_time

    def unload(self, module_name: str) -> None:
        """Evict a module (used by reallocation experiments)."""
        module = self.loaded.pop(module_name, None)
        if module is not None:
            self._used_bytes -= module.memory_bytes

    # ------------------------------------------------------------------
    # Simulated execution
    # ------------------------------------------------------------------
    def execute(
        self,
        module: ModuleSpec,
        model: Optional[ModelSpec] = None,
        batch_size: int = 1,
        request_id: Optional[int] = None,
        label: Optional[str] = None,
        category: str = CATEGORY_COMPUTE,
        service_scale: float = 1.0,
    ):
        """Process generator: queue for a compute slot, then compute.

        Yields inside the simulator; returns the *service* time (excluding
        queueing).  Must be driven via ``sim.process`` / ``yield from``.
        ``service_scale`` multiplies the service time (noise injection).
        """
        if not self.hosts(module.name):
            raise CapacityError(f"device {self.name!r} does not host {module.name!r}")
        service = service_scale * self.compute_model.seconds(
            module, self.profile, model=model, batch_size=batch_size
        )
        token = yield self.slots.acquire()
        start = self.sim.now
        try:
            yield self.sim.timeout(service)
        finally:
            self.slots.release(token)
        if self.trace is not None:
            self.trace.record(
                self.name,
                category,
                label or f"{module.name}",
                start,
                self.sim.now,
                request_id=request_id,
            )
        return service

    def compute_seconds(
        self, module: ModuleSpec, model: Optional[ModelSpec] = None, batch_size: int = 1
    ) -> float:
        """Analytic service time (no queueing) — the planner's ``t^comp``."""
        return self.compute_model.seconds(module, self.profile, model=model, batch_size=batch_size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name}, loaded={sorted(self.loaded)})"
