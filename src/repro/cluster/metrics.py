"""Latency statistics for execution results.

The paper reports single latency values averaged over five trials; for the
extension studies (queue-aware routing, batching, churn) tail behaviour
matters, so we provide the usual summary: mean, percentiles, throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.routing.executor import ExecutionResult


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a set of request latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float
    makespan: float

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.count / self.makespan


def summarize(result: ExecutionResult) -> LatencySummary:
    """Summarize an :class:`ExecutionResult`."""
    return summarize_latencies(result.latencies, makespan=result.makespan)


def summarize_latencies(latencies: Sequence[float], makespan: float = 0.0) -> LatencySummary:
    """Summarize raw latency values (any sequence, including numpy arrays)."""
    if len(latencies) == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, makespan)
    array = np.asarray(latencies, dtype=float)
    return LatencySummary(
        count=len(array),
        mean=float(array.mean()),
        p50=float(np.percentile(array, 50)),
        p95=float(np.percentile(array, 95)),
        p99=float(np.percentile(array, 99)),
        maximum=float(array.max()),
        makespan=makespan,
    )


def compare(baseline: LatencySummary, variant: LatencySummary) -> str:
    """One-line human comparison of two summaries."""
    if baseline.mean <= 0:
        return "baseline has no completed requests"
    delta = 100.0 * (variant.mean - baseline.mean) / baseline.mean
    direction = "slower" if delta > 0 else "faster"
    return (
        f"variant mean {variant.mean:.2f}s vs baseline {baseline.mean:.2f}s "
        f"({abs(delta):.1f}% {direction}); p95 {variant.p95:.2f}s vs {baseline.p95:.2f}s"
    )
