"""Edge-cluster emulation: runtime devices, network, deployment, workloads.

This package turns the static :mod:`repro.profiles` into live simulation
objects: a :class:`Device` owns compute slots and a memory ledger inside a
:class:`~repro.sim.Simulator`; the :class:`Network` prices transfers over the
PAN/MAN topology; :class:`EdgeCluster` bundles them; and
:mod:`repro.cluster.requests` generates inference workloads.
"""

from repro.cluster.device import Device
from repro.cluster.network import Network
from repro.cluster.topology import EdgeCluster, build_cluster, build_testbed
from repro.cluster.requests import (
    InferenceRequest,
    poisson_workload,
    sequential_workload,
    simultaneous_workload,
)

__all__ = [
    "Device",
    "Network",
    "EdgeCluster",
    "build_cluster",
    "build_testbed",
    "InferenceRequest",
    "poisson_workload",
    "sequential_workload",
    "simultaneous_workload",
]
