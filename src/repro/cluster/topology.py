"""Cluster assembly: the paper's testbed and custom variants.

:class:`EdgeCluster` bundles a simulator, devices, network and trace
recorder.  :func:`build_testbed` reproduces the Table III deployment with a
chosen device subset (the Table IX availability ablation varies exactly
this), defaulting to the paper's setup: four PAN edge devices with
``jetson-a`` as the requester.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.device import Device
from repro.cluster.network import Network
from repro.profiles.compute import ComputeModel, DEFAULT_COMPUTE_MODEL
from repro.profiles.devices import DeviceProfile, edge_device_names, get_device_profile
from repro.sim import Simulator, TraceRecorder
from repro.utils.errors import ConfigurationError


class EdgeCluster:
    """A set of live devices sharing one simulator and one network."""

    def __init__(
        self,
        devices: Sequence[Device],
        network: Network,
        sim: Simulator,
        requester: str,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        if not devices:
            raise ConfigurationError("a cluster needs at least one device")
        self.sim = sim
        self.network = network
        self.trace = trace if trace is not None else TraceRecorder()
        self.devices: Dict[str, Device] = {device.name: device for device in devices}
        if len(self.devices) != len(devices):
            raise ConfigurationError("duplicate device name in cluster")
        if requester not in self.devices and requester not in network.graph:
            raise ConfigurationError(f"requester {requester!r} is not on the network")
        self.requester = requester

    @property
    def device_names(self) -> List[str]:
        return list(self.devices)

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise ConfigurationError(f"unknown device {name!r} in cluster") from None

    def hosts_of(self, module_name: str) -> List[Device]:
        """Devices currently hosting ``module_name`` (the paper's ``N_m``)."""
        return [device for device in self.devices.values() if device.hosts(module_name)]

    def total_loaded_params(self) -> int:
        """Distinct parameters resident across the cluster (sharing metric)."""
        seen = {}
        for device in self.devices.values():
            for module in device.loaded.values():
                seen[(device.name, module.name)] = module.params
        return sum(seen.values())

    def max_device_params(self) -> int:
        """Largest per-device resident parameter count (split metric)."""
        per_device = [
            sum(module.params for module in device.loaded.values())
            for device in self.devices.values()
        ]
        return max(per_device, default=0)


def build_cluster(
    profiles: Iterable[DeviceProfile],
    requester: str,
    network: Optional[Network] = None,
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> EdgeCluster:
    """Assemble a cluster from explicit device profiles.

    Units carried by the pieces: device ``memory_bytes`` budgets are
    **bytes** of fp16 weights, network link speeds are **bytes/second**,
    and the cluster's simulator clock ticks in **seconds**.  A fresh
    :class:`~repro.sim.Simulator` (clock at 0) is created per call.
    """
    sim = Simulator()
    trace = TraceRecorder()
    net = network if network is not None else Network()
    devices = [Device(sim, profile, compute_model, trace=trace) for profile in profiles]
    return EdgeCluster(devices, net, sim, requester=requester, trace=trace)


def build_testbed(
    device_names: Optional[Sequence[str]] = None,
    requester: str = "jetson-a",
    compute_model: ComputeModel = DEFAULT_COMPUTE_MODEL,
) -> EdgeCluster:
    """The paper's testbed with a chosen device subset.

    Defaults to the four-edge-device PAN deployment (no cloud server) used
    for the headline S2M3 rows; pass
    ``testbed_device_names()`` for the "+ Server" variant of Table IX.
    Device memory budgets are **bytes**, link speeds **bytes/second**, and
    all simulated times **seconds** (see :func:`build_cluster`).
    """
    names = list(device_names) if device_names is not None else edge_device_names()
    if requester not in names:
        # The requester always participates: it holds the input data and can
        # host modules (the paper's Jetson A hosts the audio encoder in
        # Table X's deployment).
        names = names + [requester]
    profiles = [get_device_profile(name) for name in names]
    return build_cluster(profiles, requester=requester)
