"""Inference requests and workload generators.

Requests arrive at the *model* level (paper Sec. V-A): each request names a
model ``k(q)`` and a source device ``n_q`` holding the input data.  The
generators cover the evaluation's arrival patterns: a single request,
simultaneous multi-task bursts (Table X), back-to-back sequences (the
pipelining discussion), and Poisson streams for the queueing studies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

from repro.core.catalog import get_model
from repro.core.models import ModelSpec
from repro.utils.seeding import rng_for

_request_counter = itertools.count()


@dataclass(frozen=True)
class InferenceRequest:
    """One model-level inference request ``q``."""

    model: ModelSpec
    source: str
    arrival_time: float = 0.0
    request_id: int = field(default_factory=lambda: next(_request_counter))

    @staticmethod
    def for_model(model: "ModelSpec | str", source: str, arrival_time: float = 0.0) -> "InferenceRequest":
        spec = get_model(model) if isinstance(model, str) else model
        return InferenceRequest(model=spec, source=source, arrival_time=arrival_time)


def simultaneous_workload(
    models: Sequence["ModelSpec | str"], source: str
) -> List[InferenceRequest]:
    """All requests arrive at t=0 — the Table X multi-task burst."""
    return [InferenceRequest.for_model(model, source, 0.0) for model in models]


def sequential_workload(
    models: Sequence["ModelSpec | str"], source: str, spacing_s: float
) -> List[InferenceRequest]:
    """Requests spaced ``spacing_s`` apart (back-to-back when 0 with FIFO order)."""
    if spacing_s < 0:
        raise ValueError(f"spacing_s must be non-negative, got {spacing_s}")
    return [
        InferenceRequest.for_model(model, source, index * spacing_s)
        for index, model in enumerate(models)
    ]


def poisson_workload(
    models: Sequence["ModelSpec | str"],
    source: str,
    rate_per_s: float,
    count: int,
    seed: int = 0,
) -> List[InferenceRequest]:
    """``count`` requests with exponential inter-arrivals, models round-robin.

    Deterministic given ``seed`` (see :mod:`repro.utils.seeding`).
    """
    if rate_per_s <= 0:
        raise ValueError(f"rate_per_s must be positive, got {rate_per_s}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = rng_for("poisson-workload", seed)
    now = 0.0
    requests = []
    cycle: Iterator = itertools.cycle(models)
    for _ in range(count):
        now += float(rng.exponential(1.0 / rate_per_s))
        requests.append(InferenceRequest.for_model(next(cycle), source, now))
    return requests
