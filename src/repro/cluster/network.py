"""The PAN/MAN network: transfer pricing over the testbed topology.

Transfers are priced analytically (path latency + serialization at the
bottleneck link).  The paper measures communication to be negligible within
the PAN and dominated by the residential MAN uplink, and explicitly notes
that short-term network variation barely moves end-to-end latency
(Sec. VI-C), so we do not model per-link queueing; the optional jitter hook
supports the randomized-trial experiments instead.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.profiles.communication import LINK_PROFILES, LinkProfile
from repro.utils.errors import ConfigurationError


class Network:
    """A weighted undirected graph of devices, routers and links."""

    def __init__(self, links: Optional[Iterable[LinkProfile]] = None) -> None:
        self.graph = nx.Graph()
        self._jitter: Optional[Callable[[str, str], float]] = None
        self._version = 0
        # Bandwidth multipliers for degraded links, keyed by sorted endpoint
        # pair.  0.0 cuts the link (removed from routing entirely); absent
        # means nominal.  Kept separate from the profiles so restoring is
        # exact: the original LinkProfile is never mutated.
        self._degraded: Dict[Tuple[str, str], float] = {}
        for link in links if links is not None else LINK_PROFILES:
            self.add_link(link)
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}

    def add_link(self, link: LinkProfile) -> None:
        """Install a link; endpoints are created implicitly."""
        self.graph.add_edge(link.a, link.b, profile=link, latency=link.latency_s)
        self._path_cache = {}
        self._version += 1

    def set_jitter(self, jitter: Optional[Callable[[str, str], float]]) -> None:
        """Install a multiplicative jitter hook ``(src, dst) -> factor``.

        Used by the randomized placement trials to emulate the paper's
        uncontrolled home-network conditions.
        """
        self._jitter = jitter
        self._version += 1

    @property
    def version(self) -> int:
        """Bumped on every topology or jitter change; cost-tensor caches
        built against this network (see :mod:`repro.core.placement.tensors`)
        compare versions to know when to rebuild."""
        return self._version

    @property
    def has_jitter(self) -> bool:
        """Whether a (possibly stochastic) jitter hook is installed.

        Cost tensors cache transfer prices, which would freeze a random
        jitter draw — pricing falls back to the scalar path while True.
        """
        return self._jitter is not None

    # ------------------------------------------------------------------
    # Link degradation (fault injection)
    # ------------------------------------------------------------------
    @staticmethod
    def _link_key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def has_link(self, a: str, b: str) -> bool:
        """Whether the topology has a direct link between two nodes."""
        return self.graph.has_edge(a, b)

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Scale one link's effective bandwidth by ``factor``.

        ``factor == 0`` **cuts** the link: it disappears from routing, and
        nodes it disconnects become unreachable (``path`` raises, exactly
        like a missing topology edge).  ``factor == 1`` restores nominal.
        The link's latency is unchanged — degradation models contention on
        the pipe, not a longer route.
        """
        if not self.graph.has_edge(a, b):
            raise ConfigurationError(f"cannot degrade unknown link {a!r} <-> {b!r}")
        if not isinstance(factor, (int, float)) or not math.isfinite(factor) or factor < 0:
            raise ValueError(f"link factor must be finite and >= 0, got {factor!r}")
        key = self._link_key(a, b)
        if factor == 1.0:
            self._degraded.pop(key, None)
        else:
            self._degraded[key] = float(factor)
        self._path_cache = {}
        self._version += 1

    def restore_link(self, a: str, b: str) -> None:
        """Return one link to nominal bandwidth (undo :meth:`degrade_link`)."""
        self.degrade_link(a, b, 1.0)

    def link_factor(self, a: str, b: str) -> float:
        """Current bandwidth multiplier for a link (1.0 when nominal)."""
        return self._degraded.get(self._link_key(a, b), 1.0)

    def _routing_graph(self):
        """The graph with cut links removed (views are cheap; only built
        when a cut is actually active)."""
        if not any(f == 0.0 for f in self._degraded.values()):
            return self.graph
        degraded = self._degraded

        def keep(u: str, v: str) -> bool:
            return degraded.get(Network._link_key(u, v), 1.0) > 0.0

        return nx.subgraph_view(self.graph, filter_edge=keep)

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------
    def path(self, src: str, dst: str) -> List[str]:
        """Lowest-latency path between two nodes (cached)."""
        key = (src, dst)
        if key not in self._path_cache:
            if src not in self.graph or dst not in self.graph:
                raise ConfigurationError(f"unknown endpoint in transfer {src!r} -> {dst!r}")
            try:
                self._path_cache[key] = nx.shortest_path(
                    self._routing_graph(), src, dst, weight="latency"
                )
            except nx.NetworkXNoPath:
                raise ConfigurationError(f"no network path {src!r} -> {dst!r}") from None
        return self._path_cache[key]

    def has_path(self, src: str, dst: str) -> bool:
        """Whether a route currently exists (cuts respected)."""
        try:
            self.path(src, dst)
        except ConfigurationError:
            return False
        return True

    def reachable_from(self, src: str) -> Set[str]:
        """All nodes routable from ``src`` under the current cuts."""
        if src not in self.graph:
            raise ConfigurationError(f"unknown node {src!r}")
        return set(nx.node_connected_component(self._routing_graph(), src))

    def path_links(self, src: str, dst: str) -> List[LinkProfile]:
        """The link profiles along the routing path."""
        nodes = self.path(src, dst)
        return [self.graph.edges[a, b]["profile"] for a, b in zip(nodes, nodes[1:])]

    # ------------------------------------------------------------------
    # Transfer pricing
    # ------------------------------------------------------------------
    def transfer_seconds(self, src: str, dst: str, payload_bytes: int) -> float:
        """Time to move ``payload_bytes`` from ``src`` to ``dst``.

        Zero when endpoints coincide (the paper only transmits "if the
        requester device and the device to encode the data are different").
        Cost = sum of per-hop latencies + serialization at the bottleneck.
        """
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        if src == dst:
            return 0.0
        links = self.path_links(src, dst)
        latency = sum(link.latency_s for link in links)
        if not self._degraded:
            bottleneck = min(link.bandwidth_bps for link in links)
        else:
            bottleneck = min(
                link.bandwidth_bps
                * self._degraded.get(self._link_key(link.a, link.b), 1.0)
                for link in links
            )
        seconds = latency + payload_bytes * 8 / bottleneck
        if self._jitter is not None:
            seconds *= self._jitter(src, dst)
        return seconds

    def device_nodes(self) -> List[str]:
        """All non-router nodes."""
        return [node for node in self.graph.nodes if not node.endswith(("-router", "-gateway"))]
