"""The PAN/MAN network: transfer pricing over the testbed topology.

Transfers are priced analytically (path latency + serialization at the
bottleneck link).  The paper measures communication to be negligible within
the PAN and dominated by the residential MAN uplink, and explicitly notes
that short-term network variation barely moves end-to-end latency
(Sec. VI-C), so we do not model per-link queueing; the optional jitter hook
supports the randomized-trial experiments instead.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.profiles.communication import LINK_PROFILES, LinkProfile
from repro.utils.errors import ConfigurationError


class Network:
    """A weighted undirected graph of devices, routers and links."""

    def __init__(self, links: Optional[Iterable[LinkProfile]] = None) -> None:
        self.graph = nx.Graph()
        self._jitter: Optional[Callable[[str, str], float]] = None
        self._version = 0
        for link in links if links is not None else LINK_PROFILES:
            self.add_link(link)
        self._path_cache: Dict[Tuple[str, str], List[str]] = {}

    def add_link(self, link: LinkProfile) -> None:
        """Install a link; endpoints are created implicitly."""
        self.graph.add_edge(link.a, link.b, profile=link, latency=link.latency_s)
        self._path_cache = {}
        self._version += 1

    def set_jitter(self, jitter: Optional[Callable[[str, str], float]]) -> None:
        """Install a multiplicative jitter hook ``(src, dst) -> factor``.

        Used by the randomized placement trials to emulate the paper's
        uncontrolled home-network conditions.
        """
        self._jitter = jitter
        self._version += 1

    @property
    def version(self) -> int:
        """Bumped on every topology or jitter change; cost-tensor caches
        built against this network (see :mod:`repro.core.placement.tensors`)
        compare versions to know when to rebuild."""
        return self._version

    @property
    def has_jitter(self) -> bool:
        """Whether a (possibly stochastic) jitter hook is installed.

        Cost tensors cache transfer prices, which would freeze a random
        jitter draw — pricing falls back to the scalar path while True.
        """
        return self._jitter is not None

    # ------------------------------------------------------------------
    # Path queries
    # ------------------------------------------------------------------
    def path(self, src: str, dst: str) -> List[str]:
        """Lowest-latency path between two nodes (cached)."""
        key = (src, dst)
        if key not in self._path_cache:
            if src not in self.graph or dst not in self.graph:
                raise ConfigurationError(f"unknown endpoint in transfer {src!r} -> {dst!r}")
            try:
                self._path_cache[key] = nx.shortest_path(self.graph, src, dst, weight="latency")
            except nx.NetworkXNoPath:
                raise ConfigurationError(f"no network path {src!r} -> {dst!r}") from None
        return self._path_cache[key]

    def path_links(self, src: str, dst: str) -> List[LinkProfile]:
        """The link profiles along the routing path."""
        nodes = self.path(src, dst)
        return [self.graph.edges[a, b]["profile"] for a, b in zip(nodes, nodes[1:])]

    # ------------------------------------------------------------------
    # Transfer pricing
    # ------------------------------------------------------------------
    def transfer_seconds(self, src: str, dst: str, payload_bytes: int) -> float:
        """Time to move ``payload_bytes`` from ``src`` to ``dst``.

        Zero when endpoints coincide (the paper only transmits "if the
        requester device and the device to encode the data are different").
        Cost = sum of per-hop latencies + serialization at the bottleneck.
        """
        if payload_bytes < 0:
            raise ValueError(f"payload_bytes must be non-negative, got {payload_bytes}")
        if src == dst:
            return 0.0
        links = self.path_links(src, dst)
        latency = sum(link.latency_s for link in links)
        bottleneck = min(link.bandwidth_bps for link in links)
        seconds = latency + payload_bytes * 8 / bottleneck
        if self._jitter is not None:
            seconds *= self._jitter(src, dst)
        return seconds

    def device_nodes(self) -> List[str]:
        """All non-router nodes."""
        return [node for node in self.graph.nodes if not node.endswith(("-router", "-gateway"))]
