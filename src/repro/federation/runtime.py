"""Federation execution: independent per-cluster simulations, one merge.

:class:`FederationRuntime` turns a :class:`~repro.federation.topology.
FederationTopology` into a run:

1. generate each cluster's **local** arrival trace (same workload family,
   per-cluster seed derived from ``("federation-workload", name, seed)``,
   per-cluster diurnal ``phase_offset_s`` modelling its timezone);
2. ask :func:`~repro.federation.router.plan_spillover` for the
   deterministic routing plan (who forwards what, at what WAN price);
3. simulate every cluster **independently** on its routed trace — each is
   a complete single-cluster :class:`~repro.serving.runtime.ServingRuntime`
   run (own devices, placement, faults) — either in-process
   (``parallel=False``, the oracle) or fanned out over a
   :mod:`multiprocessing` pool;
4. :func:`~repro.federation.report.merge_reports` folds the per-cluster
   reports into a validated :class:`~repro.federation.report.
   FederationReport`.

Because routing is decided before simulation and every cluster report is
computed *inside* its own simulation (request ids rebased before they
leave the worker), the merge is a pure function of the cluster reports —
``run(parallel=True)`` and ``run(parallel=False)`` produce bit-identical
federation digests for the same seed.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.federation.report import ClusterReport, FederationReport, merge_reports
from repro.federation.router import (
    SPILLOVER_PAYLOAD_MB,
    SPILLOVER_WINDOW_S,
    ClusterRoute,
    plan_spillover,
)
from repro.federation.topology import FederationTopology
from repro.serving.faults import FaultPlan
from repro.serving.runtime import ServingRuntime
from repro.serving.slo import SLOPolicy
from repro.serving.workload import ArrivalTrace, WorkloadGenerator
from repro.utils.seeding import derive_seed

#: Default model mix every cluster serves.
FEDERATION_MODELS = ("clip-vit-b16", "encoder-vqa-small")


@dataclass(frozen=True)
class ClusterTask:
    """Everything one worker needs to simulate one cluster (picklable).

    Frozen and made of plain data + frozen dataclasses, so the same task
    object drives the in-process oracle and the ``multiprocessing`` pool
    (fork or spawn) identically.
    """

    name: str
    models: Tuple[str, ...]
    device_names: Optional[Tuple[str, ...]]
    route: ClusterRoute
    fault_plan: Optional[FaultPlan]
    slo: Optional[SLOPolicy]
    engine: str


def _simulate_cluster(task: ClusterTask) -> ClusterReport:
    """Run one cluster's serving simulation and summarize it.

    Module-level (not a closure) so :func:`multiprocessing.Pool.map` can
    pickle it.  The summary rebases request ids to the cluster's smallest
    id: the process-global request counter differs between sequential and
    pooled execution, and rebasing is what keeps the per-request digest —
    and therefore the merged federation digest — identical across both.
    """
    runtime = ServingRuntime(
        list(task.models),
        device_names=list(task.device_names) if task.device_names else None,
        slo=task.slo,
        engine=task.engine,
        keep_records=True,
    )
    report = runtime.run(task.route.trace, faults=task.fault_plan)
    records = report.records
    if len(records) != len(task.route.wan_extra_s):
        raise RuntimeError(
            f"cluster {task.name!r} produced {len(records)} records for "
            f"{len(task.route.wan_extra_s)} routed arrivals"
        )
    base = min((r.request_id for r in records), default=0)
    e2e_latencies = []
    slo_met = 0
    rows = []
    for index, record in enumerate(records):
        extra = task.route.wan_extra_s[index]
        e2e = None
        if record.completed:
            e2e = record.latency + extra
            e2e_latencies.append(e2e)
            if e2e <= record.slo_s:
                slo_met += 1
        rows.append(
            (
                record.request_id - base,
                record.model_name,
                record.arrival_time,
                record.finish_time,
                record.slo_s,
                record.rejected_reason,
                record.retries,
                record.timed_out,
                extra,
                e2e,
            )
        )
    digest = hashlib.sha256(repr(rows).encode()).hexdigest()
    return ClusterReport(
        name=task.name,
        workload_kind=task.route.trace.kind,
        seed=task.route.trace.seed,
        duration_s=task.route.trace.duration_s,
        local_arrivals=task.route.local_arrivals,
        forwarded_in=task.route.forwarded_in,
        forwarded_out=task.route.forwarded_out,
        arrivals=report.arrivals,
        admitted=report.admitted,
        rejected=report.rejected,
        completed=report.completed,
        slo_met=slo_met,
        timed_out=report.timed_out,
        retries=report.retries,
        makespan_s=report.latency.makespan,
        e2e_latencies=tuple(e2e_latencies),
        record_digest=digest,
    )


class FederationRuntime:
    """Drives a federation of independently simulated edge clusters.

    Args:
        topology: The validated cluster/WAN graph.
        models: Model names every cluster serves.
        duration_s: Simulated duration in seconds (shared by all clusters).
        workload_kind: ``"poisson"``, ``"bursty"``, or ``"diurnal"``.
        diurnal_period_s / diurnal_amplitude: Diurnal shape (each
            cluster's :attr:`~repro.federation.topology.ClusterSpec.
            phase_offset_s` shifts the phase).
        slo: SLO policy applied identically in every cluster.
        engine: Per-cluster serving engine (``"flat"`` or ``"processes"``).
        spillover: ``False`` disables WAN forwarding — the
            isolated-clusters baseline.
        window_s / payload_mb: Router pricing knobs (see
            :mod:`repro.federation.router`).
    """

    def __init__(
        self,
        topology: FederationTopology,
        *,
        models: Tuple[str, ...] = FEDERATION_MODELS,
        duration_s: float = 120.0,
        workload_kind: str = "diurnal",
        diurnal_period_s: float = 120.0,
        diurnal_amplitude: float = 0.8,
        slo: Optional[SLOPolicy] = None,
        engine: str = "flat",
        spillover: bool = True,
        window_s: float = SPILLOVER_WINDOW_S,
        payload_mb: float = SPILLOVER_PAYLOAD_MB,
    ) -> None:
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        if not models:
            raise ValueError("models must be non-empty")
        self.topology = topology
        self.models = tuple(models)
        self.duration_s = float(duration_s)
        self.workload_kind = workload_kind
        self.diurnal_period_s = float(diurnal_period_s)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.slo = slo
        self.engine = engine
        self.spillover = bool(spillover)
        self.window_s = float(window_s)
        self.payload_mb = float(payload_mb)

    # ------------------------------------------------------------------
    def local_traces(self, seed: int = 0) -> Dict[str, ArrivalTrace]:
        """Each cluster's local arrival trace (before any routing).

        Seeds are derived per cluster name, so adding or renaming one
        cluster never perturbs another's stream.
        """
        traces: Dict[str, ArrivalTrace] = {}
        for name in self.topology.names():
            spec = self.topology.cluster(name)
            traces[name] = WorkloadGenerator(
                list(self.models),
                kind=self.workload_kind,
                rate_rps=spec.rate_rps,
                duration_s=self.duration_s,
                seed=derive_seed("federation-workload", name, seed),
                diurnal_period_s=self.diurnal_period_s,
                diurnal_amplitude=self.diurnal_amplitude,
                phase_offset_s=spec.phase_offset_s,
            ).generate()
        return traces

    def plan(
        self,
        seed: int = 0,
        fault_plans: Optional[Mapping[str, Optional[FaultPlan]]] = None,
    ) -> Dict[str, ClusterRoute]:
        """The deterministic routing plan for this seed (no simulation)."""
        return plan_spillover(
            self.topology,
            self.local_traces(seed),
            fault_plans,
            spillover=self.spillover,
            window_s=self.window_s,
            payload_mb=self.payload_mb,
        )

    def tasks(
        self,
        seed: int = 0,
        fault_plans: Optional[Mapping[str, Optional[FaultPlan]]] = None,
    ) -> Tuple[ClusterTask, ...]:
        """The per-cluster simulation tasks, in sorted-name order."""
        fault_plans = dict(fault_plans or {})
        routes = self.plan(seed, fault_plans)
        out = []
        for name in sorted(routes):
            spec = self.topology.cluster(name)
            out.append(
                ClusterTask(
                    name=name,
                    models=self.models,
                    device_names=spec.device_names,
                    route=routes[name],
                    fault_plan=fault_plans.get(name),
                    slo=self.slo,
                    engine=self.engine,
                )
            )
        return tuple(out)

    def run(
        self,
        seed: int = 0,
        *,
        fault_plans: Optional[Mapping[str, Optional[FaultPlan]]] = None,
        parallel: bool = False,
    ) -> FederationReport:
        """Simulate the federation and return the merged, validated report.

        ``parallel=True`` fans the cluster simulations out over a process
        pool; the sequential mode is the oracle and both produce
        bit-identical reports for the same seed.
        """
        tasks = self.tasks(seed, fault_plans)
        if parallel and len(tasks) > 1:
            workers = min(len(tasks), os.cpu_count() or 1)
            with multiprocessing.Pool(processes=workers) as pool:
                reports = pool.map(_simulate_cluster, tasks)
        else:
            reports = [_simulate_cluster(task) for task in tasks]
        return merge_reports(reports, spillover=self.spillover)
