"""Geo-aware admission and WAN spillover routing for the federation.

The router is a **deterministic admission-time planner**: before any
cluster simulates, it looks at every cluster's local arrival stream, its
fault schedule, and the WAN graph, and decides which arrivals are served
locally and which are forwarded to a remote cluster.  Deciding up front —
instead of with a feedback loop during execution — is what lets the
per-cluster simulations run as fully independent worker processes whose
merged result is bit-identical to the sequential oracle: the routing plan
is a pure function of ``(topology, traces, fault plans)``, so the same
seeds always produce the same forwarding decisions no matter how the
cluster simulations are scheduled.

Mechanics (windowed capacity pricing):

1. Time is cut into ``window_s``-second windows.  A cluster's budget in a
   window is ``capacity_rps * window_s``, scaled by the fraction of its
   device pool alive under its fault plan at the window midpoint — a
   cluster mid-outage offers less and sheds more.
2. Arrivals beyond the budget in a window are *overflow*.  Each overflow
   request is offered to the linked cluster with the most spare budget in
   the window where the request would land (tie-break: smallest WAN
   delay, then name); the forward is charged
   ``latency_s + payload_mb * 8 / bandwidth_mbps`` on the way out and the
   link latency on the response's way back
   (see :mod:`repro.federation.topology`).
3. A forward happens only when the destination has at least one request of
   spare budget and the shifted arrival still lands inside the arrival
   window; otherwise the request stays home and takes its chances in the
   local queue.

The output is one :class:`ClusterRoute` per cluster: the merged arrival
trace (kept locals plus forwarded-ins, time-sorted) with a parallel
per-arrival WAN penalty column, plus the forwarded-in/out accounting that
the federation conservation contract checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.federation.topology import FederationTopology
from repro.profiles.devices import edge_device_names
from repro.serving.churn import FAIL, RECOVER
from repro.serving.faults import FaultPlan
from repro.serving.workload import Arrival, ArrivalTrace

#: Default spillover request payload in megabytes (the input an edge
#: cluster ships to a remote peer: an image or audio clip plus metadata).
SPILLOVER_PAYLOAD_MB = 2.0

#: Default capacity-pricing window in seconds.
SPILLOVER_WINDOW_S = 1.0


@dataclass(frozen=True)
class SpilloverDecision:
    """One forwarded request: origin trace index and the WAN price paid.

    ``departure_s`` is the arrival time at the origin; ``arrival_s`` the
    (later) arrival time at the destination after the forward delay;
    ``extra_s`` the full end-to-end WAN penalty (forward + response
    return) added to the request's latency.
    """

    origin: str
    destination: str
    index: int
    departure_s: float
    arrival_s: float
    extra_s: float


@dataclass(frozen=True)
class ClusterRoute:
    """The routed arrival stream of one cluster.

    ``trace`` merges the kept local arrivals with the forwarded-in ones,
    sorted by time; ``wan_extra_s[i]`` is the end-to-end WAN penalty in
    seconds of ``trace.arrivals[i]`` (0.0 for local arrivals).  The
    counters feed the federation conservation contract:
    ``len(trace) == local_arrivals - forwarded_out + forwarded_in``.
    """

    name: str
    trace: ArrivalTrace
    wan_extra_s: Tuple[float, ...]
    local_arrivals: int
    forwarded_out: int
    forwarded_in: int
    decisions: Tuple[SpilloverDecision, ...] = ()

    def __post_init__(self) -> None:
        if len(self.wan_extra_s) != len(self.trace.arrivals):
            raise ValueError(
                f"wan_extra_s has {len(self.wan_extra_s)} entries for "
                f"{len(self.trace.arrivals)} arrivals"
            )
        if len(self.trace.arrivals) != (
            self.local_arrivals - self.forwarded_out + self.forwarded_in
        ):
            raise ValueError(
                f"cluster {self.name!r} routing lost work: "
                f"{len(self.trace.arrivals)} routed != {self.local_arrivals} "
                f"local - {self.forwarded_out} out + {self.forwarded_in} in"
            )


def live_fraction(
    plan: Optional[FaultPlan], device_names: Sequence[str], at_s: float
) -> float:
    """Fraction of the device pool alive at simulated time ``at_s`` under
    the plan's fail/recover events (slowdowns and link faults do not
    remove capacity here — they degrade it, which the serving run prices).
    """
    if plan is None or not plan.events:
        return 1.0
    pool = list(device_names)
    down = []
    for event in plan.events:
        if event.time > at_s:
            break
        if event.kind == FAIL and event.device in pool and event.device not in down:
            down.append(event.device)
        elif event.kind == RECOVER and event.device in down:
            down.remove(event.device)
    if not pool:
        return 1.0
    return max(0.0, (len(pool) - len(down)) / len(pool))


def _window_budgets(
    topology: FederationTopology,
    traces: Mapping[str, ArrivalTrace],
    fault_plans: Mapping[str, Optional[FaultPlan]],
    window_s: float,
    n_windows: int,
) -> Dict[str, List[float]]:
    """Per-cluster, per-window serving budget in requests (fault-scaled)."""
    budgets: Dict[str, List[float]] = {}
    for name in sorted(traces):
        spec = topology.cluster(name)
        devices = (
            list(spec.device_names) if spec.device_names is not None
            else edge_device_names()
        )
        plan = fault_plans.get(name)
        budgets[name] = [
            spec.capacity_rps * window_s
            * live_fraction(plan, devices, (w + 0.5) * window_s)
            for w in range(n_windows)
        ]
    return budgets


def plan_spillover(
    topology: FederationTopology,
    traces: Mapping[str, ArrivalTrace],
    fault_plans: Optional[Mapping[str, Optional[FaultPlan]]] = None,
    *,
    spillover: bool = True,
    window_s: float = SPILLOVER_WINDOW_S,
    payload_mb: float = SPILLOVER_PAYLOAD_MB,
) -> Dict[str, ClusterRoute]:
    """Compute the federation routing plan: one :class:`ClusterRoute` per
    cluster, a pure deterministic function of its inputs.

    ``traces`` maps every cluster name to its *local* arrival trace (all
    traces must share one duration).  ``spillover=False`` short-circuits
    to identity routes — the isolated-clusters baseline the benchmark
    gates against.  Returns a dict keyed by cluster name (iterate it
    sorted; insertion order is already sorted-name order).
    """
    if window_s <= 0 or not math.isfinite(window_s):
        raise ValueError(f"window_s must be positive and finite, got {window_s}")
    names = sorted(traces)
    if set(names) != set(topology.names()):
        raise ValueError(
            f"traces cover {names}, topology declares {sorted(topology.names())}"
        )
    fault_plans = dict(fault_plans or {})
    for name in sorted(fault_plans):
        if name not in traces:
            raise ValueError(f"fault plan for unknown cluster {name!r}")
    durations = {traces[name].duration_s for name in names}
    if len(durations) != 1:
        raise ValueError(f"all cluster traces must share one duration, got {durations}")
    duration_s = durations.pop()

    if not spillover:
        return {
            name: ClusterRoute(
                name=name,
                trace=traces[name],
                wan_extra_s=tuple(0.0 for _ in traces[name].arrivals),
                local_arrivals=len(traces[name].arrivals),
                forwarded_out=0,
                forwarded_in=0,
            )
            for name in names
        }

    n_windows = max(1, int(math.ceil(duration_s / window_s)))
    budgets = _window_budgets(topology, traces, fault_plans, window_s, n_windows)
    # Occupancy starts as each cluster's local per-window arrival counts and
    # is updated as forwards leave/land, so later decisions see earlier ones.
    occupancy: Dict[str, List[int]] = {name: [0] * n_windows for name in names}
    for name in names:
        for arrival in traces[name].arrivals:
            w = min(n_windows - 1, int(arrival.time / window_s))
            occupancy[name][w] += 1

    decisions: Dict[str, List[SpilloverDecision]] = {name: [] for name in names}
    forwarded_out_idx: Dict[str, set] = {name: set() for name in names}
    # Window-major, cluster-minor (sorted): the deterministic decision order.
    for w in range(n_windows):
        for name in names:
            budget = int(math.floor(budgets[name][w] + 1e-9))
            overflow = occupancy[name][w] - budget
            if overflow <= 0:
                continue
            # The *latest* arrivals of the window overflow (the earliest
            # fill the local budget) — scan the window's arrivals once.
            window_arrivals = [
                (index, arrival)
                for index, arrival in enumerate(traces[name].arrivals)
                if min(n_windows - 1, int(arrival.time / window_s)) == w
                and index not in forwarded_out_idx[name]
            ]
            for index, arrival in window_arrivals[-overflow:] if overflow < len(
                window_arrivals
            ) else window_arrivals:
                choice = None
                for peer in topology.neighbors(name):
                    delay = topology.wan_delay_s(name, peer, payload_mb)
                    lands_at = arrival.time + delay
                    if lands_at >= duration_s:
                        continue
                    peer_w = min(n_windows - 1, int(lands_at / window_s))
                    spare = (
                        int(math.floor(budgets[peer][peer_w] + 1e-9))
                        - occupancy[peer][peer_w]
                    )
                    if spare < 1:
                        continue
                    candidate = (-spare, delay, peer, peer_w, lands_at)
                    if choice is None or candidate < choice:
                        choice = candidate
                if choice is None:
                    continue
                _neg_spare, delay, peer, peer_w, lands_at = choice
                occupancy[name][w] -= 1
                occupancy[peer][peer_w] += 1
                forwarded_out_idx[name].add(index)
                decisions[name].append(
                    SpilloverDecision(
                        origin=name,
                        destination=peer,
                        index=index,
                        departure_s=arrival.time,
                        arrival_s=lands_at,
                        extra_s=delay + topology.return_delay_s(name, peer),
                    )
                )

    # Assemble the merged per-cluster routes.
    routes: Dict[str, ClusterRoute] = {}
    inbound: Dict[str, List[SpilloverDecision]] = {name: [] for name in names}
    for name in names:
        for decision in decisions[name]:
            inbound[decision.destination].append(decision)
    for name in names:
        kept = [
            (arrival.time, arrival.model_name, 0.0)
            for index, arrival in enumerate(traces[name].arrivals)
            if index not in forwarded_out_idx[name]
        ]
        landed = [
            (
                decision.arrival_s,
                traces[decision.origin].arrivals[decision.index].model_name,
                decision.extra_s,
            )
            for decision in sorted(
                inbound[name], key=lambda d: (d.arrival_s, d.origin, d.index)
            )
        ]
        # Stable sort over a deterministic pre-order (locals in trace order,
        # then inbound by arrival) keeps exact-tie ordering reproducible.
        merged = sorted(kept + landed, key=lambda row: row[0])
        routes[name] = ClusterRoute(
            name=name,
            trace=ArrivalTrace(
                arrivals=tuple(Arrival(time=t, model_name=m) for t, m, _ in merged),
                duration_s=duration_s,
                kind=traces[name].kind,
                seed=traces[name].seed,
            ),
            wan_extra_s=tuple(extra for _, _, extra in merged),
            local_arrivals=len(traces[name].arrivals),
            forwarded_out=len(decisions[name]),
            forwarded_in=len(inbound[name]),
            decisions=tuple(decisions[name]),
        )
    return routes
