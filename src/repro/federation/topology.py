"""Federation topology: named edge clusters behind priced WAN links.

A federation is a set of **named edge clusters** — each one a full
single-cluster deployment (its own devices, Table III topology, and
placement solved by the existing per-cluster solvers) — joined by **WAN
links** that price cross-cluster forwarding.  Everything here is static,
validated configuration; the routing decisions live in
:mod:`repro.federation.router` and the execution in
:mod:`repro.federation.runtime`.

WAN cost model (all times **seconds**, payloads **megabytes**, bandwidth
**megabits per second**):

- forwarding a request of ``payload_mb`` over a link costs
  ``latency_s + payload_mb * 8 / bandwidth_mbps`` — propagation plus
  serialization, charged once on the forward path;
- the response returns over the same link; responses are small (an answer,
  not an embedding), so the return trip is charged ``latency_s`` only.

Clusters are identified by name; WAN links are undirected and unique per
cluster pair.  A cluster pair without a link simply cannot exchange
spillover (the router never considers it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Frozen default for a cluster's timezone shift (seconds): no shift.
_ZERO_OFFSET_S = 0.0


def _require_finite_positive(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be positive and finite, got {value}")
    return value


@dataclass(frozen=True)
class ClusterSpec:
    """One named edge cluster of the federation.

    Args:
        name: Unique cluster name (sorted name order is the federation's
            canonical iteration order everywhere).
        rate_rps: Nominal local arrival rate in requests/second (the
            cluster's own user population).
        capacity_rps: Serving capacity in requests/second the admission
            router prices against — what the cluster sustains healthy;
            faults scale it by the live-device fraction.
        phase_offset_s: Timezone shift in seconds applied to the diurnal
            arrival process (see
            :class:`~repro.serving.workload.WorkloadGenerator`).
        region: Optional human label (e.g. ``"us-west"``'s region tag).
        device_names: Devices forming the cluster's pool; ``None`` uses
            the paper's four-edge-device testbed.
    """

    name: str
    rate_rps: float
    capacity_rps: float
    phase_offset_s: float = _ZERO_OFFSET_S
    region: str = ""
    device_names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"cluster name must be a non-empty string, got {self.name!r}")
        _require_finite_positive("rate_rps", self.rate_rps)
        _require_finite_positive("capacity_rps", self.capacity_rps)
        if not math.isfinite(self.phase_offset_s):
            raise ValueError(f"phase_offset_s must be finite, got {self.phase_offset_s}")
        if self.device_names is not None and not self.device_names:
            raise ValueError("device_names must be None or non-empty")


@dataclass(frozen=True)
class WanLink:
    """An undirected WAN link between two clusters.

    ``latency_s`` is the one-way propagation delay in seconds;
    ``bandwidth_mbps`` the link rate in megabits per second.
    """

    a: str
    b: str
    latency_s: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if not self.a or not self.b or self.a == self.b:
            raise ValueError(
                f"a WAN link needs two distinct cluster names, got {self.a!r}<->{self.b!r}"
            )
        _require_finite_positive("latency_s", self.latency_s)
        _require_finite_positive("bandwidth_mbps", self.bandwidth_mbps)

    @property
    def key(self) -> Tuple[str, str]:
        """Canonical unordered endpoint pair (sorted names)."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)


@dataclass(frozen=True)
class FederationTopology:
    """The validated federation graph: clusters plus WAN links."""

    clusters: Tuple[ClusterSpec, ...]
    links: Tuple[WanLink, ...] = ()
    _by_name: Dict[str, ClusterSpec] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _link_by_pair: Dict[Tuple[str, str], WanLink] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if len(self.clusters) < 1:
            raise ValueError("a federation needs at least one cluster")
        by_name: Dict[str, ClusterSpec] = {}
        for spec in self.clusters:
            if spec.name in by_name:
                raise ValueError(f"duplicate cluster name {spec.name!r}")
            by_name[spec.name] = spec
        link_by_pair: Dict[Tuple[str, str], WanLink] = {}
        for link in self.links:
            for endpoint in link.key:
                if endpoint not in by_name:
                    raise ValueError(
                        f"WAN link {link.a!r}<->{link.b!r} references unknown "
                        f"cluster {endpoint!r}"
                    )
            if link.key in link_by_pair:
                raise ValueError(f"duplicate WAN link {link.key[0]!r}<->{link.key[1]!r}")
            link_by_pair[link.key] = link
        object.__setattr__(self, "_by_name", by_name)
        object.__setattr__(self, "_link_by_pair", link_by_pair)

    # ------------------------------------------------------------------
    def names(self) -> Tuple[str, ...]:
        """Cluster names in canonical (sorted) order."""
        return tuple(sorted(self._by_name))

    def cluster(self, name: str) -> ClusterSpec:
        """Look up a cluster spec by name (raises ``KeyError`` if unknown)."""
        return self._by_name[name]

    def link(self, a: str, b: str) -> Optional[WanLink]:
        """The WAN link between two clusters, or ``None`` if unlinked."""
        return self._link_by_pair.get((a, b) if a <= b else (b, a))

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """Clusters directly linked to ``name``, in sorted order."""
        if name not in self._by_name:
            raise KeyError(name)
        out = []
        for key in sorted(self._link_by_pair):
            if name in key:
                out.append(key[0] if key[1] == name else key[1])
        return tuple(sorted(out))

    def wan_delay_s(self, a: str, b: str, payload_mb: float) -> float:
        """Forward-path delay in **seconds** for shipping ``payload_mb``
        megabytes from cluster ``a`` to ``b``: link latency plus payload
        serialization (``payload_mb * 8 / bandwidth_mbps``).

        Raises :class:`ValueError` when the clusters are not linked or the
        payload is negative/non-finite.
        """
        link = self.link(a, b)
        if link is None:
            raise ValueError(f"no WAN link between {a!r} and {b!r}")
        payload_mb = float(payload_mb)
        if not math.isfinite(payload_mb) or payload_mb < 0:
            raise ValueError(f"payload_mb must be non-negative and finite, got {payload_mb}")
        return link.latency_s + payload_mb * 8.0 / link.bandwidth_mbps

    def return_delay_s(self, a: str, b: str) -> float:
        """Response return delay in **seconds** between two linked clusters
        (propagation only: responses are answers, not payloads)."""
        link = self.link(a, b)
        if link is None:
            raise ValueError(f"no WAN link between {a!r} and {b!r}")
        return link.latency_s
