"""Multi-cluster WAN federation over the single-cluster serving stack.

Named edge clusters — each a full single-cluster deployment with its own
devices, topology, placement, and faults — sit behind a federation router
that prices WAN links and forwards overload to linked peers.  The package
splits cleanly by responsibility:

- :mod:`~repro.federation.topology` — validated cluster specs, WAN links,
  and the WAN cost model;
- :mod:`~repro.federation.router` — the deterministic admission/spillover
  planner (pure function of traces + faults + topology);
- :mod:`~repro.federation.runtime` — independent per-cluster simulations,
  sequential (oracle) or multiprocess, over the routed traces;
- :mod:`~repro.federation.report` — per-cluster and merged reports, the
  cross-cluster conservation contract, and the run digest.

See ``docs/federation.md`` for the cost model, spillover semantics, and
the merge contract in prose.
"""

from repro.federation.report import ClusterReport, FederationReport, merge_reports
from repro.federation.router import (
    SPILLOVER_PAYLOAD_MB,
    SPILLOVER_WINDOW_S,
    ClusterRoute,
    SpilloverDecision,
    live_fraction,
    plan_spillover,
)
from repro.federation.runtime import (
    FEDERATION_MODELS,
    ClusterTask,
    FederationRuntime,
)
from repro.federation.topology import ClusterSpec, FederationTopology, WanLink

__all__ = [
    "SPILLOVER_PAYLOAD_MB",
    "SPILLOVER_WINDOW_S",
    "FEDERATION_MODELS",
    "ClusterReport",
    "ClusterRoute",
    "ClusterSpec",
    "ClusterTask",
    "FederationReport",
    "FederationRuntime",
    "FederationTopology",
    "SpilloverDecision",
    "WanLink",
    "live_fraction",
    "merge_reports",
    "plan_spillover",
]
