"""Federation reporting: per-cluster summaries and the merged contract.

A federation run produces one :class:`ClusterReport` per cluster —
computed *inside* the cluster's own (possibly separate-process) simulation
from its :class:`~repro.serving.report.ServingReport` — and
:func:`merge_reports` folds them into a :class:`FederationReport`.  The
merge is a pure function of the sorted cluster reports, which is the whole
trick behind ``merge(parallel) == merge(sequential)``: whatever process
produced a :class:`ClusterReport`, identical inputs give identical bytes.

The merge enforces the **cross-cluster conservation contract** and raises
:class:`RuntimeError` (never a warning) when it fails:

- per cluster: ``arrivals == local_arrivals - forwarded_out +
  forwarded_in`` and ``completed + rejected + timed_out == arrivals``;
- globally: ``sum(completed + rejected + timed_out + forwarded_out -
  forwarded_in) == sum(local_arrivals)`` — no request is created or lost
  by crossing the WAN.

End-to-end latency of a forwarded request is its serving latency plus the
WAN penalty (forward + return, priced in
:mod:`repro.federation.topology`); SLO attainment and goodput are judged
on that end-to-end number.  Makespans are local serving makespans (the
response's WAN return leg shifts when the *user* sees the answer but keeps
no cluster busy, so it is priced into latency, not makespan).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.cluster.metrics import LatencySummary, summarize_latencies


@dataclass(frozen=True)
class ClusterReport:
    """One cluster's share of a federation run (picklable, process-safe).

    ``e2e_latencies`` are end-to-end seconds (serving latency plus WAN
    penalty for forwarded-in requests) of completed requests, in record
    order.  ``record_digest`` pins the full per-request outcome stream
    with request ids rebased to the cluster's first id, so reports built
    in different worker processes compare bit-for-bit.
    """

    name: str
    workload_kind: str
    seed: int
    duration_s: float
    local_arrivals: int
    forwarded_in: int
    forwarded_out: int
    arrivals: int
    admitted: int
    rejected: int
    completed: int
    slo_met: int
    timed_out: int
    retries: int
    makespan_s: float
    e2e_latencies: Tuple[float, ...]
    record_digest: str

    def validate(self) -> None:
        """Enforce this cluster's conservation rows (RuntimeError on loss)."""
        if self.arrivals != self.local_arrivals - self.forwarded_out + self.forwarded_in:
            raise RuntimeError(
                f"cluster {self.name!r} violated routing conservation: "
                f"{self.arrivals} arrivals != {self.local_arrivals} local "
                f"- {self.forwarded_out} out + {self.forwarded_in} in"
            )
        if self.completed + self.rejected + self.timed_out != self.arrivals:
            raise RuntimeError(
                f"cluster {self.name!r} lost requests: {self.completed} completed "
                f"+ {self.rejected} rejected + {self.timed_out} timed out "
                f"!= {self.arrivals} arrivals"
            )

    @property
    def goodput_rps(self) -> float:
        """Requests/second completed within SLO, end-to-end."""
        elapsed = max(self.duration_s, self.makespan_s)
        return self.slo_met / elapsed if elapsed > 0 else 0.0


@dataclass(frozen=True)
class FederationReport:
    """The merged outcome of one federation run.

    ``clusters`` is always in sorted-name order; ``latency`` summarizes
    the concatenated end-to-end latencies of all clusters.
    """

    clusters: Tuple[ClusterReport, ...]
    spillover: bool
    latency: LatencySummary

    @property
    def local_arrivals(self) -> int:
        return sum(c.local_arrivals for c in self.clusters)

    @property
    def forwarded(self) -> int:
        return sum(c.forwarded_out for c in self.clusters)

    @property
    def completed(self) -> int:
        return sum(c.completed for c in self.clusters)

    @property
    def rejected(self) -> int:
        return sum(c.rejected for c in self.clusters)

    @property
    def timed_out(self) -> int:
        return sum(c.timed_out for c in self.clusters)

    @property
    def slo_met(self) -> int:
        return sum(c.slo_met for c in self.clusters)

    @property
    def elapsed_s(self) -> float:
        return max(
            max(c.duration_s for c in self.clusters),
            max(c.makespan_s for c in self.clusters),
        )

    @property
    def goodput_rps(self) -> float:
        """Federation-wide requests/second completed within end-to-end SLO."""
        elapsed = self.elapsed_s
        return self.slo_met / elapsed if elapsed > 0 else 0.0

    @property
    def slo_attainment(self) -> float:
        return self.slo_met / self.completed if self.completed else 0.0

    def cluster(self, name: str) -> ClusterReport:
        for report in self.clusters:
            if report.name == name:
                return report
        raise KeyError(name)

    def validate(self) -> None:
        """Enforce the cross-cluster conservation contract.

        Raises :class:`RuntimeError` when any cluster row or the global
        ledger does not balance — lost or double-counted work is a bug,
        never a statistic.
        """
        for report in self.clusters:
            report.validate()
        ledger = sum(
            c.completed + c.rejected + c.timed_out + c.forwarded_out - c.forwarded_in
            for c in self.clusters
        )
        if ledger != self.local_arrivals:
            raise RuntimeError(
                f"federation lost requests across the WAN: ledger {ledger} "
                f"!= {self.local_arrivals} local arrivals"
            )
        out = sum(c.forwarded_out for c in self.clusters)
        into = sum(c.forwarded_in for c in self.clusters)
        if out != into:
            raise RuntimeError(
                f"federation forwarding does not balance: {out} forwarded out "
                f"!= {into} forwarded in"
            )

    def digest(self) -> str:
        """A stable content hash of the full merged outcome.

        Two runs are *the same run* iff their digests match; this is what
        the parallel-vs-sequential bit-identity gate compares.
        """
        parts = [repr(self.spillover), repr(self.latency)]
        for c in self.clusters:
            parts.append(
                repr(
                    (
                        c.name, c.workload_kind, c.seed, c.duration_s,
                        c.local_arrivals, c.forwarded_in, c.forwarded_out,
                        c.arrivals, c.admitted, c.rejected, c.completed,
                        c.slo_met, c.timed_out, c.retries, c.makespan_s,
                        c.e2e_latencies, c.record_digest,
                    )
                )
            )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def render(self) -> str:
        """Human-readable per-cluster and federation-wide summary."""
        lines = [
            f"federation run — {len(self.clusters)} clusters, "
            f"spillover {'on' if self.spillover else 'off'}",
            f"  {'cluster':<12} {'local':>6} {'in':>5} {'out':>5} "
            f"{'done':>6} {'slo':>6} {'rej':>5} {'t/o':>5} {'goodput':>8}",
        ]
        for c in self.clusters:
            lines.append(
                f"  {c.name:<12} {c.local_arrivals:>6} {c.forwarded_in:>5} "
                f"{c.forwarded_out:>5} {c.completed:>6} {c.slo_met:>6} "
                f"{c.rejected:>5} {c.timed_out:>5} {c.goodput_rps:>8.3f}"
            )
        lines.append(
            f"  total: {self.local_arrivals} local arrivals, "
            f"{self.forwarded} forwarded, {self.completed} completed, "
            f"goodput {self.goodput_rps:.3f} rps, "
            f"e2e p95 {self.latency.p95 * 1000.0:.1f} ms, "
            f"slo attainment {self.slo_attainment:.3f}"
        )
        return "\n".join(lines)


def merge_reports(
    reports: Sequence[ClusterReport], *, spillover: bool
) -> FederationReport:
    """Fold per-cluster reports into a validated :class:`FederationReport`.

    A pure function of its inputs: cluster reports are sorted by name, the
    end-to-end latencies concatenated in that order, and the conservation
    contract checked before the report is returned.  Duplicate cluster
    names raise :class:`ValueError`; conservation violations raise
    :class:`RuntimeError`.
    """
    if not reports:
        raise ValueError("merge_reports needs at least one cluster report")
    ordered = tuple(sorted(reports, key=lambda r: r.name))
    names = [r.name for r in ordered]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate cluster names in merge: {names}")
    latencies: list = []
    for report in ordered:
        latencies.extend(report.e2e_latencies)
    merged = FederationReport(
        clusters=ordered,
        spillover=spillover,
        latency=summarize_latencies(
            latencies, makespan=max(r.makespan_s for r in ordered)
        ),
    )
    merged.validate()
    return merged
