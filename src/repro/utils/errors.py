"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid specification: unknown model, malformed topology, etc."""


class CapacityError(ReproError):
    """A device (or the whole cluster) lacks resources for a request."""


class PlacementError(ReproError):
    """No feasible placement exists for the given modules and devices."""


class RoutingError(ReproError):
    """A request cannot be routed, e.g. a required module is unplaced."""
