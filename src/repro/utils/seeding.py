"""Deterministic seeding helpers.

Every stochastic component (synthetic weights, synthetic datasets, randomized
trials) derives its RNG from a *name* so results are reproducible regardless
of call order.  We hash names with a stable (non-salted) digest rather than
``hash()``, which is randomized per interpreter run.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(*parts: object, base_seed: int = 0) -> int:
    """Derive a stable 63-bit seed from ``parts`` and a base seed.

    Parts are stringified and joined, so ``derive_seed("vit-b16", 3)`` is
    stable across processes and platforms.
    """
    text = "\x1f".join(str(part) for part in parts) + f"\x1f{base_seed}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & _MASK_63


def rng_for(*parts: object, base_seed: int = 0) -> np.random.Generator:
    """A :class:`numpy.random.Generator` seeded deterministically from ``parts``."""
    return np.random.default_rng(derive_seed(*parts, base_seed=base_seed))
