"""Shared utilities: errors, units, deterministic seeding."""

from repro.utils.errors import (
    CapacityError,
    ConfigurationError,
    PlacementError,
    ReproError,
    RoutingError,
)
from repro.utils.seeding import derive_seed, rng_for
from repro.utils.units import (
    GB,
    KB,
    MB,
    format_bytes,
    format_params,
    format_seconds,
    million,
    params_to_bytes,
)

__all__ = [
    "CapacityError",
    "ConfigurationError",
    "PlacementError",
    "ReproError",
    "RoutingError",
    "derive_seed",
    "rng_for",
    "GB",
    "KB",
    "MB",
    "format_bytes",
    "format_params",
    "format_seconds",
    "million",
    "params_to_bytes",
]
