"""Unit helpers: bytes, parameter counts, and human-readable formatting.

The paper reports module sizes in parameters (Table V) and device memory in
GB (Table III).  Throughout the library, parameter counts are plain ints and
memory sizes are bytes (ints); these helpers convert and pretty-print both.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Bytes per parameter for fp16 checkpoints, the paper's deployment format.
BYTES_PER_PARAM_FP16: int = 2
#: Bytes per parameter for fp32 checkpoints.
BYTES_PER_PARAM_FP32: int = 4


def million(value: float) -> int:
    """Return ``value`` millions as an integer count (e.g. ``million(86) == 86_000_000``)."""
    return int(round(value * 1_000_000))


def billion(value: float) -> int:
    """Return ``value`` billions as an integer count."""
    return int(round(value * 1_000_000_000))


def params_to_bytes(params: int, bytes_per_param: float = BYTES_PER_PARAM_FP16) -> int:
    """Memory footprint of a module with ``params`` parameters.

    The paper's memory constraint (Eq. 4d) is expressed in module memory
    requirements ``r_m``; we model those as checkpoint bytes plus a small
    activation head-room factor folded into the device capacities instead.
    """
    if params < 0:
        raise ValueError(f"params must be non-negative, got {params}")
    return int(params * bytes_per_param)


def format_params(params: int) -> str:
    """Human-readable parameter count, matching the paper's style (38M, 1.1B)."""
    if params < 0:
        raise ValueError(f"params must be non-negative, got {params}")
    if params >= 1_000_000_000:
        return f"{params / 1_000_000_000:.1f}B"
    if params >= 1_000_000:
        return f"{params / 1_000_000:.0f}M"
    if params >= 1_000:
        return f"{params / 1_000:.0f}K"
    return str(params)


def format_bytes(size: int) -> str:
    """Human-readable byte size (binary units)."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if size >= GB:
        return f"{size / GB:.1f} GB"
    if size >= MB:
        return f"{size / MB:.1f} MB"
    if size >= KB:
        return f"{size / KB:.1f} KB"
    return f"{size} B"


def format_seconds(seconds: float) -> str:
    """Latency formatting used by the experiment reports (two decimals)."""
    return f"{seconds:.2f}s"
