"""Finding and result types for the invariant linter.

A :class:`Finding` is one rule violation at one source location; a
:class:`LintResult` is everything one :func:`repro.analysis.runner.run_lint`
pass produced — surviving findings, pragma-suppressed findings (kept for
the JSON report so suppressions stay auditable), and scan bookkeeping.

The JSON schema (``--format json``) is versioned and covered by the
self-test suite; bump :data:`JSON_SCHEMA_VERSION` on any shape change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

#: Version stamp of the ``--format json`` report shape.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is POSIX-style and relative to the linted root, so reports are
    stable across machines and CI runners.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True, order=True)
class SuppressedFinding:
    """A finding silenced by a reasoned pragma (kept for the report)."""

    finding: Finding
    reason: str

    def to_json(self) -> Dict[str, object]:
        payload = self.finding.to_json()
        payload["reason"] = self.reason
        return payload


@dataclass
class LintResult:
    """Everything one lint pass produced."""

    root: Path
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[SuppressedFinding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: Dict[str, str] = field(default_factory=dict)  # id -> name

    @property
    def ok(self) -> bool:
        return not self.findings

    def render_text(self) -> str:
        lines = [finding.render() for finding in sorted(self.findings)]
        count = len(self.findings)
        noun = "finding" if count == 1 else "findings"
        lines.append(
            f"repro-lint: {count} {noun} "
            f"({self.files_scanned} files, {len(self.rules_run)} rules, "
            f"{len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": JSON_SCHEMA_VERSION,
            "root": str(self.root),
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": dict(sorted(self.rules_run.items())),
            "findings": [f.to_json() for f in sorted(self.findings)],
            "suppressed": [s.to_json() for s in sorted(self.suppressed)],
        }
