"""R005 scalar-parity: every tensorized/scalar oracle pair is cross-tested.

The vectorized layers (cost tensors, batched samplers) promise *bit
identity* with their scalar reference implementations, and the convention
is a method pair: public ``X`` (fast path) next to ``X_scalar`` (the
oracle).  That promise is only worth anything while some test actually
compares the two — so for every public method ``X`` with an ``X_scalar``
sibling in the scanned packages, the ``X_scalar`` name must appear in the
test tree.  An orphaned oracle is a parity contract nobody checks: the
fast path can drift one ulp at a time and nothing fires.

The cross-check is textual by design (a word-boundary search over
``tests/``): it is import-free, so the linter stays stdlib-only and cheap
enough for a pre-test CI gate.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Tuple

from repro.analysis.astutils import iter_methods
from repro.analysis.config import in_scope
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

import ast


@register
class ScalarParityRule(Rule):
    id = "R005"
    name = "scalar-parity"
    invariant = (
        "every public method with a *_scalar sibling is cross-checked by a "
        "test that references the scalar oracle by name"
    )

    def __init__(self, config) -> None:
        super().__init__(config)
        #: (relpath, line, col, owner, public_name) per discovered pair.
        self._pairs: List[Tuple[str, int, int, str, str]] = []

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not in_scope(ctx.relpath, self.config.parity_scopes):
            return ()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._scan_scope(
                    ctx, f"{node.name}.", list(iter_methods(node))
                )
        self._scan_scope(
            ctx,
            "",
            [
                n
                for n in ctx.tree.body
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            ],
        )
        return ()

    def _scan_scope(self, ctx: FileContext, owner: str, functions) -> None:
        by_name = {fn.name: fn for fn in functions}
        for name, fn in by_name.items():
            if name.startswith("_") or not name.endswith("_scalar"):
                continue
            public = name[: -len("_scalar")]
            if public.startswith("_") or public not in by_name:
                continue
            self._pairs.append(
                (ctx.relpath, fn.lineno, fn.col_offset + 1, owner, public)
            )

    def finalize(self) -> Iterator[Finding]:
        tests_root = self.config.tests_root
        if tests_root is None or not self._pairs or not tests_root.is_dir():
            return
        corpus = "\n".join(
            path.read_text(encoding="utf-8")
            for path in sorted(tests_root.rglob("*.py"))
        )
        for relpath, line, col, owner, public in self._pairs:
            oracle = f"{public}_scalar"
            if re.search(rf"\b{re.escape(oracle)}\b", corpus) is None:
                yield Finding(
                    relpath, line, col, self.id,
                    f"oracle pair {owner}{public}/{oracle}: no test under "
                    f"{tests_root.name}/ references '{oracle}' — the "
                    "bit-identity contract is unchecked",
                )
