"""Lint driver: walk sources, run rules, apply pragmas, format reports.

``python -m repro lint [--format text|json] [paths...]`` is the CI gate;
:func:`run_lint` is the library entry (used by the self-tests, including
the meta-test asserting the repo's own ``src/`` is clean).

Stdlib-only on purpose: the lint CI job needs no numpy install, and a
broken dependency can never take the invariant gate down with it.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

# Importing the rule modules is what populates the registry.
from repro.analysis import (  # noqa: F401  (registration side effect)
    rules_order,
    rules_parity,
    rules_rng,
    rules_state,
    rules_units,
)
from repro.analysis.config import LintConfig, default_config
from repro.analysis.findings import Finding, LintResult, SuppressedFinding
from repro.analysis.pragmas import PRAGMA_RULE_ID, PRAGMA_RULE_NAME, parse_pragmas
from repro.analysis.registry import FileContext, create_rules, registered_rules

#: Directories never scanned below the root.
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def iter_source_files(root: Path, paths: Optional[Sequence[Path]] = None) -> List[Path]:
    """The Python files to lint: all of ``root``, or the given subset."""
    if paths:
        selected: List[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                selected.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if not _SKIP_DIRS.intersection(p.parts)
                )
            else:
                selected.append(path)
        return selected
    return [
        path
        for path in sorted(root.rglob("*.py"))
        if not _SKIP_DIRS.intersection(path.parts)
    ]


def run_lint(
    root,
    paths: Optional[Sequence[Path]] = None,
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Lint ``root`` (or ``paths`` under it) and return the full result.

    ``config=None`` uses :func:`~repro.analysis.config.default_config`,
    which auto-discovers the repo's ``tests/`` tree for the R005
    cross-check.
    """
    root = Path(root).resolve()
    if config is None:
        config = default_config(root)
    rules = create_rules(config)
    known_ids = set(registered_rules())
    result = LintResult(root=root)
    result.rules_run = {rule.id: rule.name for rule in rules}
    result.rules_run[PRAGMA_RULE_ID] = PRAGMA_RULE_NAME

    raw: List[Finding] = []
    suppressions = {}  # relpath -> {line: Suppression}
    for path in iter_source_files(root, paths):
        path = path.resolve()
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            raw.append(
                Finding(relpath, 1, 1, PRAGMA_RULE_ID, f"could not lint file: {exc}")
            )
            continue
        result.files_scanned += 1
        by_line, pragma_findings = parse_pragmas(relpath, source, known_ids)
        raw.extend(pragma_findings)
        suppressions[relpath] = by_line
        ctx = FileContext(path=path, relpath=relpath, source=source, tree=tree)
        for rule in rules:
            raw.extend(rule.check_file(ctx))
    for rule in rules:
        raw.extend(rule.finalize())

    for finding in raw:
        suppression = suppressions.get(finding.path, {}).get(finding.line)
        if (
            suppression is not None
            and finding.rule in suppression.rules
            and finding.rule != PRAGMA_RULE_ID
        ):
            result.suppressed.append(SuppressedFinding(finding, suppression.reason))
        else:
            result.findings.append(finding)
    return result


def main(argv: Optional[Iterable[str]] = None) -> int:
    """The ``python -m repro lint`` entry point; exits 0 iff clean."""
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST invariant checker: determinism, cache coherence, "
        "scalar parity, and unit contracts over src/ (see docs/analysis.md).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the whole repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text; json is the CI artifact)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="lint root for scoping and relative paths "
        "(default: the installed repro package directory)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    root = args.root if args.root is not None else Path(__file__).resolve().parents[1]
    result = run_lint(root, paths=args.paths or None)
    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.render_text())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
