"""repro.analysis — the AST invariant checker (``python -m repro lint``).

Static analysis over the repo's own sources enforcing the contracts the
correctness story rests on: seeded randomness (R001), wall-clock-free
simulation (R002), cache-coherent routing-state mutation (R003), explicit
iteration order in replay paths (R004), tested scalar oracles (R005), and
unit-stating public APIs (R006).  See docs/analysis.md for the rule
catalog and pragma syntax.

Library use::

    from repro.analysis import run_lint
    result = run_lint("src/repro")
    assert result.ok, result.render_text()

Stdlib-only: importing this package never pulls numpy, so the lint CI
gate runs without installing the runtime dependencies.
"""

from repro.analysis.config import LintConfig, default_config
from repro.analysis.findings import (
    JSON_SCHEMA_VERSION,
    Finding,
    LintResult,
    SuppressedFinding,
)
from repro.analysis.pragmas import PRAGMA_RULE_ID
from repro.analysis.registry import Rule, register, registered_rules
from repro.analysis.runner import iter_source_files, run_lint

__all__ = [
    "Finding",
    "JSON_SCHEMA_VERSION",
    "LintConfig",
    "LintResult",
    "PRAGMA_RULE_ID",
    "Rule",
    "SuppressedFinding",
    "default_config",
    "iter_source_files",
    "register",
    "registered_rules",
    "run_lint",
]
