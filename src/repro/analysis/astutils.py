"""Small shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Optional, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None (calls, subscripts)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr_target(node: ast.AST) -> Optional[str]:
    """The attribute name X for stores shaped ``self.X`` / ``self.X[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def const_str_elements(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """String elements of a literal set/tuple/list/frozenset({...}) node."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple")
        and len(node.args) == 1
        and not node.keywords
    ):
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    elements = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        elements.append(element.value)
    return tuple(elements)


def iter_methods(classdef: ast.ClassDef):
    """Direct function children of a class body (sync and async)."""
    for node in classdef.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
