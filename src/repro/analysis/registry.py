"""Rule base class and registry.

A rule is a class with a stable ``id`` (``RNNN``), a short ``name``, and
the ``invariant`` it protects (one sentence; surfaced in ``--format json``
and docs/analysis.md).  Rules are instantiated fresh per lint run — they
may accumulate state across files (R005 collects oracle pairs) and emit
project-wide findings from :meth:`Rule.finalize`.

Adding a rule: subclass :class:`Rule` in a ``rules_*`` module, decorate
with :func:`register`, import the module from ``repro.analysis.runner``
(import is what registers), document it in docs/analysis.md, and add a
firing + suppressed fixture pair to tests/test_analysis_lint.py.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Type

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding


@dataclass
class FileContext:
    """One parsed source file handed to every per-file rule."""

    path: Path
    relpath: str  # POSIX, relative to the linted root
    source: str
    tree: ast.Module


class Rule:
    """Base class: override ``check_file`` and/or ``finalize``."""

    id: str = ""
    name: str = ""
    invariant: str = ""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        """Project-wide findings after every file has been checked."""
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs a non-empty id and name")
    existing = _REGISTRY.get(cls.id)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule id {cls.id}: {existing.__name__}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    return dict(_REGISTRY)


def create_rules(config: LintConfig) -> List[Rule]:
    """Fresh rule instances for one run, id order, config-filtered."""
    return [
        cls(config)
        for rule_id, cls in sorted(_REGISTRY.items())
        if config.rule_enabled(rule_id)
    ]
