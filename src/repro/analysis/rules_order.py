"""R004 ordered-iteration: no implicit iteration order in replay paths.

Dict-order and set-order nondeterminism is the classic source of replay
divergence: a ``for`` over a set visits elements in hash order (randomized
per process for strings), and a ``.keys()``/``.values()`` loop silently
couples replay identity to the dict's *construction* order.  In ``sim/``
and ``serving/`` — the packages whose event streams must replay
bit-identically — iteration order is therefore explicit: wrap the iterable
in ``sorted(...)``, iterate a list, or carry a pragma explaining why order
provably cannot leak into results.

Flagged: ``for``-statement and list/dict-comprehension iterables that are
``set(...)`` calls, set literals/comprehensions, or ``.keys()`` /
``.values()`` calls.  Generator expressions and set comprehensions feeding
order-insensitive reducers (``sum``/``min``/``max``/…) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional

from repro.analysis.config import in_scope
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register


def _unordered_reason(node: ast.AST) -> Optional[str]:
    """Why this iterable has implicit order, or None when it's fine."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "set":
            return "iterates a set(...) in hash order"
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("keys", "values"):
            return (
                f"iterates .{node.func.attr}() in dict-construction order"
            )
    elif isinstance(node, (ast.Set, ast.SetComp)):
        return "iterates a set literal in hash order"
    return None


@register
class OrderedIterationRule(Rule):
    id = "R004"
    name = "ordered-iteration"
    invariant = (
        "sim/serving replay paths never iterate sets or dict views "
        "directly; iteration order is made explicit with sorted(...) or "
        "justified by a pragma"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not in_scope(ctx.relpath, self.config.ordered_iter_scopes):
            return ()
        return list(self._walk(ctx))

    def _walk(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iterables = []
            if isinstance(node, ast.For):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                reason = _unordered_reason(iterable)
                if reason is not None:
                    yield Finding(
                        ctx.relpath, iterable.lineno, iterable.col_offset + 1,
                        self.id,
                        f"{reason}; wrap in sorted(...) so replays cannot "
                        "diverge on iteration order",
                    )
