"""Per-line pragma suppressions: ``# repro-lint: disable=RULE -- reason``.

A pragma silences named rules on one line.  Two placements:

- **trailing** — on the offending line itself::

      for spans in grouped.values():  # repro-lint: disable=R004 -- in-place sort

- **standalone** — a comment-only line suppressing the *next* line::

      # repro-lint: disable=R004 -- in-place sort; order cannot leak
      for spans in grouped.values():

The reason is mandatory: a pragma without ``-- <why>`` suppresses nothing
and is itself reported as :data:`PRAGMA_RULE_ID`, as is a pragma naming an
unknown rule id.  ``R000`` findings are never suppressible (a bare pragma
must not be able to silence the complaint about itself).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.analysis.findings import Finding

#: Rule id for malformed pragmas (reserved; not in the rule registry).
PRAGMA_RULE_ID = "R000"
PRAGMA_RULE_NAME = "pragma-syntax"

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(?P<body>[^#]*)")
_DISABLE = re.compile(
    r"^disable=(?P<ids>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One validated pragma: rules silenced on ``line``, and why."""

    line: int
    rules: Tuple[str, ...]
    reason: str


def parse_pragmas(
    relpath: str, source: str, known_rules: Iterable[str]
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract pragma suppressions and malformed-pragma findings.

    Returns ``(by_line, findings)`` where ``by_line`` maps the *suppressed*
    line number (the pragma's own line when trailing, the next line when
    the pragma stands alone on a comment line) to its suppression.

    Only real comment tokens are considered (via :mod:`tokenize`), so
    pragma-shaped text inside string literals or docstrings is inert.
    """
    known = set(known_rules)
    by_line: Dict[int, Suppression] = {}
    findings: List[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return by_line, findings  # unparsable files are reported by the runner
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        lineno, token_col = token.start
        text = token.line
        col = token_col + match.start() + 1
        body = match.group("body").strip()
        parsed = _DISABLE.match(body)
        if parsed is None:
            findings.append(
                Finding(
                    relpath, lineno, col, PRAGMA_RULE_ID,
                    "malformed pragma: expected "
                    "'# repro-lint: disable=RULE[,RULE...] -- reason'",
                )
            )
            continue
        reason = (parsed.group("reason") or "").strip()
        if not reason:
            findings.append(
                Finding(
                    relpath, lineno, col, PRAGMA_RULE_ID,
                    "pragma without a reason suppresses nothing: append "
                    "'-- <why this exception is safe>'",
                )
            )
            continue
        rules = tuple(
            rule.strip() for rule in parsed.group("ids").split(",") if rule.strip()
        )
        unknown = [rule for rule in rules if rule not in known]
        if unknown:
            findings.append(
                Finding(
                    relpath, lineno, col, PRAGMA_RULE_ID,
                    f"pragma names unknown rule id(s): {', '.join(unknown)}",
                )
            )
            continue
        standalone = text[:token_col].strip() == ""
        target = lineno + 1 if standalone else lineno
        by_line[target] = Suppression(target, rules, reason)
    return by_line, findings
