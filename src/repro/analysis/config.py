"""Lint configuration: which rules run where.

Scopes are POSIX-style path prefixes *relative to the linted root* (for the
CLI that root is the ``repro`` package directory), so ``"sim/"`` means
"every module under ``repro/sim``".  The defaults encode today's contract
map; fixtures and embedding callers can narrow or widen them.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple


def in_scope(relpath: str, scopes: Tuple[str, ...]) -> bool:
    """Whether ``relpath`` (POSIX, root-relative) falls under any scope."""
    return any(relpath.startswith(scope) for scope in scopes)


def matches_file(relpath: str, entries: Tuple[str, ...]) -> bool:
    """Whether ``relpath`` names one of ``entries`` (exact or suffix match,
    so allowlists survive linting from a parent directory)."""
    return any(
        relpath == entry or relpath.endswith("/" + entry) for entry in entries
    )


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs for the rule set (defaults match the repo layout)."""

    #: Rule ids to run; None runs every registered rule.
    enabled_rules: Optional[Tuple[str, ...]] = None
    #: Test tree R005 greps for ``*_scalar`` oracle references (None skips
    #: the cross-check, e.g. when linting a lone fixture file).
    tests_root: Optional[Path] = None
    #: Files allowed to touch ``np.random`` directly (the seeding shrine).
    seeding_allowlist: Tuple[str, ...] = ("utils/seeding.py",)
    #: Packages whose code must never read wall clocks or the environment.
    sim_pure_scopes: Tuple[str, ...] = ("sim/", "serving/", "core/", "federation/")
    #: Packages whose iteration order must be explicit (replay paths).
    ordered_iter_scopes: Tuple[str, ...] = ("sim/", "serving/", "federation/")
    #: Packages scanned for public ``X``/``X_scalar`` oracle pairs.
    parity_scopes: Tuple[str, ...] = ("core/", "serving/", "federation/")
    #: Packages whose public unit-named functions must state units.
    units_scopes: Tuple[str, ...] = ("profiles/", "core/", "serving/", "federation/")

    def rule_enabled(self, rule_id: str) -> bool:
        return self.enabled_rules is None or rule_id in self.enabled_rules


def default_config(root: Path) -> LintConfig:
    """The CLI default: auto-discover the repo's ``tests/`` tree.

    When linting ``<repo>/src/repro``, the sibling test tree lives two
    levels up; fall back to "no cross-check" when it isn't there (linting a
    fixture directory or an installed package).
    """
    for candidate in (root.parent.parent / "tests", root.parent / "tests"):
        if candidate.is_dir():
            return LintConfig(tests_root=candidate)
    return LintConfig()


__all__ = ["LintConfig", "default_config", "in_scope", "matches_file"]
