"""R003 version-bump: routing-state mutations must invalidate caches.

:class:`~repro.serving.engine.FlatServingEngine` memoizes queue-pressure
and isolated-latency estimates keyed by a ``_state_version`` counter (and a
placement ``_generation``).  The whole scheme is only sound if *every*
mutation of the routing-scored state also advances the counter — PR 8
shipped two real bugs of exactly this class (a stale isolated-latency
cache under link repricing, a same-instant retry spin).

The contract is declared in the code itself: a class opts in by defining

.. code-block:: python

    _ROUTING_STATE = frozenset({"_slot_used", "_backlog", ...})
    _ROUTING_STATE_SETUP = ("run",)   # optional: wholesale (re)build methods

and this rule then checks, per method, that every store into a declared
attribute (``self.X = ...``, ``self.X[k] = ...``, ``self.X.append(...)``
and friends) is followed on its fall-through path by a bump — a direct
``self._state_version`` store, or a call to a sibling method that
*unconditionally* bumps (``_bump_generation`` and the reserve/release
helpers qualify; a method that only bumps inside a branch does not).
``__init__`` and the declared setup methods are exempt (they build the
state wholesale before anything can be cached).

The path scan is deliberately simple: from the mutation statement, walk
forward through the enclosing suites; a ``return``/``raise``/``break``/
``continue`` hit before any bump — including a ``return`` nested inside a
bump-free branch of a later statement — ends the path uncovered.  That is
exactly
strong enough that deleting any single ``self._state_version += 1`` line
in the engine produces a finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutils import (
    const_str_elements,
    dotted_name,
    iter_methods,
    self_attr_target,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: The class attribute naming the guarded state set.
STATE_DECL = "_ROUTING_STATE"
#: Optional class attribute naming wholesale-setup methods (exempt).
SETUP_DECL = "_ROUTING_STATE_SETUP"
#: The cache-coherence counter a mutation must advance.
BUMP_ATTR = "_state_version"

#: Method calls on a container attribute that mutate it in place.
_MUTATORS = frozenset(
    {
        "append", "appendleft", "add", "extend", "insert", "remove",
        "discard", "pop", "popleft", "clear", "update", "setdefault", "sort",
    }
)

_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)

#: (attr, statement, suite-chain) — chain is innermost-last (suite, index).
_Site = Tuple[str, ast.stmt, List[Tuple[Sequence[ast.stmt], int]]]


def _own_expr_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """All expression nodes of a statement, excluding nested suites.

    For an ``if``/``for``/``while`` this yields the header expressions but
    not the body statements, so a mutation is attributed to its innermost
    suite exactly once.
    """
    for _field, value in ast.iter_fields(stmt):
        values = value if isinstance(value, list) else [value]
        for item in values:
            if isinstance(item, ast.stmt):
                break  # a suite; handled by recursion
            if isinstance(item, ast.AST):
                yield from ast.walk(item)


def _stored_attrs(stmt: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
    """Attribute names stored by this statement's own expressions."""
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
        targets: List[ast.AST]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        else:
            targets = [stmt.target]
        for target in targets:
            elements = (
                target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
            )
            for element in elements:
                attr = self_attr_target(element)
                if attr is not None:
                    yield attr, element
    for node in _own_expr_nodes(stmt):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = self_attr_target(node.func.value)
                if attr is not None:
                    yield attr, node


def _stmt_bumps(stmt: ast.stmt, unconditional: Set[str]) -> bool:
    """Whether this statement (anywhere within it) advances the counter."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if self_attr_target(target) == BUMP_ATTR:
                    return True
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.startswith("self."):
                if name[len("self."):] in unconditional:
                    return True
    return False


def _stmt_bumps_directly(stmt: ast.stmt, unconditional: Set[str]) -> bool:
    """Like :func:`_stmt_bumps` but only this statement's own expressions —
    used for the *unconditional* classification, where a bump hidden in a
    nested branch must not count."""
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if self_attr_target(target) == BUMP_ATTR:
                return True
    for node in _own_expr_nodes(stmt):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.startswith("self."):
                if name[len("self."):] in unconditional:
                    return True
    return False


def _collect_sites(
    method: ast.FunctionDef, declared: Set[str]
) -> List[_Site]:
    sites: List[_Site] = []

    def visit(suite: Sequence[ast.stmt], ancestors) -> None:
        for index, stmt in enumerate(suite):
            chain = ancestors + [(suite, index)]
            for attr, node in _stored_attrs(stmt):
                if attr in declared:
                    sites.append((attr, stmt, chain))
            for _field, value in ast.iter_fields(stmt):
                if (
                    isinstance(value, list)
                    and value
                    and isinstance(value[0], ast.stmt)
                ):
                    visit(value, chain)

    visit(method.body, [])
    return sites


def _terminates_within(stmt: ast.stmt) -> bool:
    """Whether the statement can exit the method (a ``return``/``raise``
    anywhere inside it, nested closures excluded)."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Return, ast.Raise)):
            return True
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)
    return False


def _covered(site: _Site, unconditional: Set[str]) -> bool:
    """Fall-through scan: does a bump follow this mutation on every
    straight-line continuation?  A terminator before a bump ends the path
    uncovered — including a ``return``/``raise`` nested in a bump-free
    branch of a follower (``if not flush: return``) — and falling off a
    suite ascends to the enclosing one."""
    _attr, stmt, chain = site
    first = True
    for suite, index in reversed(chain):
        start = index if first else index + 1
        first = False
        for follower in suite[start:]:
            if _stmt_bumps(follower, unconditional):
                return True
            if isinstance(follower, _TERMINATORS):
                return False
            if _terminates_within(follower):
                return False
    return False


@register
class VersionBumpRule(Rule):
    id = "R003"
    name = "version-bump"
    invariant = (
        "every mutation of a declared routing-state attribute advances "
        "_state_version (or calls _bump_generation) before the method "
        "returns, so state-keyed caches can never serve stale floats"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _declarations(
        self, classdef: ast.ClassDef
    ) -> Tuple[Optional[ast.stmt], Optional[Tuple[str, ...]], Tuple[str, ...]]:
        decl_stmt = None
        declared: Optional[Tuple[str, ...]] = None
        setup: Tuple[str, ...] = ()
        for stmt in classdef.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if STATE_DECL in names and stmt.value is not None:
                decl_stmt = stmt
                declared = const_str_elements(stmt.value)
            elif SETUP_DECL in names and stmt.value is not None:
                setup = const_str_elements(stmt.value) or ()
        return decl_stmt, declared, setup

    def _check_class(self, ctx: FileContext, classdef: ast.ClassDef) -> Iterator[Finding]:
        decl_stmt, declared, setup = self._declarations(classdef)
        if decl_stmt is None:
            return
        if not declared:
            yield Finding(
                ctx.relpath, decl_stmt.lineno, decl_stmt.col_offset + 1, self.id,
                f"{STATE_DECL} must be a literal set/tuple of attribute-name "
                "strings so the linter can read the contract",
            )
            return
        declared_set = set(declared)
        exempt = {"__init__"} | set(setup)
        methods = [m for m in iter_methods(classdef) if m.name not in exempt]

        # Fixpoint: methods that bump on every call (top-level of the body).
        unconditional: Set[str] = set()
        while True:
            grew = False
            for method in methods:
                if method.name in unconditional:
                    continue
                if any(
                    _stmt_bumps_directly(stmt, unconditional)
                    for stmt in method.body
                ):
                    unconditional.add(method.name)
                    grew = True
            if not grew:
                break

        for method in methods:
            reported: Set[int] = set()
            for site in _collect_sites(method, declared_set):
                attr, stmt, _chain = site
                if _covered(site, unconditional):
                    continue
                if stmt.lineno in reported:
                    continue
                reported.add(stmt.lineno)
                yield Finding(
                    ctx.relpath, stmt.lineno, stmt.col_offset + 1, self.id,
                    f"{classdef.name}.{method.name} mutates routing state "
                    f"'{attr}' without a {BUMP_ATTR} bump (or "
                    "_bump_generation call) on the fall-through path — "
                    "state-keyed caches would serve stale values",
                )
