"""R001 seeded-rng and R002 sim-purity: determinism source rules.

Every result in this repo must replay bit-identically from a seed, so the
two ambient sources of nondeterminism — global RNG state and the host
environment (wall clocks, env vars) — are banned at the source level:

- **R001** — randomness flows only through :func:`repro.utils.seeding.rng_for`
  (or an explicitly passed ``numpy.random.Generator``).  Global
  ``np.random.*`` draws, ``np.random.seed``, the stdlib ``random`` module,
  and argless ``default_rng()`` are all hidden global state: results then
  depend on call order across the whole process.
- **R002** — simulation and serving code computes *simulated* time from the
  event loop, never host time; reading ``time.time``/``perf_counter``/
  ``datetime.now`` or ``os.environ`` inside ``sim/``, ``serving/`` or
  ``core/`` makes a replay diverge per machine.  Benchmarks and scripts
  (outside those packages) may time and configure themselves freely.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.astutils import dotted_name
from repro.analysis.config import in_scope, matches_file
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Wall-clock reads banned inside simulation scopes, matched on the last
#: two components of the call's dotted name (so both ``time.time()`` and
#: ``datetime.datetime.now()`` hit).
_CLOCK_TAILS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)


@register
class SeededRngRule(Rule):
    id = "R001"
    name = "seeded-rng"
    invariant = (
        "all randomness is derived from named seeds via rng_for / an "
        "explicit numpy Generator parameter, never from global RNG state"
    )

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if matches_file(ctx.relpath, self.config.seeding_allowlist):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield Finding(
                            ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                            "stdlib 'random' is process-global state; use "
                            "repro.utils.seeding.rng_for or take a "
                            "numpy Generator parameter",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield Finding(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                        "stdlib 'random' is process-global state; use "
                        "repro.utils.seeding.rng_for or take a "
                        "numpy Generator parameter",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        parts = name.split(".")
        if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
            attr = parts[-1]
            if attr == "default_rng":
                # Constructing a Generator from an explicit seed is the
                # sanctioned pattern; only the argless form hides state.
                if not node.args and not node.keywords:
                    yield Finding(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                        "argless default_rng() seeds from the OS; use "
                        "repro.utils.seeding.rng_for for a named, "
                        "replayable seed",
                    )
                return
            if attr == "seed":
                message = (
                    "np.random.seed mutates the process-global RNG; derive "
                    "a Generator via repro.utils.seeding.rng_for instead"
                )
            else:
                message = (
                    f"global np.random.{attr}(...) draw depends on call "
                    "order; draw from a seeded Generator (rng_for) instead"
                )
            yield Finding(
                ctx.relpath, node.lineno, node.col_offset + 1, self.id, message
            )
        elif parts[-1] == "default_rng" and not node.args and not node.keywords:
            yield Finding(
                ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                "argless default_rng() seeds from the OS; use "
                "repro.utils.seeding.rng_for for a named, replayable seed",
            )
        elif len(parts) == 2 and parts[0] == "random":
            yield Finding(
                ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                f"stdlib random.{parts[1]}(...) is process-global state; "
                "use a seeded numpy Generator (rng_for)",
            )


@register
class SimPurityRule(Rule):
    id = "R002"
    name = "sim-purity"
    invariant = (
        "sim/serving/core code never reads host wall clocks or os.environ; "
        "simulated time comes from the event loop, configuration from "
        "explicit parameters"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not in_scope(ctx.relpath, self.config.sim_pure_scopes):
            return ()
        return list(self._walk(ctx))

    def _walk(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if tuple(parts[-2:]) in _CLOCK_TAILS:
                    yield Finding(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                        f"wall-clock read {name}(...) in simulation scope: "
                        "replays diverge per machine; use the event loop's "
                        "simulated now",
                    )
                elif name in ("os.getenv",):
                    yield Finding(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                        "os.getenv in simulation scope: configuration must "
                        "arrive as explicit parameters, not ambient state",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    node.attr == "environ"
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "os"
                ):
                    yield Finding(
                        ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                        "os.environ in simulation scope: configuration must "
                        "arrive as explicit parameters, not ambient state",
                    )
