"""R006 units-docstring: public quantity-returning APIs state their units.

Solver objectives are priced in seconds, the energy ledger in joules,
memory in bytes, power in watts — and a unit mix-up survives every test
that only checks relative ordering.  Public functions whose *names* claim
a unit (``transfer_seconds``, ``compute_joules``, ``payload_bytes``,
``active_watts``…) must therefore say the unit in their docstring, so a
caller reading the API contract never has to guess milli vs. base units.

The rule is name-driven: a public function (or property/method) in the
scanned packages whose name contains ``second``/``joule``/``byte``/
``watt`` needs a docstring mentioning that unit word.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from repro.analysis.config import in_scope
from repro.analysis.findings import Finding
from repro.analysis.registry import FileContext, Rule, register

#: Unit word stems looked for in names and required in docstrings.
_UNIT_STEMS: Tuple[str, ...] = ("second", "joule", "byte", "watt")


@register
class UnitsDocstringRule(Rule):
    id = "R006"
    name = "units-docstring"
    invariant = (
        "public functions named after a physical quantity state the unit "
        "in their docstring (seconds, joules, bytes, watts)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not in_scope(ctx.relpath, self.config.units_scopes):
            return ()
        return list(self._walk(ctx))

    def _walk(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            stems = [stem for stem in _UNIT_STEMS if stem in node.name]
            if not stems:
                continue
            doc = (ast.get_docstring(node) or "").lower()
            missing = [stem for stem in stems if stem not in doc]
            if not doc:
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                    f"public function '{node.name}' names a unit "
                    f"({', '.join(stems)}) but has no docstring stating it",
                )
            elif missing:
                yield Finding(
                    ctx.relpath, node.lineno, node.col_offset + 1, self.id,
                    f"public function '{node.name}' never states its unit "
                    f"({', '.join(missing)}) in the docstring",
                )
