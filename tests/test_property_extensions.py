"""Property-based tests for the extension subsystems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.metrics import summarize_latencies
from repro.core.catalog import MODULE_CATALOG, get_module
from repro.core.compression import QUANTIZATION_LEVELS, quantize
from repro.core.partitioning import partition_module

MODULE_NAMES = sorted(name for name, m in MODULE_CATALOG.items() if m.params > 0)


class TestCompressionProperties:
    @given(
        module_name=st.sampled_from(MODULE_NAMES),
        bits=st.sampled_from(sorted(QUANTIZATION_LEVELS)),
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_never_grows(self, module_name, bits):
        module = get_module(module_name)
        compressed = quantize(module, bits)
        assert compressed.spec.memory_bytes <= module.memory_bytes

    @given(module_name=st.sampled_from(MODULE_NAMES))
    @settings(max_examples=30, deadline=None)
    def test_lower_bits_mean_less_memory_more_penalty(self, module_name):
        module = get_module(module_name)
        int8 = quantize(module, 8)
        int4 = quantize(module, 4)
        assert int4.spec.memory_bytes < int8.spec.memory_bytes
        assert int4.accuracy_penalty >= int8.accuracy_penalty

    @given(
        module_name=st.sampled_from(MODULE_NAMES),
        bits=st.sampled_from([4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_kind_and_params_preserved(self, module_name, bits):
        module = get_module(module_name)
        compressed = quantize(module, bits)
        assert compressed.spec.kind is module.kind
        assert compressed.spec.params == module.params
        assert compressed.source_name == module.name


class TestPartitioningProperties:
    @given(
        module_name=st.sampled_from(MODULE_NAMES),
        stages=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_totals_conserved(self, module_name, stages):
        module = get_module(module_name)
        partitioned = partition_module(module, stages)
        assert sum(s.params for s in partitioned.stages) == module.params
        assert sum(s.work for s in partitioned.stages) == pytest.approx(module.work)

    @given(
        module_name=st.sampled_from(MODULE_NAMES),
        stages=st.integers(2, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_stage_strictly_smaller(self, module_name, stages):
        module = get_module(module_name)
        partitioned = partition_module(module, stages)
        for stage in partitioned.stages:
            assert stage.memory_bytes < module.memory_bytes

    @given(
        module_name=st.sampled_from(MODULE_NAMES),
        stages=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_final_stage_keeps_output_bytes(self, module_name, stages):
        module = get_module(module_name)
        partitioned = partition_module(module, stages)
        assert partitioned.stages[-1].output_bytes == module.output_bytes


class TestMetricsProperties:
    @given(latencies=st.lists(st.floats(0.001, 1000.0), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_summary_bounds(self, latencies):
        summary = summarize_latencies(latencies)
        assert min(latencies) - 1e-9 <= summary.mean <= max(latencies) + 1e-9
        assert summary.p50 <= summary.p95 + 1e-9
        assert summary.p95 <= summary.p99 + 1e-9
        assert summary.p99 <= summary.maximum + 1e-9
        assert summary.maximum == max(latencies)

    @given(
        latencies=st.lists(st.floats(0.001, 100.0), min_size=1, max_size=50),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_summary_scales_linearly(self, latencies, scale):
        base = summarize_latencies(latencies)
        scaled = summarize_latencies([scale * value for value in latencies])
        assert scaled.mean == np.float64(scale * base.mean) or abs(
            scaled.mean - scale * base.mean
        ) < 1e-6 * max(1.0, scaled.mean)
